//! # disco — Scalable Routing on Flat Names
//!
//! Facade crate for the reproduction of *"Scalable Routing on Flat Names"*
//! (Singla, Godfrey, Fall, Iannaccone, Ratnasamy — ACM CoNEXT 2010).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — topologies, generators, shortest paths,
//! * [`sim`] — the discrete-event simulation engine with runtime topology
//!   mutation (churn, failures, mobility),
//! * [`core`] — the Disco protocol itself (NDDisco, name resolution,
//!   sloppy groups, dissemination overlay, static & distributed forms,
//!   incremental repair under dynamics),
//! * [`baselines`] — S4, VRR and path-vector comparison protocols,
//! * [`metrics`] — state/stretch/congestion measurement and the experiment
//!   runners behind every figure and table of the paper,
//! * [`dynamics`] — churn/failure/mobility schedules and the availability
//!   probes that measure routing under them,
//! * [`telemetry`] — the zero-cost-when-off structured observability layer
//!   (recorder trait, message-class registry, repair-latency probe, flight
//!   recorder, Chrome `trace_event` export).
//!
//! See the repository README for a quickstart and `examples/` for runnable
//! scenarios.

pub use disco_baselines as baselines;
pub use disco_core as core;
pub use disco_dynamics as dynamics;
pub use disco_graph as graph;
pub use disco_metrics as metrics;
pub use disco_sim as sim;
pub use disco_telemetry as telemetry;
