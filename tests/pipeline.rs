//! End-to-end integration tests across all workspace crates: the figure
//! pipelines at reduced scale, the distributed protocols against the static
//! simulator, and the public facade re-exports.

use disco::core::prelude::*;
use disco::graph::NodeId;
use disco::metrics::experiment::{self, ExperimentParams};
use disco::metrics::Topology;

fn params(n: usize, seed: u64) -> ExperimentParams {
    ExperimentParams {
        nodes: n,
        seed,
        state_samples: usize::MAX,
        stretch_sources: 8,
        stretch_dests_per_source: 6,
    }
}

#[test]
fn facade_reexports_are_usable() {
    let g = disco::graph::generators::ring(32);
    let state = DiscoState::build(&g, &DiscoConfig::seeded(1));
    let router = DiscoRouter::new(&g, &state);
    let out = router.route_first_packet(NodeId(0), NodeId(16));
    assert_eq!(*out.nodes.last().unwrap(), NodeId(16));
    assert!(out.length >= 16.0 - 1e-9);
}

#[test]
fn fig2_and_fig3_pipelines_run_on_all_topologies() {
    for topo in Topology::ALL {
        let p = params(220, 3);
        let st = experiment::state_comparison(topo, &p, false);
        assert_eq!(st.disco.entries.len(), 220);
        assert!(st.nddisco.mean() <= st.disco.mean());
        let sr = experiment::stretch_comparison(topo, &p, false);
        assert!(sr.disco.mean_first() >= 1.0 - 1e-9);
        assert!(sr.disco.max_later() <= 3.0 + 1e-9, "{topo}");
    }
}

#[test]
fn fig4_style_pipeline_includes_vrr_and_path_vector() {
    let p = params(200, 5);
    let st = experiment::state_comparison(Topology::Gnm, &p, true);
    let vrr = st.vrr.expect("VRR included");
    let pv = st.path_vector.expect("path vector included");
    assert_eq!(pv.mean(), 199.0);
    // VRR's state distribution is heavily unbalanced (no bound on per-node
    // state), unlike Disco's capped vicinities.
    let mut vrr_entries = vrr.entries.clone();
    vrr_entries.sort_unstable();
    let vrr_median = vrr_entries[vrr_entries.len() / 2];
    assert!(
        vrr.max() >= 2 * vrr_median,
        "VRR max {} median {}",
        vrr.max(),
        vrr_median
    );
    assert!((st.disco.max() as f64) < 2.0 * st.disco.mean());

    let cg = experiment::congestion_comparison(Topology::Gnm, &p, true);
    assert!(cg.vrr.is_some());
    let disco_total: u64 = cg.disco.edge_usage.iter().sum();
    let sp_total: u64 = cg.path_vector.edge_usage.iter().sum();
    assert!(disco_total >= sp_total);
}

#[test]
fn fig6_ordering_matches_paper() {
    // The paper's Fig. 6: every shortcutting heuristic improves on "No
    // Shortcutting", and "Using Path Knowledge" is the best (lowest mean).
    let p = params(250, 7);
    let row = experiment::shortcut_sweep(Topology::Geometric, &p);
    let base = row.means[0].1;
    let best = row.means.last().unwrap().1;
    for &(_, m) in &row.means {
        assert!(m <= base + 1e-9);
        assert!(m >= 1.0 - 1e-9);
    }
    assert!(
        best <= row.means[3].1 + 1e-9,
        "Path Knowledge must be at least as good as No Path Knowledge"
    );
}

#[test]
fn fig8_messaging_ordering() {
    let point = experiment::messaging_point(128, 11);
    // Paper Fig. 8 ordering: path vector >> Disco-3 ≥ Disco-1 > NDDisco,
    // and NDDisco within a small factor of S4.
    assert!(point.path_vector > point.disco_3_finger);
    assert!(point.disco_3_finger >= point.disco_1_finger);
    assert!(point.disco_1_finger > point.nddisco);
    assert!(point.nddisco > 0.0 && point.s4 > 0.0);
}

#[test]
fn fig9_state_grows_sublinearly() {
    let small = experiment::scaling_point(256, 13);
    let large = experiment::scaling_point(1024, 13);
    // A 4x increase in n should grow Disco state by roughly 2x (√n), far
    // less than 4x; allow slack for the log factor and constants.
    let growth = large.disco_state / small.disco_state;
    assert!(growth > 1.4 && growth < 3.2, "state growth {growth}");
    // Stretch stays low and roughly flat.
    assert!(large.disco_later < 1.6);
    assert!(large.disco_first >= large.disco_later - 1e-9);
}

#[test]
fn estimation_error_and_static_accuracy_experiments() {
    let p = params(220, 17);
    let exact = experiment::estimation_error_experiment(&p, 0.0);
    assert_eq!(exact.fallback_pairs, 0);
    let noisy = experiment::estimation_error_experiment(&p, 0.6);
    assert!(noisy.mean_first_stretch >= 1.0 - 1e-9);

    let acc = experiment::static_accuracy_experiment(&p);
    // The paper reports <1% difference at 1,024 nodes; at this small test
    // size sampling noise dominates, so allow a wider band.
    assert!(
        acc.relative_difference < 0.10,
        "static {} vs event {}",
        acc.static_mean_stretch,
        acc.event_mean_stretch
    );
}

#[test]
fn address_size_experiment_matches_paper_scale() {
    let p = params(2000, 19);
    let stats = experiment::address_size_experiment(Topology::RouterLevel, &p);
    // Paper (router-level Internet): mean 2.93 B, p95 5 B, max 10.6 B. Our
    // synthetic graph is smaller so routes are a little shorter; assert the
    // same order of magnitude and orderings.
    assert!(stats.mean_bytes > 0.3 && stats.mean_bytes < 6.0);
    assert!(stats.p95_bytes <= 10.0);
    assert!(stats.max_bytes <= 24.0);
    assert!(stats.mean_bytes <= stats.p95_bytes && stats.p95_bytes <= stats.max_bytes);
}

#[test]
fn overlay_dissemination_covers_groups_at_scale() {
    let p = params(1024, 23);
    let one = experiment::overlay_hops_experiment(&p, 1);
    let three = experiment::overlay_hops_experiment(&p, 3);
    assert!(one.coverage > 0.999 && three.coverage > 0.999);
    assert!(three.mean_hops < one.mean_hops);
    assert!(one.max_hops >= three.max_hops);
}
