//! Integration tests for the paper's theoretical guarantees (§4.5), run
//! across crates: Theorem 1 (stretch ≤ 7 on the first packet, ≤ 3 after)
//! and Theorem 2 (O(√(n log n)) routing-table entries), plus
//! property-based tests that the guarantees hold across random topologies,
//! seeds and pair choices whenever the with-high-probability preconditions
//! hold.

use disco::core::prelude::*;
use disco::core::routing::RouteCategory;
use disco::graph::{generators, Graph, NodeId};
use proptest::prelude::*;

/// The w.h.p. preconditions of Theorems 1–2 for a specific pair: both
/// endpoints have a landmark in their vicinity, and the source can find a
/// member of the destination's sloppy group in its vicinity.
fn preconditions_hold(state: &DiscoState, s: NodeId, t: NodeId) -> bool {
    let lm_in = |v: NodeId| {
        state
            .vicinity(v)
            .members()
            .any(|(w, _)| state.is_landmark(w))
    };
    let proxy_ok = state.knows_address(s, t)
        || state
            .best_group_proxy(s, t)
            .map(|w| state.knows_address(w, t))
            .unwrap_or(false);
    lm_in(s) && lm_in(t) && proxy_ok
}

fn check_guarantees(graph: &Graph, state: &DiscoState, pairs: &[(NodeId, NodeId)]) {
    let router = DiscoRouter::new(graph, state);
    for &(s, t) in pairs {
        if s == t || !preconditions_hold(state, s, t) {
            continue;
        }
        let d = router.true_distance(s, t);
        let first = router.route_first_packet(s, t);
        let later = router.route_later_packet(s, t);
        assert!(
            first.stretch(d) <= 7.0 + 1e-9,
            "Theorem 1 violated: first-packet stretch {} for {s}->{t}",
            first.stretch(d)
        );
        assert!(
            later.stretch(d) <= 3.0 + 1e-9,
            "Theorem 1 violated: later-packet stretch {} for {s}->{t}",
            later.stretch(d)
        );
        // NDDisco (name-dependent) first packet: stretch ≤ 5.
        let nd = router.nddisco_first_packet(s, t);
        assert!(nd.stretch(d) <= 5.0 + 1e-9);
        // Routes must be usable walks.
        assert_eq!(*first.nodes.first().unwrap(), s);
        assert_eq!(*first.nodes.last().unwrap(), t);
    }
}

#[test]
fn theorem_1_on_random_graph() {
    let n = 400;
    let g = generators::gnm_average_degree(n, 8.0, 77);
    let state = DiscoState::build(&g, &DiscoConfig::seeded(77));
    let pairs: Vec<_> = (0..n)
        .step_by(11)
        .flat_map(|s| (0..n).step_by(37).map(move |t| (NodeId(s), NodeId(t))))
        .collect();
    check_guarantees(&g, &state, &pairs);
}

#[test]
fn theorem_1_on_weighted_geometric_graph() {
    let n = 400;
    let g = generators::geometric_connected(n, 8.0, 78);
    let state = DiscoState::build(&g, &DiscoConfig::seeded(78));
    let pairs: Vec<_> = (0..n)
        .step_by(13)
        .flat_map(|s| (0..n).step_by(41).map(move |t| (NodeId(s), NodeId(t))))
        .collect();
    check_guarantees(&g, &state, &pairs);
}

#[test]
fn theorem_1_on_pathological_topologies() {
    for (name, g) in [
        ("ring", generators::ring(200)),
        ("grid", generators::grid(14, 14)),
        ("binary tree", generators::binary_tree(7)),
        ("adversarial tree", generators::s4_adversarial_tree(14)),
    ] {
        let state = DiscoState::build(&g, &DiscoConfig::seeded(5));
        let n = g.node_count();
        let pairs: Vec<_> = (0..n)
            .step_by(7)
            .flat_map(|s| (0..n).step_by(29).map(move |t| (NodeId(s), NodeId(t))))
            .collect();
        println!("checking {name}");
        check_guarantees(&g, &state, &pairs);
    }
}

#[test]
fn theorem_2_state_bound_across_topologies() {
    // Every node's Disco state stays within a constant multiple of
    // √(n log n) on very different topologies.
    for (name, g) in [
        ("gnm", generators::gnm_average_degree(600, 8.0, 9)),
        ("geometric", generators::geometric_connected(600, 8.0, 9)),
        ("router-like", generators::internet_router_like(600, 9)),
        ("star", generators::star(600)),
        ("adversarial tree", generators::s4_adversarial_tree(24)),
    ] {
        let n = g.node_count() as f64;
        let state = DiscoState::build(&g, &DiscoConfig::seeded(9));
        let bound = 10.0 * (n * n.ln()).sqrt();
        for v in g.nodes() {
            let entries = state.state_breakdown(&g, v).disco_total();
            assert!(
                (entries as f64) < bound,
                "{name}: node {v} holds {entries} entries (bound {bound:.0})"
            );
        }
    }
}

#[test]
fn fallback_keeps_routing_correct_even_when_whp_fails() {
    // Even for pairs where the precondition fails, routing must still
    // deliver (via the resolution-database fallback), just without the
    // stretch bound.
    let n = 300;
    let g = generators::gnm_average_degree(n, 8.0, 31);
    let state = DiscoState::build(&g, &DiscoConfig::seeded(31).with_n_estimate_error(0.6));
    let router = DiscoRouter::new(&g, &state);
    for s in (0..n).step_by(17) {
        for t in (0..n).step_by(23) {
            let out = router.route_first_packet(NodeId(s), NodeId(t));
            assert_eq!(*out.nodes.last().unwrap(), NodeId(t));
            // Fallback routes are still loop-free walks on real edges.
            for w in out.nodes.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
            let _ = out.category == RouteCategory::Fallback;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Theorem 1/2 hold for random seeds and sizes on G(n,m) graphs.
    #[test]
    fn prop_guarantees_hold_on_random_instances(seed in 0u64..1000, n in 150usize..350) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let state = DiscoState::build(&g, &DiscoConfig::seeded(seed));
        let pairs: Vec<_> = (0..n)
            .step_by(23)
            .flat_map(|s| (0..n).step_by(31).map(move |t| (NodeId(s), NodeId(t))))
            .collect();
        check_guarantees(&g, &state, &pairs);
        // Theorem 2.
        let bound = 10.0 * (n as f64 * (n as f64).ln()).sqrt();
        for v in g.nodes().step_by(13) {
            prop_assert!((state.state_breakdown(&g, v).disco_total() as f64) < bound);
        }
    }

    /// Addresses always expand to valid landmark→node shortest paths.
    #[test]
    fn prop_addresses_expand_to_valid_routes(seed in 0u64..1000, n in 100usize..250) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let state = DiscoState::build(&g, &DiscoConfig::seeded(seed));
        for v in g.nodes().step_by(7) {
            let addr = state.address_of(v);
            let path = addr.route_path(&g).unwrap();
            prop_assert_eq!(path.source(), addr.landmark);
            prop_assert_eq!(path.destination(), v);
            prop_assert!(path.is_valid(&g));
            prop_assert!((path.length(&g) - state.closest_landmark_distance(v)).abs() < 1e-9);
        }
    }
}
