//! Quickstart: build Disco's converged state on a small random network and
//! route a flow between two flat names.
//!
//! Run with: `cargo run --release --example quickstart`

use disco::core::prelude::*;
use disco::graph::{generators, NodeId};

fn main() {
    // 1. A 512-node random network with average degree 8 (the paper's
    //    G(n,m) family).
    let n = 512;
    let graph = generators::gnm_average_degree(n, 8.0, 42);
    println!(
        "network: {} nodes, {} links",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Give every node a flat, location-independent name and build the
    //    converged Disco state (landmarks, vicinities, addresses, sloppy
    //    groups, overlay).
    let names: Vec<FlatName> = (0..n)
        .map(|i| FlatName::from_str_name(&format!("host-{i}.example.net")))
        .collect();
    let config = DiscoConfig::seeded(42);
    let state = DiscoState::build_with_names(&graph, &config, names);
    println!(
        "landmarks: {} (expected Θ(√(n log n)) ≈ {:.0})",
        state.landmarks().len(),
        ((n as f64) * (n as f64).ln()).sqrt()
    );

    // 3. Route the first packet of a flow from one flat name to another,
    //    then subsequent packets.
    let router = DiscoRouter::new(&graph, &state);
    let (s, t) = (NodeId(17), NodeId(401));
    let shortest = router.true_distance(s, t);
    let first = router.route_first_packet(s, t);
    let later = router.route_later_packet(s, t);
    println!("routing {} -> {}", state.name_of(s), state.name_of(t));
    println!(
        "  shortest path:      {:.2} ({} hops minimum)",
        shortest,
        router.shortest_path(s, t).hop_count()
    );
    println!(
        "  first packet:       length {:.2}, stretch {:.3}, via {:?}",
        first.length,
        first.stretch(shortest),
        first.category
    );
    println!(
        "  subsequent packets: length {:.2}, stretch {:.3}, via {:?}",
        later.length,
        later.stretch(shortest),
        later.category
    );

    // 4. Show the per-node state bound in action.
    let breakdown = state.state_breakdown(&graph, s);
    println!(
        "routing state at {}: {} entries total (landmarks {}, vicinity {}, group addresses {})",
        state.name_of(s),
        breakdown.disco_total(),
        breakdown.landmark_entries,
        breakdown.vicinity_entries,
        breakdown.group_address_entries
    );
}
