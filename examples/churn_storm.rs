//! A churn storm, survived live: where `flat_name_mobility` rebuilds the
//! whole world for every move (the static-simulator trick), this example
//! drives the *running* distributed protocol through the same kind of
//! upheaval with a `disco-dynamics` schedule — a flash crowd of new nodes,
//! rolling link failures, Poisson node churn and one highly mobile node
//! hopping across the network — and probes route availability while the
//! storm is in progress.
//!
//! The storm is a pure function of the seed: run it twice and every number
//! is identical.
//!
//! Run with: `cargo run --release --example churn_storm`

use disco::core::config::DiscoConfig;
use disco::core::landmark::select_landmarks;
use disco::core::protocol::{DiscoProtocol, PhaseTimers};
use disco::dynamics::models::{FlashCrowd, LinkFailures, PoissonChurn, Waypoints};
use disco::dynamics::probe::{disco_first_packet_route, probe, sample_live_pairs};
use disco::graph::{generators, NodeId};
use disco::sim::Engine;
use std::collections::HashSet;

fn main() {
    let seed = 11;
    let n = 300;
    let graph = generators::gnm_average_degree(n, 8.0, seed);
    let cfg = DiscoConfig::seeded(seed);
    // Size estimates anticipate the flash crowd; landmark election uses the
    // initial population.
    let landmarks = select_landmarks(n, &cfg);
    let lm_set: HashSet<NodeId> = landmarks.iter().copied().collect();

    let mut engine = Engine::new(&graph, |v| {
        DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
    });
    let report = engine.run();
    assert!(report.converged);
    println!(
        "converged: {} nodes, {} landmarks, {:.0} control msgs/node",
        n,
        landmarks.len(),
        report.stats.mean_sent_per_node()
    );

    // The storm: four models compiled into one deterministic schedule.
    let horizon = 1200.0;
    let storm = FlashCrowd {
        arrivals: 24,
        at: 50.0,
        spread: 200.0,
        attach_links: 3,
        link_weight: 1.0,
    }
    .compile(&graph, seed)
    .merge(
        LinkFailures {
            mtbf: 4000.0,
            mttr: 60.0,
            horizon,
        }
        .compile(&graph, seed),
    )
    .merge(
        PoissonChurn {
            leave_rate_per_node: 0.0003,
            mean_downtime: 120.0,
            horizon,
            ..PoissonChurn::default()
        }
        .compile(&graph, seed),
    )
    .merge(
        // One frantic device: joins as a brand-new node (after the flash
        // crowd ids) and re-attaches somewhere else every 150 time units,
        // keeping its flat name the whole way.
        Waypoints {
            node: NodeId(n + 24),
            moves: 7,
            start: 100.0,
            period: 150.0,
            attach_links: 2,
            link_weight: 1.0,
        }
        .compile(&graph, seed),
    );
    println!(
        "storm: {} topology events over {horizon} time units",
        storm.len()
    );

    let start = engine.now();
    storm.apply_to(&mut engine);

    println!(
        "\n{:>8} {:>6} {:>10} {:>10} {:>13}",
        "time", "live", "routable", "delivered", "mean_stretch"
    );
    for i in 1..=6 {
        let t = start + horizon * i as f64 / 6.0;
        engine.run_to(t);
        let pairs = sample_live_pairs(&engine, 96, seed ^ i as u64);
        let p = probe(&engine, &pairs, disco_first_packet_route);
        println!(
            "{:>8.0} {:>6} {:>10} {:>10} {:>13.3}",
            t - start,
            engine.active_count(),
            p.routable,
            p.delivered,
            p.mean_stretch()
        );
    }

    let quiesced = engine.run_until(|_| false);
    let pairs = sample_live_pairs(&engine, 96, seed ^ 0xdead);
    let p = probe(&engine, &pairs, disco_first_packet_route);
    println!(
        "\nafter the storm (quiesced: {quiesced}): {} live nodes, availability {:.4}, mean stretch {:.3}",
        engine.active_count(),
        p.availability(),
        p.mean_stretch()
    );

    // The mobile node kept its identity through every re-attachment.
    let mobile = &engine.nodes()[n + 24];
    println!(
        "mobile node {} still answers to hash {} at landmark {:?}",
        NodeId(n + 24),
        mobile.my_hash(),
        mobile.my_address().map(|a| a.landmark)
    );
    println!(
        "storm cost: {} in-flight messages lost, {} topology events applied",
        engine.messages_dropped(),
        engine.topology_events()
    );
}
