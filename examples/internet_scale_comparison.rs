//! Internet-like comparison: Disco vs NDDisco vs S4 on a synthetic
//! router-level topology (the scenario behind the paper's Fig. 2/3/7).
//!
//! Run with: `cargo run --release --example internet_scale_comparison -- 4096`
//! (the optional argument is the node count; default 2048).

use disco::baselines::{S4Router, S4State};
use disco::core::prelude::*;
use disco::graph::generators;
use disco::metrics::{experiment::ExperimentParams, Topology};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2048);
    let seed = 5;
    let graph = generators::internet_router_like(n, seed);
    println!(
        "router-level-like topology: {} nodes, {} links, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let cfg = DiscoConfig::seeded(seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);

    // State comparison (Fig. 2 flavour).
    let nodes: Vec<_> = graph.nodes().collect();
    let disco_entries = disco::metrics::state::disco_entries(&graph, &disco_state, &nodes);
    let nd_entries = disco::metrics::state::nddisco_entries(&graph, &disco_state, &nodes);
    let s4_entries = disco::metrics::state::s4_entries(&s4_state, &nodes);
    println!("\nstate (entries per node):      mean      max");
    println!(
        "  Disco                    {:>8.1} {:>8}",
        disco_entries.mean(),
        disco_entries.max()
    );
    println!(
        "  ND-Disco                 {:>8.1} {:>8}",
        nd_entries.mean(),
        nd_entries.max()
    );
    println!(
        "  S4                       {:>8.1} {:>8}",
        s4_entries.mean(),
        s4_entries.max()
    );

    // Stretch comparison (Fig. 3 flavour).
    let params = ExperimentParams::for_nodes(n, seed);
    let pairs = disco::metrics::sample_pairs(
        n,
        params.stretch_sources * params.stretch_dests_per_source,
        seed,
    );
    let d_router = DiscoRouter::new(&graph, &disco_state);
    let s_router = S4Router::new(&graph, &s4_state);
    let d = disco::metrics::stretch::disco_stretch(&d_router, &pairs);
    let s = disco::metrics::stretch::s4_stretch(&s_router, &pairs);
    println!("\nstretch (mean / max):");
    println!(
        "  Disco first   {:.3} / {:.3}",
        d.mean_first(),
        d.max_first()
    );
    println!(
        "  Disco later   {:.3} / {:.3}",
        d.mean_later(),
        d.max_later()
    );
    println!(
        "  S4 first      {:.3} / {:.3}",
        s.mean_first(),
        s.max_first()
    );
    println!(
        "  S4 later      {:.3} / {:.3}",
        s.mean_later(),
        s.max_later()
    );
    let _ = Topology::RouterLevel;
}
