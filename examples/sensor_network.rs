//! Sensor-network scenario: the geometric, latency-weighted setting S4 was
//! designed for, showing Disco's bounded first-packet stretch against S4's
//! unbounded directory detour (the effect behind the paper's Fig. 3 left
//! and Fig. 5 middle).
//!
//! Run with: `cargo run --release --example sensor_network`

use disco::baselines::{S4Router, S4State};
use disco::core::prelude::*;
use disco::graph::{generators, NodeId};

fn main() {
    let n = 900;
    let seed = 13;
    // A field of sensors placed uniformly at random; link latency is the
    // Euclidean distance between radio neighbors.
    let graph = generators::geometric_connected(n, 8.0, seed);
    let cfg = DiscoConfig::seeded(seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);
    let disco = DiscoRouter::new(&graph, &disco_state);
    let s4 = S4Router::new(&graph, &s4_state);

    // Sink node collecting readings from every sensor: measure the cost of
    // the *first* packet of each sensor→sink flow (e.g. an alarm message
    // that must arrive quickly).
    let sink = NodeId(0);
    let mut disco_worst: f64 = 1.0;
    let mut s4_worst: f64 = 1.0;
    let mut disco_sum = 0.0;
    let mut s4_sum = 0.0;
    let mut count = 0.0;
    for sensor in graph.nodes().skip(1).step_by(3) {
        let d = disco.true_distance(sensor, sink);
        if d <= 0.0 {
            continue;
        }
        let disco_stretch = disco.route_first_packet(sensor, sink).stretch(d);
        let s4_stretch = s4.first_packet_stretch(sensor, sink);
        disco_worst = disco_worst.max(disco_stretch);
        s4_worst = s4_worst.max(s4_stretch);
        disco_sum += disco_stretch;
        s4_sum += s4_stretch;
        count += 1.0;
    }
    println!("first-packet (alarm) stretch over {count:.0} sensor→sink flows, latency-weighted:");
    println!(
        "  Disco: mean {:.3}, worst {:.3}",
        disco_sum / count,
        disco_worst
    );
    println!("  S4:    mean {:.3}, worst {:.3}", s4_sum / count, s4_worst);
    println!();
    println!(
        "Disco's worst case stays below the Theorem-1 bound of 7; S4's first packet\n\
         detours through a hashed directory landmark and can be far worse on a\n\
         latency-weighted field."
    );
}
