//! Mobility on flat names: a node keeps its name while its attachment point
//! (and therefore its address) changes.
//!
//! Flat names are the paper's headline motivation (§2): the name is stable
//! application-layer identity; the *address* — closest landmark plus an
//! explicit route — is internal protocol state that Disco recomputes when
//! the topology changes. This example moves a "mobile" node to a different
//! part of a geometric network and shows that (a) its name and hash, and
//! hence its sloppy group, never change, while (b) its address changes and
//! every flow to the name keeps working with low stretch.
//!
//! Run with: `cargo run --release --example flat_name_mobility`

use disco::core::prelude::*;
use disco::graph::{generators, GraphBuilder, NodeId};

/// Rebuild the geometric topology with the mobile node attached to a given
/// set of anchors (simulating re-attachment after movement).
fn topology_with_attachment(anchors: &[NodeId], seed: u64) -> disco::graph::Graph {
    let base = generators::geometric_connected(400, 8.0, seed);
    let mut b = GraphBuilder::new(base.node_count() + 1);
    for (_, e) in base.edges() {
        b.add_edge(e.u, e.v, e.weight);
    }
    let mobile = NodeId(base.node_count());
    for &a in anchors {
        b.add_edge(mobile, a, 0.5 * 1000.0);
    }
    b.build()
}

fn main() {
    let seed = 11;
    let mobile_name = FlatName::self_certifying(b"mobile-device-public-key");
    let config = DiscoConfig::seeded(seed);

    let mut names: Vec<FlatName> = (0..400).map(FlatName::synthetic).collect();
    names.push(mobile_name.clone());
    let mobile = NodeId(400);
    let correspondent = NodeId(3);

    for (phase, anchors) in [
        ("initial attachment", vec![NodeId(10), NodeId(11)]),
        (
            "after moving across the network",
            vec![NodeId(390), NodeId(391)],
        ),
    ] {
        let graph = topology_with_attachment(&anchors, seed);
        let state = DiscoState::build_with_names(&graph, &config, names.clone());
        let router = DiscoRouter::new(&graph, &state);

        let addr = state.address_of(mobile);
        let shortest = router.true_distance(correspondent, mobile);
        let first = router.route_first_packet(correspondent, mobile);
        println!("== {phase} ==");
        println!("  name (stable):    {}", state.name_of(mobile));
        println!(
            "  hash / group:     {} (group of {} nodes)",
            state.grouping().hash_of(mobile),
            state.grouping().core_group(mobile).len()
        );
        println!(
            "  address (changes): landmark {} at distance {:.1}, route {} hops",
            addr.landmark,
            addr.landmark_distance,
            addr.route.hop_count()
        );
        println!(
            "  flow to the name:  first-packet stretch {:.3} ({} hops)",
            first.stretch(shortest),
            first.hop_count()
        );
    }
    println!("\nThe name and sloppy group never changed; only the internal address did.");
}
