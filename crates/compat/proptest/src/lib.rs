//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`proptest!`] macro with `arg in integer_range` strategies,
//! [`ProptestConfig`] with a `cases` count, and the `prop_assert*` macros.
//!
//! Instead of shrinking random failures, the stand-in deterministically
//! samples `cases` points per test from a fixed seed, so failures reproduce
//! bit-for-bit on every run. See `crates/compat/README.md`.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; the stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is sized for microsecond-scale properties;
        // the properties here build whole routing states, so keep it small.
        ProptestConfig {
            cases: 8,
            max_shrink_iters: 0,
        }
    }
}

/// One splitmix64 step, used to derive per-case deterministic sample seeds.
#[doc(hidden)]
#[inline]
pub fn next_seed(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod strategy {
    /// A deterministic value source (stand-in for proptest strategies).
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// The value for sample seed `seed`.
        fn sample(&self, seed: u64) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, seed: u64) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (super::next_seed(seed) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, seed: u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    lo + (super::next_seed(seed) % (span.saturating_add(1))) as $t
                }
            }
        )*};
    }
    int_strategy!(u64, usize, u32, i64);
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Assert inside a property (plain `assert!` here; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Deterministic property-test runner mirroring proptest's macro shape.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that evaluates the body for `cases` deterministically sampled argument
/// tuples.
#[macro_export]
macro_rules! proptest {
    // Internal: no items left.
    (@run($cfg:expr)) => {};
    // Internal: one property fn, then the rest. Leading attributes
    // (doc comments and the conventional `#[test]`) are consumed and
    // replaced by this macro's own `#[test]`.
    (@run($cfg:expr)
     $(#[$_meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut case_seed: u64 = 0x5eed_0f_cafe;
            for _case in 0..cfg.cases {
                case_seed = $crate::next_seed(case_seed);
                let mut arg_seed = case_seed;
                $(
                    arg_seed = $crate::next_seed(arg_seed);
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), arg_seed);
                )*
                $body
            }
        }
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest! { @run($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Sampled values stay inside their strategy ranges.
        #[test]
        fn samples_in_range(a in 10u64..20, b in 3usize..=7) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((3..=7).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        assert_eq!(s.sample(123), s.sample(123));
    }
}
