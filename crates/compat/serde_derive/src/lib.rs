//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its public data types so that a
//! future PR can turn on real serialization, but nothing serializes yet and
//! the real `serde_derive` is unavailable offline. These derives expand to
//! nothing; the marker traits live in the sibling `serde` stand-in.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
