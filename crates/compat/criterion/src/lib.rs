//! Offline stand-in for `criterion`: same macro / builder surface, but each
//! benchmark body is simply timed over a fixed handful of iterations and the
//! mean is printed. Good enough to keep `cargo bench` compiling and to give
//! ballpark numbers; not a statistics engine. See `crates/compat/README.md`.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body (after one warm-up run).
const ITERATIONS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self }
    }

    /// Run a single named benchmark outside a group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in always runs a fixed
    /// number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark body.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Run a benchmark body parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.0, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` display form, like the real crate.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Handle passed to each benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations (after one warm-up call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = ITERATIONS;
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 1,
    };
    f(&mut b);
    let mean_ns = b.elapsed_ns / u128::from(b.iters.max(1));
    println!("  {name}: {:.3} ms/iter", mean_ns as f64 / 1e6);
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
