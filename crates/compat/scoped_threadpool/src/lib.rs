//! Offline stand-in for `scoped_threadpool`, covering the subset this
//! workspace uses: [`Pool::new`], [`Pool::scoped`] and [`Scope::execute`].
//!
//! The real crate keeps worker threads alive between `scoped` calls; this
//! stand-in spawns them per scope via [`std::thread::scope`] (std has had
//! sound scoped threads since 1.63, which is exactly what the real crate
//! predates). Closures queued with `execute` are distributed to `threads`
//! workers through a shared atomic cursor. Semantics relevant to callers
//! are identical: every closure runs to completion before `scoped`
//! returns, closures may borrow from the enclosing stack frame, and a
//! panicking closure propagates the panic out of `scoped`.
//!
//! Determinism note: closures run concurrently, so any shared-state
//! side effects are unordered — callers (e.g. `disco-core`'s
//! `DiscoState::build_parallel`) must write results into disjoint,
//! index-addressed slots, which makes the outcome independent of thread
//! interleaving.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pool of `threads` scoped workers.
#[derive(Debug)]
pub struct Pool {
    threads: u32,
}

impl Pool {
    /// A pool that runs scoped jobs on `threads` worker threads. Zero is
    /// clamped to one.
    pub fn new(threads: u32) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Run `f` with a [`Scope`] that can queue borrowing closures; returns
    /// once every queued closure has finished. With one thread (or when
    /// nothing is queued) everything runs on the calling thread — no
    /// spawn overhead for the sequential case.
    pub fn scoped<'scope, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            jobs: Mutex::new(Vec::new()),
        };
        let out = f(&scope);
        let jobs = scope.jobs.into_inner().unwrap();
        if jobs.is_empty() {
            return out;
        }
        if self.threads == 1 {
            for job in jobs {
                job();
            }
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Job<'scope>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let workers = (self.threads as usize).min(slots.len());
        let panic = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let slot = slots.get(i)?;
                        let job = slot.lock().unwrap().take().expect("job taken once");
                        if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                            return Some(p);
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("worker thread panicked outside a job"))
                .next()
        });
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Handle for queueing closures inside [`Pool::scoped`].
pub struct Scope<'scope> {
    jobs: Mutex<Vec<Job<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queue `f` to run on a pool worker before `scoped` returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.jobs.lock().unwrap().push(Box::new(f));
    }
}

/// Persistent-worker plumbing for long-lived coordinator/worker pipelines
/// (the sharded simulation engine): each [`plumbing::WorkerHandle`] owns
/// one named thread fed through an in-order channel and joined on drop.
/// Unlike [`Pool::scoped`], the worker thread *persists* across commands,
/// so it can own thread-affine state (e.g. protocol instances whose
/// interned paths live in a thread-local arena) for the whole run.
pub mod plumbing {
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::thread::JoinHandle;

    /// A persistent worker thread with an in-order command channel.
    ///
    /// Dropping the handle closes the channel (the worker's receive loop
    /// should then return) and joins the thread, propagating any panic.
    #[derive(Debug)]
    pub struct WorkerHandle<C> {
        tx: Option<Sender<C>>,
        handle: Option<JoinHandle<()>>,
    }

    impl<C: Send + 'static> WorkerHandle<C> {
        /// Spawn a named worker running `body` over its command receiver.
        /// `body` should loop on `recv()` and return when the channel
        /// disconnects.
        pub fn spawn<F>(name: String, body: F) -> WorkerHandle<C>
        where
            F: FnOnce(Receiver<C>) + Send + 'static,
        {
            let (tx, rx) = channel();
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || body(rx))
                .expect("spawning worker thread");
            WorkerHandle {
                tx: Some(tx),
                handle: Some(handle),
            }
        }

        /// Enqueue one command. Panics if the worker died (its loop exited
        /// or panicked) — the join on drop then surfaces the real cause.
        pub fn send(&self, cmd: C) {
            self.tx
                .as_ref()
                .expect("worker already shut down")
                .send(cmd)
                .expect("worker thread hung up");
        }
    }

    impl<C> Drop for WorkerHandle<C> {
        fn drop(&mut self) {
            drop(self.tx.take());
            if let Some(h) = self.handle.take() {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_processes_commands_in_order_and_joins_on_drop() {
        use std::sync::mpsc::channel;
        let (out_tx, out_rx) = channel();
        let w = plumbing::WorkerHandle::spawn("test-worker".into(), move |rx| {
            while let Ok(v) = rx.recv() {
                out_tx.send(v * 2).unwrap();
            }
        });
        for i in 0..10u64 {
            w.send(i);
        }
        drop(w);
        let got: Vec<u64> = out_rx.iter().collect();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_all_jobs_and_borrows_stack() {
        let mut results = vec![0u64; 64];
        let mut pool = Pool::new(4);
        pool.scoped(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.execute(move || *slot = (i as u64) * 3);
            }
        });
        assert!(results
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i as u64) * 3));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut hits = 0u32;
        Pool::new(1).scoped(|scope| {
            scope.execute(|| hits += 1);
        });
        assert_eq!(hits, 1);
        assert_eq!(Pool::new(0).thread_count(), 1);
    }

    #[test]
    fn returns_scope_closure_value() {
        let mut pool = Pool::new(2);
        let v = pool.scoped(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn job_panic_propagates() {
        let mut pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("boom"));
                scope.execute(|| {});
            });
        }));
        assert!(caught.is_err());
    }
}
