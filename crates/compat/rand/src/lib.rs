//! Offline stand-in for `rand 0.8`, covering exactly the API surface this
//! workspace uses (see `crates/compat/README.md`): seeded [`rngs::StdRng`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`]'s `choose` / `shuffle`.
//!
//! The generator is a splitmix64 counter stream: high quality for
//! simulation purposes, trivially seedable, and — the property every
//! experiment in this repository depends on — a pure function of the seed.
//! The stream differs from the real `StdRng` (ChaCha12), so seeded outputs
//! change if the real crate is ever swapped back in.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core RNG interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded RNG (splitmix64 counter stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        counter: u64,
        gamma: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate the counter start and step from the raw seed.
            StdRng {
                counter: splitmix64(seed),
                gamma: splitmix64(seed ^ 0xdead_beef_cafe_f00d) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.counter = self.counter.wrapping_add(self.gamma);
            splitmix64(self.counter)
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the subset of `rand`'s `Standard` distribution the workspace uses).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (bias negligible at 64 bits) bounded integer draw.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 128-bit multiply-shift: maps a uniform u64 onto [0, span) with at most
    // 2^-64 bias, which is far below anything a simulation can observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing RNG extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice helpers (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
