//! Offline stand-in for `serde`: marker traits plus the no-op derives from
//! the sibling `serde_derive` stand-in. See `crates/compat/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; nothing in the
/// workspace serializes yet).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
