//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed [`Bytes`] /
//! [`BytesMut`] with the tiny [`BufMut`] surface the workspace uses.
//! See `crates/compat/README.md`.

use std::ops::Deref;

/// Immutable byte buffer (no refcounted zero-copy slicing; plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u8(255);
        assert_eq!(b.len(), 2);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 255]);
        assert_eq!(frozen.len(), 2);
        assert!(!frozen.is_empty());
    }
}
