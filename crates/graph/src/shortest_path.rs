//! Shortest-path algorithms.
//!
//! The Disco reproduction needs four flavours of Dijkstra:
//!
//! * [`dijkstra`] — full single-source shortest-path tree; used for landmark
//!   trees (routes `ℓ ; v` embedded in addresses) and for ground-truth
//!   distances when computing stretch,
//! * [`k_nearest`] — truncated Dijkstra that stops after settling the `k`
//!   closest nodes; this *is* the paper's vicinity `V(v)` (the
//!   `Θ(√(n log n))` nodes closest to `v`),
//! * [`multi_source_dijkstra`] — distance to the closest of a set of sources
//!   (used to find each node's closest landmark `ℓ_v` in one pass),
//! * [`dijkstra_to_targets`] — early-terminating variant that stops once a
//!   given set of targets has been settled (used when measuring stretch on
//!   sampled source–destination pairs of very large graphs).
//!
//! Ties in distance are broken by node id so that vicinity membership and
//! closest-landmark assignment are deterministic, which keeps every
//! experiment reproducible.

use crate::graph::{Graph, NodeId, Weight};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Queue entry: (distance, tie-break id, node).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    dist: Weight,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, node id): reverse the natural order.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source shortest-path computation.
///
/// Stores, for every reached node, its distance from the source and its
/// predecessor on a shortest path; paths can be reconstructed with
/// [`ShortestPathTree::path_to`].
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: HashMap<NodeId, Weight>,
    parent: HashMap<NodeId, NodeId>,
    /// Nodes in the order they were settled (non-decreasing distance). For
    /// [`k_nearest`] this is exactly the vicinity ordering.
    settled: Vec<NodeId>,
}

impl ShortestPathTree {
    /// The source node of this tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`, if `v` was reached.
    pub fn distance(&self, v: NodeId) -> Option<Weight> {
        self.dist.get(&v).copied()
    }

    /// Whether `v` was reached/settled.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist.contains_key(&v)
    }

    /// Predecessor of `v` on its shortest path from the source.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent.get(&v).copied()
    }

    /// Nodes in settling order (non-decreasing distance, ties by id).
    pub fn settled_order(&self) -> &[NodeId] {
        &self.settled
    }

    /// Number of nodes reached (including the source).
    pub fn reached_count(&self) -> usize {
        self.dist.len()
    }

    /// Reconstruct the shortest path from the source to `v`.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if !self.dist.contains_key(&v) {
            return None;
        }
        let mut nodes = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[&cur];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path::new(nodes))
    }

    /// Iterate over `(node, distance)` for every reached node.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.dist.iter().map(|(&v, &d)| (v, d))
    }
}

/// Generic Dijkstra core. `limit` bounds the number of settled nodes
/// (`usize::MAX` for unbounded); `targets` (if non-empty) stops the search
/// once all of them are settled.
fn dijkstra_core(
    g: &Graph,
    source: NodeId,
    limit: usize,
    targets: Option<&HashSet<NodeId>>,
) -> ShortestPathTree {
    let mut dist: HashMap<NodeId, Weight> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut settled: Vec<NodeId> = Vec::new();
    let mut done: HashSet<NodeId> = HashSet::new();
    let mut remaining_targets = targets.map(|t| t.len()).unwrap_or(0);

    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry {
        dist: 0.0,
        node: source,
    });
    let mut best: HashMap<NodeId, Weight> = HashMap::new();
    best.insert(source, 0.0);

    while let Some(QueueEntry { dist: d, node: v }) = heap.pop() {
        if done.contains(&v) {
            continue;
        }
        done.insert(v);
        dist.insert(v, d);
        settled.push(v);
        if let Some(t) = targets {
            if t.contains(&v) {
                remaining_targets -= 1;
                if remaining_targets == 0 {
                    break;
                }
            }
        }
        if settled.len() >= limit {
            break;
        }
        for nb in g.neighbors(v) {
            if done.contains(&nb.node) {
                continue;
            }
            let nd = d + nb.weight;
            let improve = match best.get(&nb.node) {
                Some(&old) => {
                    nd < old
                        || (nd == old
                            && v.0 < parent.get(&nb.node).map(|p| p.0).unwrap_or(usize::MAX))
                }
                None => true,
            };
            if improve {
                best.insert(nb.node, nd);
                parent.insert(nb.node, v);
                heap.push(QueueEntry {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }

    ShortestPathTree {
        source,
        dist,
        parent,
        settled,
    }
}

/// Full single-source shortest paths from `source`.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPathTree {
    dijkstra_core(g, source, usize::MAX, None)
}

/// Truncated Dijkstra: settle only the `k` nodes closest to `source`
/// (including `source` itself). The settled order of the returned tree is
/// the vicinity of `source` in the paper's sense.
pub fn k_nearest(g: &Graph, source: NodeId, k: usize) -> ShortestPathTree {
    dijkstra_core(g, source, k.max(1), None)
}

/// Distance-bounded Dijkstra: settle every node at distance strictly less
/// than `bound` from `source`. Used to build S4's clusters (`w` belongs to
/// `v`'s cluster iff `d(v, w) < d(w, ℓ_w)`, i.e. `v` is settled by a search
/// from `w` bounded by `w`'s landmark distance).
pub fn dijkstra_bounded(g: &Graph, source: NodeId, bound: Weight) -> ShortestPathTree {
    let mut tree = dijkstra_core_bounded(g, source, bound);
    tree.settled.retain(|v| tree.dist[v] < bound);
    tree
}

fn dijkstra_core_bounded(g: &Graph, source: NodeId, bound: Weight) -> ShortestPathTree {
    let mut dist: HashMap<NodeId, Weight> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut settled: Vec<NodeId> = Vec::new();
    let mut done: HashSet<NodeId> = HashSet::new();
    let mut best: HashMap<NodeId, Weight> = HashMap::new();
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry {
        dist: 0.0,
        node: source,
    });
    best.insert(source, 0.0);
    while let Some(QueueEntry { dist: d, node: v }) = heap.pop() {
        if done.contains(&v) {
            continue;
        }
        if d >= bound {
            break;
        }
        done.insert(v);
        dist.insert(v, d);
        settled.push(v);
        for nb in g.neighbors(v) {
            if done.contains(&nb.node) {
                continue;
            }
            let nd = d + nb.weight;
            if nd >= bound {
                continue;
            }
            let improve = best.get(&nb.node).is_none_or(|&old| nd < old);
            if improve {
                best.insert(nb.node, nd);
                parent.insert(nb.node, v);
                heap.push(QueueEntry {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }
    ShortestPathTree {
        source,
        dist,
        parent,
        settled,
    }
}

/// Dijkstra that stops as soon as every node in `targets` has been settled
/// (or the graph component is exhausted).
pub fn dijkstra_to_targets(
    g: &Graph,
    source: NodeId,
    targets: &HashSet<NodeId>,
) -> ShortestPathTree {
    dijkstra_core(g, source, usize::MAX, Some(targets))
}

/// Result of a multi-source Dijkstra: for each reached node, the distance to
/// the closest source and which source that is.
#[derive(Debug, Clone)]
pub struct MultiSourceResult {
    dist: HashMap<NodeId, Weight>,
    closest: HashMap<NodeId, NodeId>,
}

impl MultiSourceResult {
    /// Distance from `v` to its closest source.
    pub fn distance(&self, v: NodeId) -> Option<Weight> {
        self.dist.get(&v).copied()
    }

    /// The closest source to `v` (ties broken by source id through the
    /// deterministic queue ordering).
    pub fn closest_source(&self, v: NodeId) -> Option<NodeId> {
        self.closest.get(&v).copied()
    }

    /// Number of nodes reached.
    pub fn reached_count(&self) -> usize {
        self.dist.len()
    }
}

/// Multi-source Dijkstra: computes, for every node, the distance to and
/// identity of its closest source in `sources`. Used to assign each node its
/// closest landmark `ℓ_v` in a single pass over the graph.
pub fn multi_source_dijkstra(g: &Graph, sources: &[NodeId]) -> MultiSourceResult {
    let mut dist: HashMap<NodeId, Weight> = HashMap::new();
    let mut closest: HashMap<NodeId, NodeId> = HashMap::new();
    let mut done: HashSet<NodeId> = HashSet::new();
    let mut best: HashMap<NodeId, (Weight, NodeId)> = HashMap::new();
    let mut heap = BinaryHeap::new();

    // Sort sources so tie-breaking (equal distance to two landmarks) is by
    // landmark id, independent of the caller's ordering.
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort();
    for &s in &sorted {
        best.insert(s, (0.0, s));
        heap.push(QueueEntry { dist: 0.0, node: s });
    }

    while let Some(QueueEntry { dist: d, node: v }) = heap.pop() {
        if done.contains(&v) {
            continue;
        }
        done.insert(v);
        let owner = best[&v].1;
        dist.insert(v, d);
        closest.insert(v, owner);
        for nb in g.neighbors(v) {
            if done.contains(&nb.node) {
                continue;
            }
            let nd = d + nb.weight;
            let improve = match best.get(&nb.node) {
                Some(&(old, old_owner)) => nd < old || (nd == old && owner.0 < old_owner.0),
                None => true,
            };
            if improve {
                best.insert(nb.node, (nd, owner));
                heap.push(QueueEntry {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }

    MultiSourceResult { dist, closest }
}

/// All-pairs shortest path distances by repeated Dijkstra. Quadratic memory;
/// only for small graphs (tests, 1,024-node experiments).
pub fn all_pairs_distances(g: &Graph) -> Vec<Vec<Option<Weight>>> {
    let n = g.node_count();
    let mut out = vec![vec![None; n]; n];
    for s in g.nodes() {
        let t = dijkstra(g, s);
        for (v, d) in t.iter() {
            out[s.0][v.0] = Some(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    /// 0 -1- 1 -1- 2 -1- 3 and a shortcut 0 -2.5- 3
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        b.add_edge(NodeId(2), NodeId(3), 1.0);
        b.add_edge(NodeId(0), NodeId(3), 2.5);
        b.build()
    }

    #[test]
    fn dijkstra_basic_distances() {
        let g = diamond();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.distance(NodeId(0)), Some(0.0));
        assert_eq!(t.distance(NodeId(1)), Some(1.0));
        assert_eq!(t.distance(NodeId(2)), Some(2.0));
        assert_eq!(t.distance(NodeId(3)), Some(2.5));
    }

    #[test]
    fn dijkstra_path_reconstruction() {
        let g = diamond();
        let t = dijkstra(&g, NodeId(0));
        let p = t.path_to(NodeId(2)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(p.is_valid(&g));
        assert!((p.length(&g) - 2.0).abs() < 1e-12);
        // Direct heavier edge is the shortest way to 3.
        let p3 = t.path_to(NodeId(3)).unwrap();
        assert_eq!(p3.nodes(), &[NodeId(0), NodeId(3)]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let t = dijkstra(&g, NodeId(0));
        assert!(!t.reached(NodeId(2)));
        assert!(t.path_to(NodeId(2)).is_none());
        assert_eq!(t.reached_count(), 2);
    }

    #[test]
    fn k_nearest_settles_exactly_k() {
        let g = generators::gnm_connected(64, 256, 7);
        let k = 10;
        let t = k_nearest(&g, NodeId(0), k);
        assert_eq!(t.settled_order().len(), k);
        assert_eq!(t.settled_order()[0], NodeId(0));
        // Settled order must be non-decreasing in distance.
        let dists: Vec<f64> = t
            .settled_order()
            .iter()
            .map(|&v| t.distance(v).unwrap())
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn k_nearest_matches_full_dijkstra_prefix() {
        let g = generators::geometric_connected(128, 8.0, 3);
        let full = dijkstra(&g, NodeId(5));
        let trunc = k_nearest(&g, NodeId(5), 20);
        for &v in trunc.settled_order() {
            assert_eq!(trunc.distance(v), full.distance(v));
        }
    }

    #[test]
    fn multi_source_assigns_closest() {
        let g = diamond();
        let res = multi_source_dijkstra(&g, &[NodeId(0), NodeId(3)]);
        assert_eq!(res.closest_source(NodeId(1)), Some(NodeId(0)));
        assert_eq!(res.closest_source(NodeId(2)), Some(NodeId(3)));
        assert_eq!(res.distance(NodeId(2)), Some(1.0));
        assert_eq!(res.reached_count(), 4);
    }

    #[test]
    fn multi_source_matches_min_of_single_sources() {
        let g = generators::gnm_connected(100, 400, 11);
        let sources = vec![NodeId(3), NodeId(50), NodeId(97)];
        let res = multi_source_dijkstra(&g, &sources);
        let trees: Vec<_> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
        for v in g.nodes() {
            let expect = trees
                .iter()
                .filter_map(|t| t.distance(v))
                .fold(f64::INFINITY, f64::min);
            let got = res.distance(v).unwrap();
            assert!((expect - got).abs() < 1e-9, "node {v}: {expect} vs {got}");
        }
    }

    #[test]
    fn dijkstra_to_targets_settles_all_targets() {
        let g = generators::gnm_connected(200, 800, 13);
        let targets: HashSet<NodeId> = [NodeId(9), NodeId(150), NodeId(42)].into_iter().collect();
        let t = dijkstra_to_targets(&g, NodeId(0), &targets);
        for &x in &targets {
            assert!(t.reached(x));
            // Distances must agree with the full computation.
            let full = dijkstra(&g, NodeId(0));
            assert_eq!(t.distance(x), full.distance(x));
        }
    }

    #[test]
    fn bounded_dijkstra_settles_exactly_nodes_within_bound() {
        let g = generators::gnm_connected(150, 600, 21);
        let full = dijkstra(&g, NodeId(7));
        let bound = 2.5;
        let t = dijkstra_bounded(&g, NodeId(7), bound);
        for v in g.nodes() {
            let within = full.distance(v).unwrap() < bound;
            assert_eq!(
                t.reached(v) && t.settled_order().contains(&v),
                within,
                "node {v}"
            );
            if within {
                assert_eq!(t.distance(v), full.distance(v));
            }
        }
    }

    #[test]
    fn bounded_dijkstra_zero_bound_is_empty() {
        let g = generators::ring(10);
        let t = dijkstra_bounded(&g, NodeId(0), 0.0);
        assert!(t.settled_order().is_empty());
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = generators::gnm_connected(40, 120, 5);
        let d = all_pairs_distances(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, d[j][i]);
            }
            assert_eq!(row[i], Some(0.0));
        }
    }
}
