//! Paths through a graph and their lengths.

use crate::graph::{Graph, NodeId, Weight};
use serde::{Deserialize, Serialize};

/// A walk through the graph given as the sequence of visited nodes
/// (`source` first, `destination` last). A single-node path represents a
/// node routing to itself and has length 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Create a path from the node sequence. Panics if empty.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        Path { nodes }
    }

    /// The trivial path containing a single node.
    pub fn trivial(v: NodeId) -> Self {
        Path { nodes: vec![v] }
    }

    /// First node of the path.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().unwrap()
    }

    /// Last node of the path.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of hops (edges) in the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether every consecutive pair of nodes is connected by an edge in
    /// `g`. Used by tests and the simulators' sanity checks.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.nodes.windows(2).all(|w| g.has_edge(w[0], w[1]))
    }

    /// Total weight of the path in `g`. Panics if the path is not valid.
    pub fn length(&self, g: &Graph) -> Weight {
        self.nodes
            .windows(2)
            .map(|w| {
                g.edge_weight(w[0], w[1])
                    .unwrap_or_else(|| panic!("path uses non-existent edge {}-{}", w[0], w[1]))
            })
            .sum()
    }

    /// Concatenate `self` with `other`; `other` must start where `self`
    /// ends. The joint node is not duplicated.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(
            self.destination(),
            other.source(),
            "cannot concatenate paths: {} != {}",
            self.destination(),
            other.source()
        );
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        Path { nodes }
    }

    /// The reversed path (destination becomes source). Valid because the
    /// graphs in this reproduction are undirected.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Path { nodes }
    }

    /// Sub-path from the first occurrence of `from` to the first occurrence
    /// of `to` at or after it, if both appear in that order.
    pub fn subpath(&self, from: NodeId, to: NodeId) -> Option<Path> {
        let i = self.nodes.iter().position(|&x| x == from)?;
        let j = self.nodes[i..].iter().position(|&x| x == to)? + i;
        Some(Path {
            nodes: self.nodes[i..=j].to_vec(),
        })
    }

    /// Iterator over the (undirected) edges of the path as node pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Whether the path visits any node more than once.
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().any(|v| !seen.insert(*v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line4() -> Graph {
        // 0 -1- 1 -2- 2 -3- 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 2.0);
        b.add_edge(NodeId(2), NodeId(3), 3.0);
        b.build()
    }

    #[test]
    fn length_and_hops() {
        let g = line4();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(p.hop_count(), 3);
        assert!((p.length(&g) - 6.0).abs() < 1e-12);
        assert!(p.is_valid(&g));
    }

    #[test]
    fn trivial_path() {
        let g = line4();
        let p = Path::trivial(NodeId(2));
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.length(&g), 0.0);
        assert_eq!(p.source(), p.destination());
        assert!(p.is_valid(&g));
    }

    #[test]
    fn invalid_path_detected() {
        let g = line4();
        let p = Path::new(vec![NodeId(0), NodeId(3)]);
        assert!(!p.is_valid(&g));
    }

    #[test]
    fn concat_joins_at_shared_node() {
        let a = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let b = Path::new(vec![NodeId(2), NodeId(3)]);
        let c = a.concat(&b);
        assert_eq!(c.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic]
    fn concat_requires_shared_node() {
        let a = Path::new(vec![NodeId(0), NodeId(1)]);
        let b = Path::new(vec![NodeId(2), NodeId(3)]);
        let _ = a.concat(&b);
    }

    #[test]
    fn reversed() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.reversed().nodes(), &[NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn subpath() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let s = p.subpath(NodeId(1), NodeId(3)).unwrap();
        assert_eq!(s.nodes(), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert!(p.subpath(NodeId(3), NodeId(1)).is_none());
    }

    #[test]
    fn loop_detection() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(0)]);
        assert!(p.has_loop());
        let q = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(!q.has_loop());
    }
}
