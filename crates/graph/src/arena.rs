//! Interned, reference-counted routing paths.
//!
//! Protocol simulations copy node paths constantly: every route
//! announcement carries one, every routing-table entry stores one, every
//! source-routed message peels one hop off at a time. Heap-allocated
//! `Vec<NodeId>` copies dominate the allocation profile of churn runs long
//! before the event queue does.
//!
//! [`PathArena`] fixes this with hash-consed cons cells: a path is a cell
//! `(head, tail)` where `tail` is the id of the path holding the remaining
//! nodes. Identical paths intern to the same cell id, so
//!
//! * cloning a path is a reference-count bump,
//! * prepending a hop (the path-vector operation: `my_id ; received_path`)
//!   is O(1) and shares the entire received path,
//! * dropping the first node (the source-routing operation: forward to
//!   `path[1]` carrying `path[1..]`) is O(1) and allocates nothing,
//! * equality is an id comparison.
//!
//! Cells are reference-counted (handles and child cells both count) and
//! freed into a free list, so the live-cell count tracks real routing
//! state; [`PathArena::stats`] exposes live/peak counts as the simulator's
//! allocation gauge (`exp_scale` reports it as the memory proxy).
//!
//! The arena is a thread-local pool: a discrete-event engine is
//! single-threaded, and messages exchanged by its nodes must share one
//! arena, so per-thread sharing gives exactly the right scope with no
//! handle-threading through every protocol constructor. [`InternedPath`] is
//! accordingly `!Send`; materialize with [`InternedPath::to_vec`] to move
//! path data across threads.

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::fmt;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Cell {
    /// First node of the path.
    head: u32,
    /// Id of the path containing the remaining nodes (`NIL` if none).
    tail: u32,
    /// Number of nodes in the path.
    len: u32,
    /// Last node of the path (destination), kept for O(1) access.
    last: u32,
    /// Reference count: live [`InternedPath`] handles plus child cells
    /// whose `tail` points here.
    rc: u32,
}

/// The thread-local interning pool. Use [`PathArena::stats`] to observe it;
/// paths are created through [`InternedPath`].
#[derive(Debug, Default)]
pub struct PathArena {
    cells: Vec<Cell>,
    free: Vec<u32>,
    /// `(head, tail)` → cell id.
    intern: FxHashMap<(u32, u32), u32>,
    live: usize,
    peak_live: usize,
    interned_total: u64,
}

/// Allocation gauge of the thread's path arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathArenaStats {
    /// Cells currently alive (≈ distinct path prefixes referenced by live
    /// routing state).
    pub live_cells: usize,
    /// High-water mark of `live_cells`.
    pub peak_live_cells: usize,
    /// Cells ever created (interning hits do not count).
    pub interned_total: u64,
    /// Capacity currently held by the arena, in cells (live + free-listed).
    pub capacity_cells: usize,
    /// Heap bytes pinned by live cells (`live_cells × sizeof(Cell)`) — the
    /// per-thread "live path bytes" gauge `exp_memory` charts.
    pub live_bytes: usize,
    /// Heap bytes held by the arena's backing storage (cell vector +
    /// free list; the intern map adds a comparable amount on top).
    pub capacity_bytes: usize,
}

thread_local! {
    static POOL: RefCell<PathArena> = RefCell::new(PathArena::default());
}

impl PathArena {
    /// Snapshot of this thread's arena gauge.
    pub fn stats() -> PathArenaStats {
        POOL.with(|p| {
            let p = p.borrow();
            PathArenaStats {
                live_cells: p.live,
                peak_live_cells: p.peak_live,
                interned_total: p.interned_total,
                capacity_cells: p.cells.len(),
                live_bytes: p.live * std::mem::size_of::<Cell>(),
                capacity_bytes: p.cells.capacity() * std::mem::size_of::<Cell>()
                    + p.free.capacity() * 4,
            }
        })
    }

    /// Post-churn compaction: release the arena capacity that churn peaks
    /// left free-listed. Live cells cannot move (handles hold their ids),
    /// so this truncates the free tail of the cell vector, drops the
    /// truncated ids from the free list and shrinks every backing
    /// allocation to fit. Returns the number of capacity cells released.
    pub fn shrink() -> usize {
        POOL.with(|p| p.borrow_mut().shrink_impl())
    }

    fn shrink_impl(&mut self) -> usize {
        let before = self.cells.len();
        let mut is_free = vec![false; self.cells.len()];
        for &f in &self.free {
            is_free[f as usize] = true;
        }
        while let Some(last) = self.cells.len().checked_sub(1) {
            if !is_free[last] {
                break;
            }
            self.cells.pop();
        }
        let kept = self.cells.len() as u32;
        self.free.retain(|&f| f < kept);
        self.cells.shrink_to_fit();
        self.free.shrink_to_fit();
        self.intern.shrink_to_fit();
        before - self.cells.len()
    }

    /// Reset the peak-live high-water mark to the current live count
    /// (between experiment phases).
    pub fn reset_peak() {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            p.peak_live = p.live;
        });
    }

    /// Cell id for `(head, tail)`, interning a new cell if necessary. The
    /// returned id carries a fresh reference. `tail`'s count is bumped only
    /// when a new cell is created (the cell itself then owns that
    /// reference).
    fn acquire(&mut self, head: u32, tail: u32, len: u32, last: u32) -> u32 {
        if let Some(&id) = self.intern.get(&(head, tail)) {
            self.cells[id as usize].rc += 1;
            return id;
        }
        if tail != NIL {
            self.cells[tail as usize].rc += 1;
        }
        let cell = Cell {
            head,
            tail,
            len,
            last,
            rc: 1,
        };
        let id = if let Some(id) = self.free.pop() {
            self.cells[id as usize] = cell;
            id
        } else {
            let id = self.cells.len() as u32;
            assert!(id != NIL, "path arena exhausted");
            self.cells.push(cell);
            id
        };
        self.intern.insert((head, tail), id);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.interned_total += 1;
        id
    }

    fn retain(&mut self, id: u32) {
        self.cells[id as usize].rc += 1;
    }

    fn release(&mut self, mut id: u32) {
        while id != NIL {
            let cell = &mut self.cells[id as usize];
            cell.rc -= 1;
            if cell.rc > 0 {
                return;
            }
            let Cell { head, tail, .. } = *cell;
            self.intern.remove(&(head, tail));
            self.free.push(id);
            self.live -= 1;
            id = tail; // drop the cell's reference to its tail
        }
    }
}

/// An interned path: a non-empty node sequence stored in the thread's
/// [`PathArena`]. Clone is a reference-count bump; equality is O(1);
/// prepending a node and dropping the first node are O(1) and share
/// structure with the original.
///
/// `!Send`/`!Sync` (the marker suppresses the auto traits): the id only
/// means something to the arena of the thread that created it, and
/// retain/release on another thread's arena would corrupt both.
pub struct InternedPath {
    id: u32,
    /// Pins the value to its creating thread (raw pointers are `!Send`
    /// and `!Sync`).
    _pool_local: std::marker::PhantomData<*const ()>,
}

impl InternedPath {
    /// Wrap an id whose reference this handle takes ownership of.
    fn wrap(id: u32) -> Self {
        InternedPath {
            id,
            _pool_local: std::marker::PhantomData,
        }
    }

    /// The single-node path `[node]`.
    pub fn single(node: NodeId) -> Self {
        let h = node.0 as u32;
        let id = POOL.with(|p| p.borrow_mut().acquire(h, NIL, 1, h));
        InternedPath::wrap(id)
    }

    /// Intern the path with the given node sequence. Panics if empty.
    pub fn from_slice(nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let last = nodes[nodes.len() - 1].0 as u32;
            let mut id = NIL;
            let mut len = 0u32;
            for node in nodes.iter().rev() {
                len += 1;
                let next = p.acquire(node.0 as u32, id, len, last);
                if id != NIL {
                    // `acquire` gave the new cell its own reference to
                    // `id`; drop the building reference we held.
                    p.release(id);
                }
                id = next;
            }
            InternedPath::wrap(id)
        })
    }

    /// The path `[node] ; self` — the path-vector prepend. O(1).
    pub fn prepend(&self, node: NodeId) -> Self {
        let id = POOL.with(|p| {
            let mut p = p.borrow_mut();
            let cell = p.cells[self.id as usize];
            p.acquire(node.0 as u32, self.id, cell.len + 1, cell.last)
        });
        InternedPath::wrap(id)
    }

    /// The path without its first node (`self[1..]`), or `None` for a
    /// single-node path. O(1), fully shared.
    pub fn tail(&self) -> Option<Self> {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let tail = p.cells[self.id as usize].tail;
            if tail == NIL {
                None
            } else {
                p.retain(tail);
                Some(InternedPath::wrap(tail))
            }
        })
    }

    /// First node (the source).
    pub fn first(&self) -> NodeId {
        POOL.with(|p| NodeId(p.borrow().cells[self.id as usize].head as usize))
    }

    /// Second node (the next hop of a source route), if any.
    pub fn second(&self) -> Option<NodeId> {
        POOL.with(|p| {
            let p = p.borrow();
            let tail = p.cells[self.id as usize].tail;
            if tail == NIL {
                None
            } else {
                Some(NodeId(p.cells[tail as usize].head as usize))
            }
        })
    }

    /// Last node (the destination). O(1).
    pub fn last(&self) -> NodeId {
        POOL.with(|p| NodeId(p.borrow().cells[self.id as usize].last as usize))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        POOL.with(|p| p.borrow().cells[self.id as usize].len as usize)
    }

    /// Interned paths are never empty; this exists for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` appears anywhere in the path. O(len).
    pub fn contains(&self, node: NodeId) -> bool {
        let needle = node.0 as u32;
        POOL.with(|p| {
            let p = p.borrow();
            let mut id = self.id;
            while id != NIL {
                let cell = &p.cells[id as usize];
                if cell.head == needle {
                    return true;
                }
                id = cell.tail;
            }
            false
        })
    }

    /// Call `f` for every node, front to back, without materializing.
    pub fn for_each(&self, mut f: impl FnMut(NodeId)) {
        POOL.with(|p| {
            let p = p.borrow();
            let mut id = self.id;
            while id != NIL {
                let cell = &p.cells[id as usize];
                f(NodeId(cell.head as usize));
                id = cell.tail;
            }
        })
    }

    /// Materialize the node sequence.
    pub fn to_vec(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|n| out.push(n));
        out
    }

    /// The reversed path. O(len) — rebuilds (the arena shares prefixes, not
    /// suffixes).
    pub fn reversed(&self) -> Self {
        let mut nodes = self.to_vec();
        nodes.reverse();
        Self::from_slice(&nodes)
    }

    /// Concatenate with `other`, which must start where `self` ends; the
    /// joint node appears once. Shares `other`'s structure; O(self.len).
    pub fn concat(&self, other: &InternedPath) -> Self {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            assert_eq!(
                p.cells[self.id as usize].last, p.cells[other.id as usize].head,
                "cannot concatenate paths that do not chain"
            );
            // Collect self's nodes except the last, then prepend them onto
            // `other` back to front.
            let mut nodes = Vec::with_capacity(p.cells[self.id as usize].len as usize);
            let mut id = self.id;
            while id != NIL {
                let cell = &p.cells[id as usize];
                if cell.tail != NIL {
                    nodes.push(cell.head);
                }
                id = cell.tail;
            }
            let mut id = other.id;
            p.retain(id);
            let last = p.cells[other.id as usize].last;
            let mut len = p.cells[other.id as usize].len;
            for &head in nodes.iter().rev() {
                len += 1;
                let next = p.acquire(head, id, len, last);
                p.release(id);
                id = next;
            }
            InternedPath::wrap(id)
        })
    }

    /// Route-preference ordering: shorter paths first, ties broken by
    /// lexicographic node order — exactly `(len, nodes) < (len, nodes)` on
    /// materialized vectors, without materializing.
    pub fn cmp_route(&self, other: &InternedPath) -> Ordering {
        if self.id == other.id {
            return Ordering::Equal;
        }
        POOL.with(|p| {
            let p = p.borrow();
            let (a, b) = (&p.cells[self.id as usize], &p.cells[other.id as usize]);
            a.len.cmp(&b.len).then_with(|| {
                let (mut x, mut y) = (self.id, other.id);
                while x != NIL && y != NIL {
                    if x == y {
                        return Ordering::Equal; // shared suffix
                    }
                    let (cx, cy) = (&p.cells[x as usize], &p.cells[y as usize]);
                    match cx.head.cmp(&cy.head) {
                        Ordering::Equal => {
                            x = cx.tail;
                            y = cy.tail;
                        }
                        ord => return ord,
                    }
                }
                Ordering::Equal
            })
        })
    }
}

impl Clone for InternedPath {
    fn clone(&self) -> Self {
        POOL.with(|p| p.borrow_mut().retain(self.id));
        InternedPath::wrap(self.id)
    }
}

impl Drop for InternedPath {
    fn drop(&mut self) {
        // `try_with`: during thread teardown the pool may already be gone,
        // in which case there is nothing left to release.
        let _ = POOL.try_with(|p| p.borrow_mut().release(self.id));
    }
}

impl PartialEq for InternedPath {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes ids canonical per node sequence.
        self.id == other.id
    }
}
impl Eq for InternedPath {}

impl fmt::Debug for InternedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        self.for_each(|n| {
            list.entry(&n);
        });
        list.finish()
    }
}

impl From<&[NodeId]> for InternedPath {
    fn from(nodes: &[NodeId]) -> Self {
        Self::from_slice(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(ns: &[usize]) -> Vec<NodeId> {
        ns.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn roundtrip_and_accessors() {
        let p = InternedPath::from_slice(&ids(&[3, 1, 4, 1, 5]));
        assert_eq!(p.to_vec(), ids(&[3, 1, 4, 1, 5]));
        assert_eq!(p.len(), 5);
        assert_eq!(p.first(), NodeId(3));
        assert_eq!(p.second(), Some(NodeId(1)));
        assert_eq!(p.last(), NodeId(5));
        assert!(p.contains(NodeId(4)));
        assert!(!p.contains(NodeId(9)));
        assert!(!p.is_empty());
    }

    #[test]
    fn interning_dedupes_and_equality_is_structural() {
        let a = InternedPath::from_slice(&ids(&[1, 2, 3]));
        let b = InternedPath::from_slice(&ids(&[1, 2, 3]));
        let c = InternedPath::from_slice(&ids(&[1, 2, 4]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.id, b.id, "identical paths must share a cell");
    }

    #[test]
    fn prepend_and_tail_share_structure() {
        let base = InternedPath::from_slice(&ids(&[7, 8]));
        let before = PathArena::stats().live_cells;
        let longer = base.prepend(NodeId(6));
        assert_eq!(longer.to_vec(), ids(&[6, 7, 8]));
        // Exactly one new cell for the prepended head.
        assert_eq!(PathArena::stats().live_cells, before + 1);
        let t = longer.tail().unwrap();
        assert_eq!(t, base);
        assert_eq!(PathArena::stats().live_cells, before + 1);
        let single = InternedPath::single(NodeId(9));
        assert!(single.tail().is_none());
        assert_eq!(single.second(), None);
    }

    #[test]
    fn refcounting_frees_cells() {
        let before = PathArena::stats().live_cells;
        {
            let p = InternedPath::from_slice(&ids(&[100, 101, 102]));
            let q = p.clone();
            assert_eq!(PathArena::stats().live_cells, before + 3);
            drop(p);
            assert_eq!(PathArena::stats().live_cells, before + 3);
            drop(q);
        }
        assert_eq!(PathArena::stats().live_cells, before);
        assert!(PathArena::stats().peak_live_cells >= before + 3);
    }

    #[test]
    fn shared_prefix_is_not_shared_but_shared_suffix_is() {
        // Cons cells share suffixes: [1,2,3] and [0,2,3] share [2,3].
        let before = PathArena::stats().live_cells;
        let a = InternedPath::from_slice(&ids(&[201, 202, 203]));
        let _b = a.tail().unwrap().prepend(NodeId(200));
        assert_eq!(PathArena::stats().live_cells, before + 4);
    }

    #[test]
    fn reversed_and_concat() {
        let a = InternedPath::from_slice(&ids(&[1, 2, 3]));
        assert_eq!(a.reversed().to_vec(), ids(&[3, 2, 1]));
        let b = InternedPath::from_slice(&ids(&[3, 4, 5]));
        let c = a.concat(&b);
        assert_eq!(c.to_vec(), ids(&[1, 2, 3, 4, 5]));
        assert_eq!(c.len(), 5);
        assert_eq!(c.last(), NodeId(5));
    }

    #[test]
    #[should_panic]
    fn concat_requires_chaining() {
        let a = InternedPath::from_slice(&ids(&[1, 2]));
        let b = InternedPath::from_slice(&ids(&[3, 4]));
        let _ = a.concat(&b);
    }

    #[test]
    fn route_ordering_matches_vec_ordering() {
        let cases: &[&[usize]] = &[
            &[1],
            &[1, 2],
            &[1, 3],
            &[2, 3],
            &[1, 2, 3],
            &[1, 2, 4],
            &[5, 0, 0],
        ];
        for x in cases {
            for y in cases {
                let a = InternedPath::from_slice(&ids(x));
                let b = InternedPath::from_slice(&ids(y));
                let want = (x.len(), *x).cmp(&(y.len(), *y));
                assert_eq!(a.cmp_route(&b), want, "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn shrink_releases_free_tail_but_keeps_live_cells() {
        // Other tests on this thread may hold arena state; work relative.
        let keep = InternedPath::from_slice(&ids(&[401, 402]));
        let bulk: Vec<InternedPath> = (0..64)
            .map(|i| InternedPath::from_slice(&ids(&[500 + i, 600 + i, 700 + i])))
            .collect();
        let grown = PathArena::stats().capacity_cells;
        drop(bulk);
        let released = PathArena::shrink();
        assert!(released >= 64 * 3 - 2, "released only {released}");
        let after = PathArena::stats();
        assert!(after.capacity_cells <= grown - released);
        assert_eq!(keep.to_vec(), ids(&[401, 402]), "live paths survive");
        assert_eq!(
            after.live_bytes,
            after.live_cells * std::mem::size_of::<Cell>()
        );
        // The arena still works after shrinking: interning, prepend, drop.
        let p = keep.prepend(NodeId(400));
        assert_eq!(p.to_vec(), ids(&[400, 401, 402]));
    }

    #[test]
    fn free_list_reuses_capacity() {
        let p = InternedPath::from_slice(&ids(&[301, 302, 303, 304]));
        let cap = PathArena::stats().capacity_cells;
        drop(p);
        let _q = InternedPath::from_slice(&ids(&[305, 306, 307, 308]));
        assert_eq!(PathArena::stats().capacity_cells, cap);
    }
}
