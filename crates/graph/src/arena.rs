//! Interned, reference-counted routing paths.
//!
//! Protocol simulations copy node paths constantly: every route
//! announcement carries one, every routing-table entry stores one, every
//! source-routed message peels one hop off at a time. Heap-allocated
//! `Vec<NodeId>` copies dominate the allocation profile of churn runs long
//! before the event queue does.
//!
//! [`PathArena`] fixes this with hash-consed cons cells: a path is a cell
//! `(head, tail)` where `tail` is the id of the path holding the remaining
//! nodes. Identical paths intern to the same cell id, so
//!
//! * cloning a path is a reference-count bump,
//! * prepending a hop (the path-vector operation: `my_id ; received_path`)
//!   is O(1) and shares the entire received path,
//! * dropping the first node (the source-routing operation: forward to
//!   `path[1]` carrying `path[1..]`) is O(1) and allocates nothing,
//! * equality is an id comparison.
//!
//! Cells are reference-counted (handles and child cells both count) and
//! freed into a free list, so the live-cell count tracks real routing
//! state; [`PathArena::stats`] exposes live/peak counts as the simulator's
//! allocation gauge (`exp_scale` reports it as the memory proxy).
//!
//! The arena is a thread-local pool: a discrete-event engine is
//! single-threaded, and messages exchanged by its nodes must share one
//! arena, so per-thread sharing gives exactly the right scope with no
//! handle-threading through every protocol constructor. [`InternedPath`] is
//! accordingly `!Send`; materialize with [`InternedPath::to_vec`] to move
//! path data across threads.

use crate::graph::NodeId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::fmt;

const NIL: u32 = u32::MAX;

/// Open-addressed intern table over the cell slab: `slots[i]` holds a cell
/// id or `NIL`. The cell *is* the key — a probe hashes `(head, tail)` and
/// compares against `cells[id]` in place — so the table stores 4 bytes per
/// slot instead of the ~28 B/cell a separate `FxHashMap<(u32, u32), u32>`
/// cost (12 B key+value, doubled capacity, control bytes). Linear probing
/// with backward-shift deletion (no tombstones); occupancy stays ≤ 3/4.
///
/// Slots are mapped with the multiply-shift (Lemire) reduction instead of
/// a power-of-two mask, so the table can grow ×1.5 to *exact* sizes: on a
/// 10M-cell churn run, power-of-two doubling would round a needed 8.9M
/// slots up to 16.8M — at table sizes in the tens of megabytes that
/// rounding is a measurable slice of peak RSS.
#[derive(Debug, Default)]
struct InternTable {
    /// Slot array of cell ids (`NIL` = empty); any size ≥ 16.
    slots: Vec<u32>,
    /// Occupied slots.
    len: usize,
}

/// Mix `(head, tail)` into a uniform 64-bit hash (splitmix64 finalizer;
/// the multiply-shift reduction uses the *high* bits, which this mixes
/// well even for the sequential ids the arena hands out).
#[inline]
fn intern_hash(head: u32, tail: u32) -> u64 {
    let mut z = ((head as u64) << 32) | (tail as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash onto `0..size` without division or masking:
/// `(h * size) >> 64` is uniform for uniform `h` and works for any size.
#[inline]
fn reduce(h: u64, size: usize) -> usize {
    ((h as u128 * size as u128) >> 64) as usize
}

impl InternTable {
    /// Slot holding the cell keyed `(head, tail)`, or the empty slot where
    /// it would be inserted.
    #[inline]
    fn probe(&self, head: u32, tail: u32, cells: &[Cell]) -> Result<usize, usize> {
        let size = self.slots.len();
        debug_assert!(size > 0);
        let mut i = reduce(intern_hash(head, tail), size);
        loop {
            let id = self.slots[i];
            if id == NIL {
                return Err(i);
            }
            let c = &cells[id as usize];
            if c.head == head && c.tail == tail {
                return Ok(i);
            }
            i += 1;
            if i == size {
                i = 0;
            }
        }
    }

    /// Cell id interned for `(head, tail)`, if any.
    #[inline]
    fn get(&self, head: u32, tail: u32, cells: &[Cell]) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        self.probe(head, tail, cells).ok().map(|i| self.slots[i])
    }

    /// Intern `id` (whose key is read from `cells[id]`). The key must not
    /// already be present.
    fn insert(&mut self, id: u32, cells: &[Cell]) {
        // Keep occupancy ≤ 3/4 so probe chains stay short; grow ×1.5
        // (geometric, so inserts stay amortized O(1), but with 25% less
        // worst-case slack than doubling).
        if self.slots.len() * 3 <= (self.len + 1) * 4 {
            let cap = (self.slots.len() + self.slots.len() / 2).max(16);
            self.rebuild(cap, cells);
        }
        let c = &cells[id as usize];
        let slot = self
            .probe(c.head, c.tail, cells)
            .expect_err("interning a key that is already present");
        self.slots[slot] = id;
        self.len += 1;
    }

    /// Remove the entry keyed `(head, tail)`. Backward-shift deletion: the
    /// displaced tail of the probe chain moves up so lookups never need
    /// tombstones. Whether a later entry may fill the hole is decided from
    /// its *ideal* slot, recomputed from the cell slab.
    fn remove(&mut self, head: u32, tail: u32, cells: &[Cell]) {
        let Ok(slot) = self.probe(head, tail, cells) else {
            unreachable!("releasing a cell that was never interned");
        };
        let size = self.slots.len();
        let cyc = |from: usize, to: usize| (to + size - from) % size;
        let mut hole = slot;
        let mut j = slot;
        loop {
            j += 1;
            if j == size {
                j = 0;
            }
            let id = self.slots[j];
            if id == NIL {
                break;
            }
            let c = &cells[id as usize];
            let ideal = reduce(intern_hash(c.head, c.tail), size);
            // `id` may move into the hole iff its ideal slot is cyclically
            // at or before the hole (i.e. not within `(hole, j]`).
            if cyc(ideal, j) >= cyc(hole, j) {
                self.slots[hole] = id;
                hole = j;
            }
        }
        self.slots[hole] = NIL;
        self.len -= 1;
    }

    /// Re-probe every entry into a fresh table of exactly `cap` slots
    /// (which must keep occupancy ≤ 3/4).
    fn rebuild(&mut self, cap: usize, cells: &[Cell]) {
        assert!(self.len * 4 <= cap * 3, "intern table rebuild under-sized");
        let old = std::mem::replace(&mut self.slots, vec![NIL; cap]);
        for id in old {
            if id == NIL {
                continue;
            }
            let c = &cells[id as usize];
            let mut i = reduce(intern_hash(c.head, c.tail), cap);
            while self.slots[i] != NIL {
                i += 1;
                if i == cap {
                    i = 0;
                }
            }
            self.slots[i] = id;
        }
    }

    /// Shrink the slot array close to the smallest size the occupancy
    /// allows (post-churn compaction). Targets 3/2 of the occupancy, not
    /// the exact 4/3 grow threshold: a threshold-exact table would pay a
    /// full O(n) rebuild on the very next insert.
    fn shrink_to_fit(&mut self, cells: &[Cell]) {
        let want = (self.len * 3 / 2).max(16);
        if want < self.slots.len() {
            self.rebuild(want, cells);
        }
    }

    /// Heap bytes held by the slot array.
    fn bytes(&self) -> usize {
        self.slots.capacity() * 4
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    /// First node of the path.
    head: u32,
    /// Id of the path containing the remaining nodes (`NIL` if none).
    tail: u32,
    /// Number of nodes in the path.
    len: u32,
    /// Last node of the path (destination), kept for O(1) access.
    last: u32,
    /// Reference count: live [`InternedPath`] handles plus child cells
    /// whose `tail` points here.
    rc: u32,
}

/// The thread-local interning pool. Use [`PathArena::stats`] to observe it;
/// paths are created through [`InternedPath`].
#[derive(Debug, Default)]
pub struct PathArena {
    cells: Vec<Cell>,
    free: Vec<u32>,
    /// `(head, tail)` → cell id, open-addressed directly over `cells`.
    intern: InternTable,
    live: usize,
    peak_live: usize,
    interned_total: u64,
}

/// Allocation gauge of the thread's path arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathArenaStats {
    /// Cells currently alive (≈ distinct path prefixes referenced by live
    /// routing state).
    pub live_cells: usize,
    /// High-water mark of `live_cells`.
    pub peak_live_cells: usize,
    /// Cells ever created (interning hits do not count).
    pub interned_total: u64,
    /// Capacity currently held by the arena, in cells (live + free-listed).
    pub capacity_cells: usize,
    /// Heap bytes pinned by live cells (`live_cells × sizeof(Cell)`) — the
    /// per-thread "live path bytes" gauge `exp_memory` charts.
    pub live_bytes: usize,
    /// Heap bytes held by the arena's backing storage (cell vector +
    /// free list + intern table).
    pub capacity_bytes: usize,
    /// Heap bytes of the open-addressed intern table alone (the
    /// "intern bytes" column of `exp_memory`'s per-component accounting;
    /// the separate hash map this table replaced cost ~28 B per live
    /// cell, ~5× this).
    pub intern_bytes: usize,
}

thread_local! {
    static POOL: RefCell<PathArena> = RefCell::new(PathArena::default());
}

impl PathArena {
    /// Snapshot of this thread's arena gauge.
    pub fn stats() -> PathArenaStats {
        POOL.with(|p| {
            let p = p.borrow();
            PathArenaStats {
                live_cells: p.live,
                peak_live_cells: p.peak_live,
                interned_total: p.interned_total,
                capacity_cells: p.cells.len(),
                live_bytes: p.live * std::mem::size_of::<Cell>(),
                capacity_bytes: p.cells.capacity() * std::mem::size_of::<Cell>()
                    + p.free.capacity() * 4
                    + p.intern.bytes(),
                intern_bytes: p.intern.bytes(),
            }
        })
    }

    /// Post-churn compaction: release the arena capacity that churn peaks
    /// left free-listed. Live cells cannot move (handles hold their ids),
    /// so this truncates the free tail of the cell vector, drops the
    /// truncated ids from the free list and shrinks every backing
    /// allocation to fit. Returns the number of capacity cells released.
    pub fn shrink() -> usize {
        POOL.with(|p| p.borrow_mut().shrink_impl())
    }

    fn shrink_impl(&mut self) -> usize {
        let before = self.cells.len();
        let mut is_free = vec![false; self.cells.len()];
        for &f in &self.free {
            is_free[f as usize] = true;
        }
        while let Some(last) = self.cells.len().checked_sub(1) {
            if !is_free[last] {
                break;
            }
            self.cells.pop();
        }
        let kept = self.cells.len() as u32;
        self.free.retain(|&f| f < kept);
        self.cells.shrink_to_fit();
        self.free.shrink_to_fit();
        self.intern.shrink_to_fit(&self.cells);
        before - self.cells.len()
    }

    /// Reset the peak-live high-water mark to the current live count
    /// (between experiment phases).
    pub fn reset_peak() {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            p.peak_live = p.live;
        });
    }

    /// Cell id for `(head, tail)`, interning a new cell if necessary. The
    /// returned id carries a fresh reference. `tail`'s count is bumped only
    /// when a new cell is created (the cell itself then owns that
    /// reference).
    fn acquire(&mut self, head: u32, tail: u32, len: u32, last: u32) -> u32 {
        if let Some(id) = self.intern.get(head, tail, &self.cells) {
            self.cells[id as usize].rc += 1;
            return id;
        }
        if tail != NIL {
            self.cells[tail as usize].rc += 1;
        }
        let cell = Cell {
            head,
            tail,
            len,
            last,
            rc: 1,
        };
        let id = if let Some(id) = self.free.pop() {
            self.cells[id as usize] = cell;
            id
        } else {
            let id = self.cells.len() as u32;
            assert!(id != NIL, "path arena exhausted");
            self.cells.push(cell);
            id
        };
        self.intern.insert(id, &self.cells);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.interned_total += 1;
        id
    }

    fn retain(&mut self, id: u32) {
        self.cells[id as usize].rc += 1;
    }

    fn release(&mut self, mut id: u32) {
        while id != NIL {
            let cell = &mut self.cells[id as usize];
            cell.rc -= 1;
            if cell.rc > 0 {
                return;
            }
            let Cell { head, tail, .. } = *cell;
            self.intern.remove(head, tail, &self.cells);
            self.free.push(id);
            self.live -= 1;
            id = tail; // drop the cell's reference to its tail
        }
    }
}

/// An interned path: a non-empty node sequence stored in the thread's
/// [`PathArena`]. Clone is a reference-count bump; equality is O(1);
/// prepending a node and dropping the first node are O(1) and share
/// structure with the original.
///
/// `!Send`/`!Sync` (the marker suppresses the auto traits): the id only
/// means something to the arena of the thread that created it, and
/// retain/release on another thread's arena would corrupt both.
pub struct InternedPath {
    /// Cell id plus one (`NonZeroU32` so `Option<InternedPath>` is 4
    /// bytes — the `RibStore` selection column stores one per interned
    /// destination). The arena's raw id space is `0..u32::MAX - 1`
    /// (`acquire` asserts), so the +1 cannot wrap.
    id: std::num::NonZeroU32,
    /// Pins the value to its creating thread (raw pointers are `!Send`
    /// and `!Sync`).
    _pool_local: std::marker::PhantomData<*const ()>,
}

impl InternedPath {
    /// Wrap an id whose reference this handle takes ownership of.
    fn wrap(id: u32) -> Self {
        InternedPath {
            id: std::num::NonZeroU32::new(id + 1).expect("cell id overflow"),
            _pool_local: std::marker::PhantomData,
        }
    }

    /// The arena cell id this handle owns a reference to.
    #[inline]
    fn raw(&self) -> u32 {
        self.id.get() - 1
    }

    /// The single-node path `[node]`.
    pub fn single(node: NodeId) -> Self {
        let h = node.0 as u32;
        let id = POOL.with(|p| p.borrow_mut().acquire(h, NIL, 1, h));
        InternedPath::wrap(id)
    }

    /// Intern the path with the given node sequence. Panics if empty.
    pub fn from_slice(nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let last = nodes[nodes.len() - 1].0 as u32;
            let mut id = NIL;
            let mut len = 0u32;
            for node in nodes.iter().rev() {
                len += 1;
                let next = p.acquire(node.0 as u32, id, len, last);
                if id != NIL {
                    // `acquire` gave the new cell its own reference to
                    // `id`; drop the building reference we held.
                    p.release(id);
                }
                id = next;
            }
            InternedPath::wrap(id)
        })
    }

    /// [`InternedPath::contains`] and [`InternedPath::prepend`] fused into
    /// one pool borrow — the path-vector's per-announcement loop check
    /// plus prepend: `None` when `node` already appears in the path,
    /// otherwise the prepended path. O(len) for the scan, O(1) to build.
    pub fn prepend_unless_contains(&self, node: NodeId) -> Option<Self> {
        let needle = node.0 as u32;
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let mut id = self.raw();
            while id != NIL {
                let cell = &p.cells[id as usize];
                if cell.head == needle {
                    return None;
                }
                id = cell.tail;
            }
            let cell = p.cells[self.raw() as usize];
            let id = p.acquire(needle, self.raw(), cell.len + 1, cell.last);
            Some(InternedPath::wrap(id))
        })
    }

    /// The path `[node] ; self` — the path-vector prepend. O(1).
    pub fn prepend(&self, node: NodeId) -> Self {
        let id = POOL.with(|p| {
            let mut p = p.borrow_mut();
            let cell = p.cells[self.raw() as usize];
            p.acquire(node.0 as u32, self.raw(), cell.len + 1, cell.last)
        });
        InternedPath::wrap(id)
    }

    /// The path without its first node (`self[1..]`), or `None` for a
    /// single-node path. O(1), fully shared.
    pub fn tail(&self) -> Option<Self> {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let tail = p.cells[self.raw() as usize].tail;
            if tail == NIL {
                None
            } else {
                p.retain(tail);
                Some(InternedPath::wrap(tail))
            }
        })
    }

    /// First node (the source).
    pub fn first(&self) -> NodeId {
        POOL.with(|p| NodeId(p.borrow().cells[self.raw() as usize].head as usize))
    }

    /// Second node (the next hop of a source route), if any.
    pub fn second(&self) -> Option<NodeId> {
        POOL.with(|p| {
            let p = p.borrow();
            let tail = p.cells[self.raw() as usize].tail;
            if tail == NIL {
                None
            } else {
                Some(NodeId(p.cells[tail as usize].head as usize))
            }
        })
    }

    /// Last node (the destination). O(1).
    pub fn last(&self) -> NodeId {
        POOL.with(|p| NodeId(p.borrow().cells[self.raw() as usize].last as usize))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        POOL.with(|p| p.borrow().cells[self.raw() as usize].len as usize)
    }

    /// Interned paths are never empty; this exists for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` appears anywhere in the path. O(len).
    pub fn contains(&self, node: NodeId) -> bool {
        let needle = node.0 as u32;
        POOL.with(|p| {
            let p = p.borrow();
            let mut id = self.raw();
            while id != NIL {
                let cell = &p.cells[id as usize];
                if cell.head == needle {
                    return true;
                }
                id = cell.tail;
            }
            false
        })
    }

    /// Call `f` for every node, front to back, without materializing.
    pub fn for_each(&self, mut f: impl FnMut(NodeId)) {
        POOL.with(|p| {
            let p = p.borrow();
            let mut id = self.raw();
            while id != NIL {
                let cell = &p.cells[id as usize];
                f(NodeId(cell.head as usize));
                id = cell.tail;
            }
        })
    }

    /// Materialize the node sequence.
    pub fn to_vec(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|n| out.push(n));
        out
    }

    /// The reversed path. O(len) — rebuilds (the arena shares prefixes, not
    /// suffixes).
    pub fn reversed(&self) -> Self {
        let mut nodes = self.to_vec();
        nodes.reverse();
        Self::from_slice(&nodes)
    }

    /// Concatenate with `other`, which must start where `self` ends; the
    /// joint node appears once. Shares `other`'s structure; O(self.len).
    pub fn concat(&self, other: &InternedPath) -> Self {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            assert_eq!(
                p.cells[self.raw() as usize].last,
                p.cells[other.raw() as usize].head,
                "cannot concatenate paths that do not chain"
            );
            // Collect self's nodes except the last, then prepend them onto
            // `other` back to front.
            let mut nodes = Vec::with_capacity(p.cells[self.raw() as usize].len as usize);
            let mut id = self.raw();
            while id != NIL {
                let cell = &p.cells[id as usize];
                if cell.tail != NIL {
                    nodes.push(cell.head);
                }
                id = cell.tail;
            }
            let mut id = other.raw();
            p.retain(id);
            let last = p.cells[other.raw() as usize].last;
            let mut len = p.cells[other.raw() as usize].len;
            for &head in nodes.iter().rev() {
                len += 1;
                let next = p.acquire(head, id, len, last);
                p.release(id);
                id = next;
            }
            InternedPath::wrap(id)
        })
    }

    /// Route-preference ordering: shorter paths first, ties broken by
    /// lexicographic node order — exactly `(len, nodes) < (len, nodes)` on
    /// materialized vectors, without materializing.
    pub fn cmp_route(&self, other: &InternedPath) -> Ordering {
        if self.id == other.id {
            return Ordering::Equal;
        }
        POOL.with(|p| {
            let p = p.borrow();
            let (a, b) = (
                &p.cells[self.raw() as usize],
                &p.cells[other.raw() as usize],
            );
            a.len.cmp(&b.len).then_with(|| {
                let (mut x, mut y) = (self.raw(), other.raw());
                while x != NIL && y != NIL {
                    if x == y {
                        return Ordering::Equal; // shared suffix
                    }
                    let (cx, cy) = (&p.cells[x as usize], &p.cells[y as usize]);
                    match cx.head.cmp(&cy.head) {
                        Ordering::Equal => {
                            x = cx.tail;
                            y = cy.tail;
                        }
                        ord => return ord,
                    }
                }
                Ordering::Equal
            })
        })
    }
}

impl Clone for InternedPath {
    fn clone(&self) -> Self {
        POOL.with(|p| p.borrow_mut().retain(self.raw()));
        InternedPath {
            id: self.id,
            _pool_local: std::marker::PhantomData,
        }
    }
}

impl Drop for InternedPath {
    fn drop(&mut self) {
        // `try_with`: during thread teardown the pool may already be gone,
        // in which case there is nothing left to release.
        let _ = POOL.try_with(|p| p.borrow_mut().release(self.raw()));
    }
}

impl PartialEq for InternedPath {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes ids canonical per node sequence.
        self.id == other.id
    }
}
impl Eq for InternedPath {}

impl fmt::Debug for InternedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        self.for_each(|n| {
            list.entry(&n);
        });
        list.finish()
    }
}

impl From<&[NodeId]> for InternedPath {
    fn from(nodes: &[NodeId]) -> Self {
        Self::from_slice(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(ns: &[usize]) -> Vec<NodeId> {
        ns.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn roundtrip_and_accessors() {
        let p = InternedPath::from_slice(&ids(&[3, 1, 4, 1, 5]));
        assert_eq!(p.to_vec(), ids(&[3, 1, 4, 1, 5]));
        assert_eq!(p.len(), 5);
        assert_eq!(p.first(), NodeId(3));
        assert_eq!(p.second(), Some(NodeId(1)));
        assert_eq!(p.last(), NodeId(5));
        assert!(p.contains(NodeId(4)));
        assert!(!p.contains(NodeId(9)));
        assert!(!p.is_empty());
    }

    #[test]
    fn interning_dedupes_and_equality_is_structural() {
        let a = InternedPath::from_slice(&ids(&[1, 2, 3]));
        let b = InternedPath::from_slice(&ids(&[1, 2, 3]));
        let c = InternedPath::from_slice(&ids(&[1, 2, 4]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.id, b.id, "identical paths must share a cell");
    }

    #[test]
    fn prepend_and_tail_share_structure() {
        let base = InternedPath::from_slice(&ids(&[7, 8]));
        let before = PathArena::stats().live_cells;
        let longer = base.prepend(NodeId(6));
        assert_eq!(longer.to_vec(), ids(&[6, 7, 8]));
        // Exactly one new cell for the prepended head.
        assert_eq!(PathArena::stats().live_cells, before + 1);
        let t = longer.tail().unwrap();
        assert_eq!(t, base);
        assert_eq!(PathArena::stats().live_cells, before + 1);
        let single = InternedPath::single(NodeId(9));
        assert!(single.tail().is_none());
        assert_eq!(single.second(), None);
    }

    #[test]
    fn refcounting_frees_cells() {
        let before = PathArena::stats().live_cells;
        {
            let p = InternedPath::from_slice(&ids(&[100, 101, 102]));
            let q = p.clone();
            assert_eq!(PathArena::stats().live_cells, before + 3);
            drop(p);
            assert_eq!(PathArena::stats().live_cells, before + 3);
            drop(q);
        }
        assert_eq!(PathArena::stats().live_cells, before);
        assert!(PathArena::stats().peak_live_cells >= before + 3);
    }

    #[test]
    fn shared_prefix_is_not_shared_but_shared_suffix_is() {
        // Cons cells share suffixes: [1,2,3] and [0,2,3] share [2,3].
        let before = PathArena::stats().live_cells;
        let a = InternedPath::from_slice(&ids(&[201, 202, 203]));
        let _b = a.tail().unwrap().prepend(NodeId(200));
        assert_eq!(PathArena::stats().live_cells, before + 4);
    }

    #[test]
    fn reversed_and_concat() {
        let a = InternedPath::from_slice(&ids(&[1, 2, 3]));
        assert_eq!(a.reversed().to_vec(), ids(&[3, 2, 1]));
        let b = InternedPath::from_slice(&ids(&[3, 4, 5]));
        let c = a.concat(&b);
        assert_eq!(c.to_vec(), ids(&[1, 2, 3, 4, 5]));
        assert_eq!(c.len(), 5);
        assert_eq!(c.last(), NodeId(5));
    }

    #[test]
    #[should_panic]
    fn concat_requires_chaining() {
        let a = InternedPath::from_slice(&ids(&[1, 2]));
        let b = InternedPath::from_slice(&ids(&[3, 4]));
        let _ = a.concat(&b);
    }

    #[test]
    fn route_ordering_matches_vec_ordering() {
        let cases: &[&[usize]] = &[
            &[1],
            &[1, 2],
            &[1, 3],
            &[2, 3],
            &[1, 2, 3],
            &[1, 2, 4],
            &[5, 0, 0],
        ];
        for x in cases {
            for y in cases {
                let a = InternedPath::from_slice(&ids(x));
                let b = InternedPath::from_slice(&ids(y));
                let want = (x.len(), *x).cmp(&(y.len(), *y));
                assert_eq!(a.cmp_route(&b), want, "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn shrink_releases_free_tail_but_keeps_live_cells() {
        // Other tests on this thread may hold arena state; work relative.
        let keep = InternedPath::from_slice(&ids(&[401, 402]));
        let bulk: Vec<InternedPath> = (0..64)
            .map(|i| InternedPath::from_slice(&ids(&[500 + i, 600 + i, 700 + i])))
            .collect();
        let grown = PathArena::stats().capacity_cells;
        drop(bulk);
        let released = PathArena::shrink();
        assert!(released >= 64 * 3 - 2, "released only {released}");
        let after = PathArena::stats();
        assert!(after.capacity_cells <= grown - released);
        assert_eq!(keep.to_vec(), ids(&[401, 402]), "live paths survive");
        assert_eq!(
            after.live_bytes,
            after.live_cells * std::mem::size_of::<Cell>()
        );
        // The arena still works after shrinking: interning, prepend, drop.
        let p = keep.prepend(NodeId(400));
        assert_eq!(p.to_vec(), ids(&[400, 401, 402]));
    }

    /// Stress the open-addressed intern table against a map model through
    /// interleaved interning and dropping: every lookup/insert/remove path
    /// (including backward-shift deletion and grow/shrink rebuilds) must
    /// agree with hash-consing semantics — identical sequences share a
    /// cell, distinct sequences do not, dropped paths really free.
    #[test]
    fn intern_table_survives_random_churn() {
        let mut rng: u64 = 0x5eed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let before = PathArena::stats().live_cells;
        let mut held: Vec<(Vec<NodeId>, InternedPath)> = Vec::new();
        for _ in 0..4000 {
            let r = next();
            if r % 3 != 0 || held.is_empty() {
                // Intern a path of 1..=6 nodes drawn from a small universe
                // so suffix sharing and exact duplicates both occur often.
                let len = 1 + (next() % 6) as usize;
                let nodes: Vec<NodeId> = (0..len)
                    .map(|_| NodeId(800 + (next() % 24) as usize))
                    .collect();
                let p = InternedPath::from_slice(&nodes);
                assert_eq!(p.to_vec(), nodes);
                // Hash-consing: re-interning must hit the same cell.
                let q = InternedPath::from_slice(&nodes);
                assert_eq!(p.id, q.id);
                held.push((nodes, p));
            } else {
                let i = (next() as usize) % held.len();
                let (nodes, p) = held.swap_remove(i);
                assert_eq!(p.to_vec(), nodes);
                drop(p);
            }
        }
        // Every held path still reads back; drop the rest and the arena
        // returns to its pre-test live count (all cells released through
        // the table's remove path).
        for (nodes, p) in held.drain(..) {
            assert_eq!(p.to_vec(), nodes);
            drop(p);
        }
        assert_eq!(PathArena::stats().live_cells, before);
    }

    #[test]
    fn option_interned_path_has_a_niche() {
        // The RibStore selection column stores one Option<InternedPath>
        // per interned destination; the NonZeroU32 id keeps it at 4 bytes.
        assert_eq!(std::mem::size_of::<Option<InternedPath>>(), 4);
        assert_eq!(std::mem::size_of::<InternedPath>(), 4);
    }

    #[test]
    fn stats_report_intern_table_bytes() {
        let _keep: Vec<InternedPath> = (0..64)
            .map(|i| InternedPath::from_slice(&ids(&[900 + i, 901 + i])))
            .collect();
        let st = PathArena::stats();
        assert!(st.intern_bytes >= 16 * 4, "table must be allocated");
        assert!(
            st.capacity_bytes >= st.intern_bytes,
            "capacity bytes include the intern table"
        );
        // 4 bytes per slot at ≤ 3/4 occupancy: far below the ~28 B/cell of
        // the map this replaced.
        assert!(st.intern_bytes < st.capacity_cells * 16);
    }

    #[test]
    fn free_list_reuses_capacity() {
        let p = InternedPath::from_slice(&ids(&[301, 302, 303, 304]));
        let cap = PathArena::stats().capacity_cells;
        drop(p);
        let _q = InternedPath::from_slice(&ids(&[305, 306, 307, 308]));
        assert_eq!(PathArena::stats().capacity_cells, cap);
    }
}
