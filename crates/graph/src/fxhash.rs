//! A fast, deterministic hasher for simulation-internal maps.
//!
//! `std`'s default `SipHash` with per-process random keys costs real time in
//! the simulator's hot paths (routing tables, Adj-RIB-In maps, the path
//! arena's intern table) and randomizes iteration order between processes.
//! This is the well-known `FxHash` multiply-mix scheme (rustc's internal
//! hasher): not DoS-resistant — irrelevant for a simulator hashing its own
//! dense ids — but several times faster on small keys and fully
//! deterministic.
//!
//! Iteration order of an `FxHashMap` is still arbitrary (it depends on
//! insertion history), so code must remain order-insensitive exactly as it
//! had to be under `SipHash`; determinism of *results* comes from that
//! order-insensitivity, not from the hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixer: rotate, xor, multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn map_works_with_node_ids() {
        let mut m: FxHashMap<NodeId, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(NodeId(i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&NodeId(371)), Some(&371));
        m.remove(&NodeId(371));
        assert_eq!(m.get(&NodeId(371)), None);
    }

    #[test]
    fn hashes_are_deterministic() {
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"disco"), h(b"disco"));
        assert_ne!(h(b"disco"), h(b"disc0"));
        // Multi-chunk input exercises the remainder path.
        assert_ne!(h(b"0123456789abcdef!"), h(b"0123456789abcdef?"));
    }

    #[test]
    fn set_works() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }
}
