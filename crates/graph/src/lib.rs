//! # disco-graph
//!
//! Graph substrate for the Disco compact-routing reproduction
//! (*Scalable Routing on Flat Names*, CoNEXT 2010).
//!
//! The paper evaluates routing protocols over undirected, connected,
//! possibly edge-weighted networks: Internet AS-level and router-level maps,
//! `G(n, m)` random graphs, and geometric random graphs with Euclidean link
//! latencies. This crate provides:
//!
//! * [`Graph`] — a compact adjacency-list representation of an undirected
//!   weighted graph,
//! * [`GraphBuilder`] — incremental construction with duplicate-edge
//!   handling,
//! * [`generators`] — all topology families used in the paper's evaluation
//!   plus pathological topologies used to exercise worst cases (ring, star,
//!   the two-level tree from the paper's footnote 6 that breaks S4's state
//!   bound),
//! * [`shortest_path`] — Dijkstra in full, truncated (k nearest nodes, used
//!   to build vicinities), multi-source and target-set variants, plus path
//!   reconstruction,
//! * [`properties`] — connectivity checks, degree statistics, diameter
//!   estimation.
//!
//! All generators are deterministic given a seed, so every experiment in the
//! paper reproduction is replayable bit-for-bit.
//!
//! ```
//! use disco_graph::{generators, shortest_path};
//!
//! // A 256-node G(n, m) random graph with average degree 8.
//! let g = generators::gnm_connected(256, 1024, 42);
//! assert!(disco_graph::properties::is_connected(&g));
//!
//! // Shortest-path tree from node 0.
//! let spt = shortest_path::dijkstra(&g, disco_graph::NodeId(0));
//! assert!(spt.distance(disco_graph::NodeId(17)).is_some());
//! ```

pub mod arena;
pub mod builder;
pub mod fxhash;
pub mod generators;
pub mod graph;
pub mod path;
pub mod properties;
pub mod shortest_path;

pub use arena::{InternedPath, PathArena, PathArenaStats};
pub use builder::GraphBuilder;
pub use fxhash::{FxHashMap, FxHashSet};
pub use graph::{EdgeId, Graph, Neighbor, NodeId, Weight};
pub use path::Path;
pub use shortest_path::{
    dijkstra, dijkstra_bounded, dijkstra_to_targets, k_nearest, multi_source_dijkstra,
    ShortestPathTree,
};
