//! Compact undirected weighted graph representation.
//!
//! The graph is stored as a flat adjacency list (CSR-like, but kept as
//! per-node `Vec`s for simplicity of incremental construction through
//! [`crate::GraphBuilder`]). Node identifiers are dense `usize` indices
//! wrapped in [`NodeId`]; the paper's *flat names* are a separate concept
//! layered on top by `disco-core` — a graph node never needs to know its
//! name.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Link weight (latency / cost). The paper uses unweighted Internet maps
/// (weight 1.0 per hop) and Euclidean latencies on geometric random graphs.
pub type Weight = f64;

/// Dense node identifier, `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Dense edge identifier, `0..m`. Each undirected edge has a single id shared
/// by both endpoints; this is what congestion accounting keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One directed half of an undirected edge as seen from a node's adjacency
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The node at the other end of the edge.
    pub node: NodeId,
    /// The undirected edge identifier.
    pub edge: EdgeId,
    /// Link weight.
    pub weight: Weight,
}

/// An undirected edge record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint (the smaller index by construction in the builder).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Link weight.
    pub weight: Weight,
}

impl Edge {
    /// Given one endpoint, return the other. Panics if `x` is not an
    /// endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge {self:?}");
        }
    }
}

/// An undirected weighted graph with dense node ids.
///
/// Invariants maintained by [`crate::GraphBuilder`]:
/// * no self loops,
/// * no parallel edges,
/// * every weight is finite and strictly positive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<Neighbor>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Construct directly from parts. Intended for use by the builder; most
    /// callers should use [`crate::GraphBuilder`] or a generator.
    pub(crate) fn from_parts(adjacency: Vec<Vec<Neighbor>>, edges: Vec<Edge>) -> Self {
        Graph { adjacency, edges }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all undirected edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Edge record by id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Neighbors of `v` (the node's adjacency list).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.adjacency[v.0]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.0].len()
    }

    /// Whether an edge between `u` and `v` exists; linear in `min(deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.0].iter().any(|nb| nb.node == b)
    }

    /// Find the undirected edge id between `u` and `v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency[u.0]
            .iter()
            .find(|nb| nb.node == v)
            .map(|nb| nb.edge)
    }

    /// Weight of the edge between `u` and `v`, if any.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.adjacency[u.0]
            .iter()
            .find(|nb| nb.node == v)
            .map(|nb| nb.weight)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 2.0);
        b.add_edge(NodeId(2), NodeId(0), 3.0);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (_, e) in g.edges() {
            assert!(g.has_edge(e.u, e.v));
            assert!(g.has_edge(e.v, e.u));
        }
    }

    #[test]
    fn edge_lookup_and_weight() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(2.0));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(1)), Some(2.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), None);
        let id = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.edge(id).weight, 3.0);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.other(e.u), e.v);
        assert_eq!(e.other(e.v), e.u);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: NodeId(0),
            v: NodeId(1),
            weight: 1.0,
        };
        let _ = e.other(NodeId(5));
    }

    #[test]
    fn total_weight() {
        let g = triangle();
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(3).to_string(), "e3");
    }
}
