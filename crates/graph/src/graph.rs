//! Compact undirected weighted graph representation.
//!
//! The graph is stored as a flat adjacency list (CSR-like, but kept as
//! per-node `Vec`s for simplicity of incremental construction through
//! [`crate::GraphBuilder`]). Node identifiers are dense `usize` indices
//! wrapped in [`NodeId`]; the paper's *flat names* are a separate concept
//! layered on top by `disco-core` — a graph node never needs to know its
//! name.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Link weight (latency / cost). The paper uses unweighted Internet maps
/// (weight 1.0 per hop) and Euclidean latencies on geometric random graphs.
pub type Weight = f64;

/// Dense node identifier, `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Dense edge identifier, `0..m`. Each undirected edge has a single id shared
/// by both endpoints; this is what congestion accounting keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One directed half of an undirected edge as seen from a node's adjacency
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The node at the other end of the edge.
    pub node: NodeId,
    /// The undirected edge identifier.
    pub edge: EdgeId,
    /// Link weight.
    pub weight: Weight,
}

/// An undirected edge record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint (the smaller index by construction in the builder).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Link weight.
    pub weight: Weight,
}

impl Edge {
    /// Given one endpoint, return the other. Panics if `x` is not an
    /// endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge {self:?}");
        }
    }
}

/// An undirected weighted graph with dense node ids.
///
/// Invariants maintained by [`crate::GraphBuilder`] and the mutation API:
/// * no self loops,
/// * no parallel edges,
/// * every weight is finite and strictly positive.
///
/// The graph is mutable at runtime to support dynamic-network simulation
/// (`disco-sim` topology events, `disco-dynamics` churn schedules): nodes
/// can be appended and edges inserted or removed. Removing an edge retires
/// its [`EdgeId`] permanently — ids are never reused, so congestion counters
/// and traces keyed by edge id stay unambiguous across topology changes.
/// A node is never deleted from the id space; "leaving" the network means
/// losing all incident edges (see [`Graph::detach_node`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<Neighbor>>,
    edges: Vec<Edge>,
    /// Liveness per edge slot; `false` marks a removed (retired) edge.
    edge_live: Vec<bool>,
    dead_edges: usize,
}

impl Graph {
    /// Construct directly from parts. Intended for use by the builder; most
    /// callers should use [`crate::GraphBuilder`] or a generator.
    pub(crate) fn from_parts(adjacency: Vec<Vec<Neighbor>>, edges: Vec<Edge>) -> Self {
        let edge_live = vec![true; edges.len()];
        Graph {
            adjacency,
            edges,
            edge_live,
            dead_edges: 0,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of live undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len() - self.dead_edges
    }

    /// Number of edge-id slots ever allocated (`max(EdgeId) + 1`). Arrays
    /// indexed by [`EdgeId`] must be sized by this, not [`Graph::edge_count`],
    /// once edges have been removed.
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all live undirected edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.edge_live[i])
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// Edge record by id. Retired edges keep their record (endpoints and
    /// weight at removal time); check [`Graph::edge_is_live`] when it matters.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Whether the edge slot `id` is currently part of the graph.
    #[inline]
    pub fn edge_is_live(&self, id: EdgeId) -> bool {
        self.edge_live[id.0]
    }

    /// Append a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() - 1)
    }

    /// Insert an undirected edge `{u, v}` with the given weight.
    ///
    /// Returns the new edge's id, or `None` if the edge is a self loop or
    /// already exists. Panics if an endpoint is out of range or the weight
    /// is not finite and positive — same contract as
    /// [`crate::GraphBuilder::add_edge`].
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> Option<EdgeId> {
        let n = self.node_count();
        assert!(
            u.0 < n && v.0 < n,
            "edge endpoint out of range: {u} or {v} >= {n}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be finite and positive, got {weight}"
        );
        if u == v || self.has_edge(u, v) {
            return None;
        }
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { u: a, v: b, weight });
        self.edge_live.push(true);
        for (from, to) in [(a, b), (b, a)] {
            let list = &mut self.adjacency[from.0];
            // Keep adjacency sorted by neighbor id (the builder's invariant,
            // which explicit-route interface indices depend on).
            let pos = list.partition_point(|nb| nb.node.0 < to.0);
            list.insert(
                pos,
                Neighbor {
                    node: to,
                    edge: id,
                    weight,
                },
            );
        }
        Some(id)
    }

    /// Remove the undirected edge `{u, v}`, retiring its id. Returns the
    /// retired id, or `None` if no such edge exists.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let id = self.find_edge(u, v)?;
        for x in [u, v] {
            self.adjacency[x.0].retain(|nb| nb.edge != id);
        }
        self.edge_live[id.0] = false;
        self.dead_edges += 1;
        Some(id)
    }

    /// Remove every edge incident to `v` (a node leaving the network),
    /// returning its former neighbors with the lost link weights.
    pub fn detach_node(&mut self, v: NodeId) -> Vec<(NodeId, Weight)> {
        let former: Vec<(NodeId, Weight)> = self.adjacency[v.0]
            .iter()
            .map(|nb| (nb.node, nb.weight))
            .collect();
        for &(peer, _) in &former {
            self.remove_edge(v, peer);
        }
        former
    }

    /// Neighbors of `v` (the node's adjacency list).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.adjacency[v.0]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.0].len()
    }

    /// Whether an edge between `u` and `v` exists; linear in `min(deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.0].iter().any(|nb| nb.node == b)
    }

    /// Find the undirected edge id between `u` and `v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency[u.0]
            .iter()
            .find(|nb| nb.node == v)
            .map(|nb| nb.edge)
    }

    /// Weight of the edge between `u` and `v`, if any.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.adjacency[u.0]
            .iter()
            .find(|nb| nb.node == v)
            .map(|nb| nb.weight)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 2.0);
        b.add_edge(NodeId(2), NodeId(0), 3.0);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (_, e) in g.edges() {
            assert!(g.has_edge(e.u, e.v));
            assert!(g.has_edge(e.v, e.u));
        }
    }

    #[test]
    fn edge_lookup_and_weight() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(2.0));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(1)), Some(2.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), None);
        let id = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.edge(id).weight, 3.0);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.other(e.u), e.v);
        assert_eq!(e.other(e.v), e.u);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: NodeId(0),
            v: NodeId(1),
            weight: 1.0,
        };
        let _ = e.other(NodeId(5));
    }

    #[test]
    fn total_weight() {
        let g = triangle();
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(3).to_string(), "e3");
    }

    #[test]
    fn insert_edge_keeps_adjacency_sorted() {
        let mut g = triangle();
        let d = g.add_node();
        assert_eq!(d, NodeId(3));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(d), 0);
        let id = g.insert_edge(d, NodeId(0), 2.5).unwrap();
        assert!(g.edge_is_live(id));
        assert_eq!(g.edge_weight(NodeId(0), d), Some(2.5));
        let ids: Vec<usize> = g.neighbors(NodeId(0)).iter().map(|nb| nb.node.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Self loops and duplicates are rejected without panicking.
        assert_eq!(g.insert_edge(d, d, 1.0), None);
        assert_eq!(g.insert_edge(NodeId(0), d, 9.0), None);
        assert_eq!(g.edge_weight(NodeId(0), d), Some(2.5));
    }

    #[test]
    fn remove_edge_retires_id() {
        let mut g = triangle();
        let id = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.remove_edge(NodeId(1), NodeId(0)), Some(id));
        assert!(!g.edge_is_live(id));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_slots(), 3);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.remove_edge(NodeId(0), NodeId(1)), None);
        assert!(g.edges().all(|(eid, _)| eid != id));
        // Re-inserting the same endpoints allocates a fresh id.
        let id2 = g.insert_edge(NodeId(0), NodeId(1), 4.0).unwrap();
        assert_ne!(id, id2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4.0));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_slots(), 4);
    }

    #[test]
    fn detach_node_drops_all_links() {
        let mut g = triangle();
        let former = g.detach_node(NodeId(2));
        assert_eq!(former, vec![(NodeId(0), 3.0), (NodeId(1), 2.0)]);
        assert_eq!(g.degree(NodeId(2)), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.detach_node(NodeId(2)).is_empty());
    }
}
