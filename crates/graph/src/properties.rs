//! Structural graph properties used by the experiments and tests.

use crate::graph::{Graph, NodeId, Weight};
use crate::shortest_path::dijkstra;
use std::collections::VecDeque;

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Connected components as lists of node ids; each list is sorted, and the
/// components are returned in order of their smallest node id.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let c = out.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(NodeId(start));
        comp[start] = c;
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for nb in g.neighbors(v) {
                if comp[nb.node.0] == usize::MAX {
                    comp[nb.node.0] = c;
                    queue.push_back(nb.node);
                }
            }
        }
        members.sort();
        out.push(members);
    }
    out
}

/// Degree distribution: `result[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Estimate the weighted diameter by double-sweep: run Dijkstra from an
/// arbitrary node, then from the farthest node found. This is a lower bound
/// on (and in practice very close to) the true diameter; exact diameters are
/// not needed by any experiment.
pub fn estimate_diameter(g: &Graph) -> Weight {
    if g.node_count() == 0 {
        return 0.0;
    }
    let t1 = dijkstra(g, NodeId(0));
    let far = t1
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(v, _)| v)
        .unwrap_or(NodeId(0));
    let t2 = dijkstra(g, far);
    t2.iter().map(|(_, d)| d).fold(0.0, f64::max)
}

/// Mean shortest-path distance over a sample of `samples` random-ish source
/// nodes (deterministic: the first `samples` node ids are used).
pub fn mean_distance_sampled(g: &Graph, samples: usize) -> Weight {
    let mut total = 0.0;
    let mut count = 0usize;
    for s in g.nodes().take(samples.max(1)) {
        let t = dijkstra(g, s);
        for (v, d) in t.iter() {
            if v != s {
                total += d;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_unit_edge(NodeId(0), NodeId(1));
        b.add_unit_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = generators::ring(20);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::gnm_connected(200, 800, 2);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 200);
    }

    #[test]
    fn diameter_of_line() {
        let g = generators::line(10);
        let d = estimate_diameter(&g);
        assert!((d - 9.0).abs() < 1e-9);
    }

    #[test]
    fn diameter_of_ring() {
        let g = generators::ring(10);
        let d = estimate_diameter(&g);
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_distance_positive() {
        let g = generators::gnm_connected(100, 400, 9);
        let md = mean_distance_sampled(&g, 10);
        assert!(md > 1.0 && md < 10.0);
    }
}
