//! Incremental graph construction.

use crate::graph::{Edge, EdgeId, Graph, Neighbor, NodeId, Weight};
use std::collections::HashSet;

/// Builds a [`Graph`] incrementally while enforcing the graph invariants
/// (no self loops, no parallel edges, positive finite weights).
///
/// Duplicate edges are ignored (the first weight wins), which is convenient
/// for random generators that may propose the same pair twice.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    seen: HashSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Create a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an additional node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.n);
        self.n += 1;
        id
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = Self::key(u, v);
        self.seen.contains(&key)
    }

    /// Add an undirected edge `{u, v}` with the given weight.
    ///
    /// Returns `true` if the edge was added, `false` if it was rejected as a
    /// self loop or duplicate. Panics if an endpoint is out of range or the
    /// weight is not finite and positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> bool {
        assert!(
            u.0 < self.n && v.0 < self.n,
            "edge endpoint out of range: {u} or {v} >= {}",
            self.n
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be finite and positive, got {weight}"
        );
        if u == v {
            return false;
        }
        let key = Self::key(u, v);
        if !self.seen.insert(key) {
            return false;
        }
        let (a, b) = (NodeId(key.0), NodeId(key.1));
        self.edges.push(Edge { u: a, v: b, weight });
        true
    }

    /// Add an unweighted (weight 1.0) edge.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.add_edge(u, v, 1.0)
    }

    fn key(u: NodeId, v: NodeId) -> (usize, usize) {
        if u.0 <= v.0 {
            (u.0, v.0)
        } else {
            (v.0, u.0)
        }
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut adjacency: Vec<Vec<Neighbor>> = vec![Vec::new(); self.n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i);
            adjacency[e.u.0].push(Neighbor {
                node: e.v,
                edge: id,
                weight: e.weight,
            });
            adjacency[e.v.0].push(Neighbor {
                node: e.u,
                edge: id,
                weight: e.weight,
            });
        }
        // Keep adjacency lists sorted by neighbor id for deterministic
        // iteration order regardless of insertion order.
        for list in &mut adjacency {
            list.sort_by_key(|nb| nb.node.0);
        }
        Graph::from_parts(adjacency, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new(4);
        assert!(!b.add_edge(NodeId(1), NodeId(1), 1.0));
        assert!(b.add_edge(NodeId(0), NodeId(1), 1.0));
        assert!(!b.add_edge(NodeId(1), NodeId(0), 2.0));
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), f64::NAN);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, NodeId(1));
        b.add_edge(NodeId(0), v, 1.5);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn adjacency_sorted_deterministically() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(4), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        b.add_edge(NodeId(0), NodeId(3), 1.0);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let ids: Vec<usize> = g.neighbors(NodeId(0)).iter().map(|nb| nb.node.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_reflects_builder_state() {
        let mut b = GraphBuilder::new(3);
        assert!(!b.has_edge(NodeId(0), NodeId(1)));
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        assert!(b.has_edge(NodeId(1), NodeId(0)));
    }
}
