//! The everything-on recorder composing registry, repair probe, flight
//! ring and phase spans, with Chrome-trace export.

use crate::flight::{FlightEvent, FlightRecorder};
use crate::recorder::{MergeRecorder, MessageClass, Phase, Recorder};
use crate::registry::ClassRegistry;
use crate::repair::RepairProbe;
use crate::spans::PhaseSpans;
use crate::trace::{ChromeTrace, US_PER_SIM_UNIT};
use std::fmt::Write as _;

/// Default flight-ring capacity (last N engine events kept for dumps).
const FLIGHT_CAPACITY: usize = 256;

/// The full recorder behind the bench binaries' `--telemetry` / `--trace`
/// flags. Deterministic outputs ([`FullRecorder::summary_lines`], the
/// repair distribution, all message counters) are pure functions of the
/// run's seed; wall-clock latency histograms and RSS deltas are not and
/// stay out of them.
#[derive(Debug, Clone)]
pub struct FullRecorder {
    /// Per-class counters and wall-latency histograms.
    pub registry: ClassRegistry,
    /// Repair-latency probe (sim time, deterministic).
    pub repair: RepairProbe,
    /// Bounded ring of the last engine events.
    pub flight: FlightRecorder,
    /// Phase spans (wall + RSS annotated).
    pub phases: PhaseSpans,
    /// Cumulative delivered-by-class samples taken at every topology event
    /// (the counter track of the timeline).
    samples: Vec<(f64, [u64; MessageClass::COUNT])>,
    /// Topology instants `(time, kind, node)` for the timeline.
    topo_marks: Vec<(f64, &'static str, u32)>,
    /// Final simulation clock (set by [`Recorder::finish`]).
    end_time: f64,
}

impl Default for FullRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FullRecorder {
    /// A recorder with the default repair settle gap and flight capacity.
    pub fn new() -> Self {
        FullRecorder {
            registry: ClassRegistry::new(),
            repair: RepairProbe::default(),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
            phases: PhaseSpans::new(),
            samples: Vec::new(),
            topo_marks: Vec::new(),
            end_time: 0.0,
        }
    }

    /// Override the repair probe's settle gap (sim-time units).
    pub fn with_settle_gap(mut self, gap: f64) -> Self {
        self.repair = RepairProbe::new(gap);
        self
    }

    /// Override the flight ring's capacity.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = FlightRecorder::new(capacity);
        self
    }

    /// Final simulation clock recorded by [`Recorder::finish`].
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// Deterministic summary appended to an experiment's output when
    /// telemetry is on: per-class message counters and the repair-latency
    /// distribution. No wall-clock or RSS numbers — two same-seed runs
    /// render byte-identical lines.
    pub fn summary_lines(&self) -> String {
        let mut out = self.registry.summary_line();
        out.push_str(&self.repair.summary_line());
        out
    }

    /// Render the run as a Chrome `trace_event` JSON document (open in
    /// `chrome://tracing` or perfetto). Call [`Recorder::finish`] first so
    /// open repair windows and spans are closed.
    pub fn chrome_trace_json(&self) -> String {
        let us = |t: f64| t * US_PER_SIM_UNIT;
        let mut tr = ChromeTrace::new();
        tr.thread_name(1, "phases");
        tr.thread_name(2, "repairs");
        tr.thread_name(3, "topology");

        for sp in self.phases.spans() {
            let args = format!(
                "{{\"wall_ms\":{:.3},\"rss_start_bytes\":{},\"rss_end_bytes\":{},\"rss_delta_bytes\":{}}}",
                sp.wall_secs * 1e3,
                sp.rss_start,
                sp.rss_end,
                sp.rss_delta()
            );
            tr.complete(
                sp.phase.name(),
                1,
                us(sp.sim_start),
                us(sp.sim_end - sp.sim_start),
                Some(&args),
            );
        }

        // Repair windows: one span per closed window on the repair track.
        // Start times are reconstructed from the topology marks (windows
        // close in open order — both vectors are chronological).
        for (i, &lat) in self.repair.latencies().iter().enumerate() {
            let start = self.topo_marks.get(i).map_or(0.0, |&(t, ..)| t);
            tr.complete("repair", 2, us(start), us(lat), None);
        }

        for &(t, kind, node) in &self.topo_marks {
            tr.instant(&format!("{kind} n{node}"), 3, us(t));
        }

        // Cumulative delivered-by-class counter track, sampled at topology
        // events plus one final sample.
        let series_names: Vec<&str> = MessageClass::ALL.iter().map(|c| c.name()).collect();
        let mut plot = |t: f64, sample: &[u64; MessageClass::COUNT]| {
            let series: Vec<(&str, u64)> = series_names
                .iter()
                .zip(sample.iter())
                .filter(|&(_, &v)| v > 0)
                .map(|(&n, &v)| (n, v))
                .collect();
            if !series.is_empty() {
                tr.counter("delivered by class", us(t), &series);
            }
        };
        for (t, sample) in &self.samples {
            plot(*t, sample);
        }
        plot(self.end_time, &self.registry.delivered_by_class());

        // Data-plane track: cumulative delivered lookups on their own
        // counter (the served-traffic SLO line `exp_forward` feeds),
        // separate from the control-plane class plot above.
        let lk = MessageClass::Lookup.index();
        let mut plot_lookups = |t: f64, delivered: u64| {
            if delivered > 0 {
                tr.counter("delivered lookups", us(t), &[("lookup", delivered)]);
            }
        };
        for (t, sample) in &self.samples {
            plot_lookups(*t, sample[lk]);
        }
        plot_lookups(self.end_time, self.registry.delivered_by_class()[lk]);

        // Summary block next to traceEvents: per-class totals, the wall
        // latency histogram buckets, and the repair distribution.
        let mut summary = String::from("{\"classes\":{");
        let mut first = true;
        for c in MessageClass::ALL {
            let s = self.registry.stats(c);
            if s.sent == 0 && s.delivered == 0 && s.dropped == 0 {
                continue;
            }
            if !first {
                summary.push(',');
            }
            first = false;
            let lat = self.registry.latency(c);
            let mut buckets = String::from("[");
            for (i, (upper, count)) in lat.nonzero_buckets().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{upper},{count}]");
            }
            buckets.push(']');
            let _ = write!(
                summary,
                "\"{}\":{{\"sent\":{},\"sent_bytes\":{},\"delivered\":{},\"dropped\":{},\
                 \"event_wall_ns_log2_buckets\":{buckets},\"event_wall_ns_p50\":{},\"event_wall_ns_p99\":{}}}",
                c.name(),
                s.sent,
                s.sent_bytes,
                s.delivered,
                s.dropped,
                lat.quantile_upper(0.50),
                lat.quantile_upper(0.99),
            );
        }
        let _ = write!(
            summary,
            "}},\"repair\":{{\"events\":{},\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"settle_gap\":{}}}}}",
            self.repair.latencies().len(),
            self.repair.quantile(0.50),
            self.repair.quantile(0.90),
            self.repair.quantile(0.99),
            self.repair.settle_gap(),
        );

        tr.into_json(&[("disco_summary", summary)])
    }
}

impl Recorder for FullRecorder {
    fn message_sent(&mut self, _now: f64, class: MessageClass, count: u64, bytes: u64) {
        self.registry.sent(class, count, bytes);
    }

    fn message_delivered(&mut self, now: f64, class: MessageClass, from: u32, to: u32) {
        self.registry.delivered(class);
        self.flight.push(FlightEvent {
            now,
            class,
            from,
            to,
        });
    }

    fn message_dropped(&mut self, _now: f64, class: MessageClass, count: u64) {
        self.registry.dropped(class, count);
    }

    fn event_done(&mut self, class: MessageClass, wall_nanos: u64) {
        self.registry.event_done(class, wall_nanos);
    }

    fn topology_changed(&mut self, now: f64, kind: &'static str, node: u32) {
        self.registry.delivered(MessageClass::Topology);
        self.repair.on_topology(now);
        self.topo_marks.push((now, kind, node));
        self.samples.push((now, self.registry.delivered_by_class()));
        self.flight.push(FlightEvent {
            now,
            class: MessageClass::Topology,
            from: node,
            to: u32::MAX,
        });
    }

    fn selection_changed(&mut self, now: f64, _node: u32) {
        self.repair.on_selection(now);
    }

    fn phase_begin(&mut self, phase: Phase, now: f64) {
        self.phases.begin(phase, now);
    }

    fn phase_end(&mut self, phase: Phase, now: f64) {
        self.phases.end(phase, now);
    }

    fn finish(&mut self, now: f64) {
        self.end_time = now;
        self.repair.finish(now);
        self.phases.finish(now);
    }
}

impl MergeRecorder for FullRecorder {
    /// Merge a sharded run's per-shard recorders. Every shard replays all
    /// topology events but records only its own nodes' traffic, so:
    /// counters and latency histograms add, repair windows take the
    /// slowest shard per event, flight rings interleave by time, phase
    /// spans concatenate. The topology marks are identical on every shard
    /// (one per replayed event) and are kept once; the delivered-by-class
    /// samples taken at those marks add elementwise into the global
    /// cumulative track. Topology deliveries are replayed per shard, so
    /// their registry row is rescaled back to one count per event.
    fn absorb(&mut self, other: Self) {
        self.registry.absorb(&other.registry);
        // `other` replayed the same topology events this recorder already
        // counted (its marks are a copy of ours) — rescale the topology
        // delivered row back to one count per event.
        self.registry
            .undo_delivered(MessageClass::Topology, other.topo_marks.len() as u64);
        self.repair.absorb(&other.repair);
        self.flight.absorb(&other.flight);
        self.phases.absorb(&other.phases);
        let topo_idx = MessageClass::Topology.index();
        for (i, (t, sample)) in other.samples.into_iter().enumerate() {
            match self.samples.get_mut(i) {
                Some((_, mine)) => {
                    for (j, (a, b)) in mine.iter_mut().zip(sample.iter()).enumerate() {
                        // The topology column is the replayed event count
                        // itself — identical on both sides, not additive.
                        if j != topo_idx {
                            *a += b;
                        }
                    }
                }
                None => self.samples.push((t, sample)),
            }
        }
        if self.topo_marks.len() < other.topo_marks.len() {
            self.topo_marks = other.topo_marks;
        }
        self.end_time = self.end_time.max(other.end_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_json;

    /// Drive a synthetic run through the full recorder and validate the
    /// exported timeline end-to-end.
    #[test]
    fn synthetic_run_exports_valid_trace() {
        let mut r = FullRecorder::new().with_settle_gap(5.0);
        r.phase_begin(Phase::Build, 0.0);
        r.phase_end(Phase::Build, 0.0);
        r.phase_begin(Phase::Boot, 0.0);
        for t in 0..10 {
            r.message_sent(t as f64, MessageClass::Flood, 4, 256);
            r.message_delivered(t as f64, MessageClass::Flood, t, t + 1);
            r.event_done(MessageClass::Flood, 800 + t as u64);
        }
        r.phase_end(Phase::Boot, 10.0);
        r.phase_begin(Phase::Churn, 10.0);
        r.topology_changed(12.0, "leave", 3);
        r.selection_changed(13.0, 4);
        r.message_dropped(13.5, MessageClass::Withdraw, 2);
        r.topology_changed(30.0, "join", 3);
        r.selection_changed(30.5, 4);
        r.finish(60.0);

        assert_eq!(r.registry.stats(MessageClass::Flood).delivered, 10);
        assert_eq!(r.repair.latencies(), &[1.0, 0.5]);
        assert_eq!(r.flight.total_recorded(), 12);

        let summary = r.summary_lines();
        assert!(summary.contains("flood=40/10/0"), "{summary}");
        assert!(summary.contains("events=2"), "{summary}");

        let json = r.chrome_trace_json();
        validate_json(&json).expect("trace must be valid JSON");
        for needle in [
            "\"build\"",
            "\"boot\"",
            "\"churn\"",
            "\"repair\"",
            "delivered by class",
            "disco_summary",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    /// Two identical synthetic runs produce byte-identical deterministic
    /// summaries (wall-clock only lives in the trace args).
    #[test]
    fn summary_lines_are_deterministic() {
        let run = || {
            let mut r = FullRecorder::new();
            r.message_sent(1.0, MessageClass::Gossip, 2, 64);
            r.message_delivered(1.5, MessageClass::Gossip, 0, 1);
            r.topology_changed(2.0, "link_down", 5);
            r.selection_changed(3.0, 1);
            r.finish(100.0);
            r.summary_lines()
        };
        assert_eq!(run(), run());
    }
}
