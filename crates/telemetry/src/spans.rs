//! Phase spans: named experiment phases with simulation-time bounds plus
//! wall-clock and RSS deltas.

use crate::recorder::Phase;
use std::time::Instant;

/// Current resident set size (`VmRSS`) of this process in bytes; 0 where
/// `/proc` is unavailable (non-Linux). Best-effort by design: RSS numbers
/// annotate the timeline and never feed a deterministic summary.
pub fn current_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One closed phase span.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: Phase,
    /// Simulation time at begin.
    pub sim_start: f64,
    /// Simulation time at end.
    pub sim_end: f64,
    /// Wall-clock seconds spent in the phase.
    pub wall_secs: f64,
    /// `VmRSS` at begin (bytes; 0 where unreadable).
    pub rss_start: u64,
    /// `VmRSS` at end.
    pub rss_end: u64,
}

impl PhaseSpan {
    /// RSS growth over the phase (bytes; clamps at 0 when RSS shrank).
    pub fn rss_delta(&self) -> i64 {
        self.rss_end as i64 - self.rss_start as i64
    }
}

/// Span collector. Phases may nest or interleave freely; `end` closes the
/// most recent open span of that phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseSpans {
    open: Vec<(Phase, f64, Instant, u64)>,
    closed: Vec<PhaseSpan>,
}

impl PhaseSpans {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span of `phase` at simulation time `now`.
    pub fn begin(&mut self, phase: Phase, now: f64) {
        self.open
            .push((phase, now, Instant::now(), current_rss_bytes()));
    }

    /// Close the most recent open span of `phase` at simulation time
    /// `now`. Unmatched ends are ignored.
    pub fn end(&mut self, phase: Phase, now: f64) {
        let Some(pos) = self.open.iter().rposition(|&(p, ..)| p == phase) else {
            return;
        };
        let (phase, sim_start, t0, rss_start) = self.open.remove(pos);
        self.closed.push(PhaseSpan {
            phase,
            sim_start,
            sim_end: now,
            wall_secs: t0.elapsed().as_secs_f64(),
            rss_start,
            rss_end: current_rss_bytes(),
        });
    }

    /// Close anything still open at `now`.
    pub fn finish(&mut self, now: f64) {
        while let Some(&(phase, ..)) = self.open.last() {
            self.end(phase, now);
        }
    }

    /// Append another collector's closed spans (merge of a sharded run's
    /// per-shard span sets; open spans should be closed via
    /// [`PhaseSpans::finish`] first).
    pub fn absorb(&mut self, other: &PhaseSpans) {
        self.closed.extend_from_slice(&other.closed);
    }

    /// Closed spans, in close order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_pairs_by_phase() {
        let mut s = PhaseSpans::new();
        s.begin(Phase::Build, 0.0);
        s.end(Phase::Build, 0.0);
        s.begin(Phase::Boot, 0.0);
        s.end(Phase::Boot, 42.0);
        s.end(Phase::Drain, 99.0); // unmatched: ignored
        assert_eq!(s.spans().len(), 2);
        assert_eq!(s.spans()[1].phase, Phase::Boot);
        assert_eq!(s.spans()[1].sim_end, 42.0);
        assert!(s.spans()[0].wall_secs >= 0.0);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut s = PhaseSpans::new();
        s.begin(Phase::Churn, 10.0);
        s.begin(Phase::Drain, 20.0);
        s.finish(30.0);
        assert_eq!(s.spans().len(), 2);
        assert!(s.spans().iter().all(|sp| sp.sim_end == 30.0));
    }

    #[test]
    fn rss_reads_do_not_panic() {
        let _ = current_rss_bytes();
    }
}
