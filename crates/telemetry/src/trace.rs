//! Chrome `trace_event` timeline export, plus a small JSON syntax
//! validator (the workspace's serde is an offline stand-in that does not
//! serialize, so both the writer and its checker are hand-rolled).
//!
//! The emitted file is the JSON object format
//! (`{"traceEvents": [...], ...}`) understood by `chrome://tracing` and
//! <https://ui.perfetto.dev>. Simulation time maps to trace microseconds
//! at 1 sim unit = 1 ms, so a 2000-unit churn window renders as a 2 s
//! timeline.

use std::fmt::Write as _;

/// Microseconds per simulation time unit in the exported timeline.
pub const US_PER_SIM_UNIT: f64 = 1000.0;

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity; both clamp
/// to 0, which cannot occur for the sane inputs the exporter feeds it).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// Incremental builder of a `trace_event` JSON document. All events share
/// pid 1; tracks are separated by `tid`.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a thread track (metadata event).
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// A complete span (`ph:"X"`): `ts`/`dur` in trace microseconds.
    /// `args_json` is a ready-made JSON object literal or `None`.
    pub fn complete(
        &mut self,
        name: &str,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args_json: Option<&str>,
    ) {
        let args = args_json.unwrap_or("{}");
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{args}}}",
            escape_json(name),
            num(ts_us),
            num(dur_us.max(0.0)),
        ));
    }

    /// An instant event (`ph:"i"`, thread scope).
    pub fn instant(&mut self, name: &str, tid: u32, ts_us: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
            escape_json(name),
            num(ts_us),
        ));
    }

    /// A counter sample (`ph:"C"`): `series` is `(name, value)` pairs
    /// plotted as a stacked track.
    pub fn counter(&mut self, name: &str, ts_us: f64, series: &[(&str, u64)]) {
        let mut args = String::from("{");
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{v}", escape_json(k));
        }
        args.push('}');
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{args}}}",
            escape_json(name),
            num(ts_us),
        ));
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the document. `extra` adds top-level `"key": value` members
    /// next to `traceEvents` (values must be valid JSON; viewers ignore
    /// unknown keys).
    pub fn into_json(self, extra: &[(&str, String)]) -> String {
        let mut out = String::from("{\n\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\n\"displayTimeUnit\":\"ms\"");
        for (k, v) in extra {
            let _ = write!(out, ",\n\"{}\":{v}", escape_json(k));
        }
        out.push_str("\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// JSON validation (recursive descent over the grammar of RFC 8259)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.i)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.s.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("truncated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => {}
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits_start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let frac = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

/// Check that `s` is one syntactically valid JSON value (with nothing but
/// whitespace after it). Used by the `exp_churn --smoke` trace check and
/// the exporter's own tests; viewers are the authority on semantics.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\n\\u0041\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
            " { \"x\" : [ 1 , \"y\" ] } ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_builder_emits_valid_json() {
        let mut t = ChromeTrace::new();
        t.thread_name(1, "engine phases");
        t.complete("churn", 1, 0.0, 2_000_000.0, Some("{\"wall_ms\":12.5}"));
        t.instant("leave node 7", 3, 1234.5);
        t.counter(
            "delivered by class",
            1000.0,
            &[("flood", 42), ("deliver", 7)],
        );
        let json = t.into_json(&[("disco_summary", "{\"n\":192}".to_string())]);
        validate_json(&json).expect("trace JSON must validate");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"disco_summary\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn escaping_covers_specials() {
        let s = escape_json("a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
        assert!(validate_json(&format!("\"{s}\"")).is_ok());
    }
}
