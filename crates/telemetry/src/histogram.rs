//! Log₂-bucketed histogram for event wall-latencies.
//!
//! Wall-clock latencies span five orders of magnitude (a timer pop is
//! nanoseconds, a 10k-target flood fan-out is milliseconds), so linear
//! buckets are useless and exact storage is unbounded; power-of-two
//! buckets give a calibrated distribution in 64 counters. Values are
//! `u64` (nanoseconds in the engine's use).

/// A histogram whose bucket `i` counts values with `floor(log2(v)) == i-1`
/// (bucket 0 counts zeros). 64 buckets cover the full `u64` range.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`0` for bucket 0, else
    /// `2^i - 1`).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. Resolution is one power of two —
    /// exact enough to tell a 2µs median from a 200µs one.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn absorb(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_upper_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn records_and_aggregates() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 → bucket 0; 1 → bucket 1; {2,3} → bucket 2; 100 → bucket 7
        // (≤127); 1000 → bucket 10 (≤1023).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (127, 1), (1023, 1)]);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket ≤15
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.quantile_upper(0.5), 15);
        assert_eq!(h.quantile_upper(0.99), 15);
        assert_eq!(h.quantile_upper(1.0), 1 << 20);
        assert_eq!(Log2Histogram::new().quantile_upper(0.5), 0);
    }
}
