//! Flight recorder: a bounded ring of the last N engine events, dumped on
//! panic or failed acceptance for postmortems.

use crate::recorder::MessageClass;
use std::fmt::Write as _;

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Simulation time of the event.
    pub now: f64,
    /// Effective message class.
    pub class: MessageClass,
    /// Sender (or the affected node of a topology event).
    pub from: u32,
    /// Receiver (`u32::MAX` when not applicable).
    pub to: u32,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s. Pushing past capacity
/// overwrites the oldest entry; iteration yields oldest-first.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    capacity: usize,
    /// Index the next push writes to (the ring head once full).
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Record one event.
    #[inline]
    pub fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        let split = if self.buf.len() < self.capacity {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Merge another ring into this one: both tails are interleaved by
    /// event time (stable — `self`'s events win ties) and the last
    /// `max(capacity)` survive, so the merged ring is the same bounded
    /// tail a single recorder would have kept of the combined stream.
    pub fn absorb(&mut self, other: &FlightRecorder) {
        let mut all: Vec<FlightEvent> = self.iter().chain(other.iter()).copied().collect();
        all.sort_by(|a, b| a.now.partial_cmp(&b.now).expect("event times are not NaN"));
        let mut merged = FlightRecorder::new(self.capacity.max(other.capacity));
        for ev in all {
            merged.push(ev);
        }
        merged.total = self.total + other.total;
        *self = merged;
    }

    /// Human-readable tail dump (for panic / failed-acceptance output).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last {} of {} events (oldest first)",
            self.len(),
            self.total
        );
        for ev in self.iter() {
            if ev.to == u32::MAX {
                let _ = writeln!(
                    out,
                    "  t={:<12.4} {:<8} node {}",
                    ev.now,
                    ev.class.name(),
                    ev.from
                );
            } else {
                let _ = writeln!(
                    out,
                    "  t={:<12.4} {:<8} {} -> {}",
                    ev.now,
                    ev.class.name(),
                    ev.from,
                    ev.to
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> FlightEvent {
        FlightEvent {
            now: t,
            class: MessageClass::Deliver,
            from: 0,
            to: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = FlightRecorder::new(3);
        for t in 0..5 {
            r.push(ev(t as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 5);
        let times: Vec<f64> = r.iter().map(|e| e.now).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0], "oldest first after wrap");
    }

    #[test]
    fn partial_fill_keeps_order() {
        let mut r = FlightRecorder::new(8);
        r.push(ev(1.0));
        r.push(ev(2.0));
        let times: Vec<f64> = r.iter().map(|e| e.now).collect();
        assert_eq!(times, vec![1.0, 2.0]);
        let d = r.dump();
        assert!(d.contains("last 2 of 2"), "{d}");
        assert!(d.contains("0 -> 1"), "{d}");
    }
}
