//! The [`Recorder`] trait and its zero-cost [`NoopRecorder`] default.
//!
//! The engine is generic over `R: Recorder` and guards every
//! instrumentation call with `if R::ENABLED { … }`. `ENABLED` is an
//! associated *constant*, so the guard is resolved at monomorphization
//! time: with [`NoopRecorder`] the branch folds away entirely and the hot
//! path compiles to the un-instrumented code — tracing is strictly
//! pay-for-what-you-use.

/// Classification of engine events and protocol messages for the
/// per-class counter registry.
///
/// The *shape* classes ([`MessageClass::Flood`], [`MessageClass::Batch`],
/// [`MessageClass::Deliver`]) describe how the message rode the event
/// queue; the *protocol* classes ([`MessageClass::Withdraw`],
/// [`MessageClass::Refresh`], [`MessageClass::Gossip`]) come from the
/// protocol's own `classify` hook and take precedence — a withdrawal is a
/// withdrawal whether it was flooded or batched. [`MessageClass::Timer`]
/// and [`MessageClass::Topology`] label the non-message engine events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MessageClass {
    /// Plain point-to-point protocol message (the default class).
    Deliver = 0,
    /// Message delivered through a flood fan-out.
    Flood = 1,
    /// Message delivered as a member of a batched table dump.
    Batch = 2,
    /// Route withdrawal.
    Withdraw = 3,
    /// Route-refresh re-solicitation (forgetful routing).
    Refresh = 4,
    /// Synopsis-diffusion gossip.
    Gossip = 5,
    /// Timer pop.
    Timer = 6,
    /// Topology mutation (churn, link failure/recovery).
    Topology = 7,
    /// Data-plane forwarding-table lookup (served traffic, not a control
    /// message — fed by the `exp_forward` traffic generator, never by the
    /// engine itself).
    Lookup = 8,
}

impl MessageClass {
    /// Number of classes (array-registry size).
    pub const COUNT: usize = 9;

    /// Every class, in index order.
    pub const ALL: [MessageClass; Self::COUNT] = [
        MessageClass::Deliver,
        MessageClass::Flood,
        MessageClass::Batch,
        MessageClass::Withdraw,
        MessageClass::Refresh,
        MessageClass::Gossip,
        MessageClass::Timer,
        MessageClass::Topology,
        MessageClass::Lookup,
    ];

    /// Registry index of this class.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (used in summaries and trace counter tracks).
    pub fn name(self) -> &'static str {
        match self {
            MessageClass::Deliver => "deliver",
            MessageClass::Flood => "flood",
            MessageClass::Batch => "batch",
            MessageClass::Withdraw => "withdraw",
            MessageClass::Refresh => "refresh",
            MessageClass::Gossip => "gossip",
            MessageClass::Timer => "timer",
            MessageClass::Topology => "topology",
            MessageClass::Lookup => "lookup",
        }
    }

    /// Resolve the effective class of a message: the protocol's own class
    /// wins; a protocol-default [`MessageClass::Deliver`] falls back to the
    /// delivery shape (flood fan-out, batch member, or plain deliver).
    #[inline]
    pub fn shaped(protocol_class: MessageClass, shape: MessageClass) -> MessageClass {
        if protocol_class == MessageClass::Deliver {
            shape
        } else {
            protocol_class
        }
    }
}

/// Named experiment phases for the span recorder (and the timeline's top
/// track).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Static construction: topology generation, landmark selection.
    Build = 0,
    /// Initial convergence of the protocol on the static topology.
    Boot = 1,
    /// The churn window (schedule applied, probes running).
    Churn = 2,
    /// Post-churn drain to quiescence.
    Drain = 3,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 4;

    /// Stable lowercase name (used in spans, summaries, the trace).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Boot => "boot",
            Phase::Churn => "churn",
            Phase::Drain => "drain",
        }
    }
}

/// Structured observer of a simulation run.
///
/// Every method has an empty default body, so recorders implement only
/// what they consume. Times are simulation time unless a parameter says
/// otherwise; node ids are plain `u32` (this crate sits below the graph
/// crate). Implementations must not influence the run — the engine calls
/// them strictly after its own state transitions, and the observer-effect
/// tests assert a [`FullRecorder`](crate::FullRecorder) run reproduces the
/// no-op run byte-for-byte.
pub trait Recorder {
    /// Whether the engine's instrumentation sites are live. `false` folds
    /// every `if R::ENABLED { … }` guard away at compile time.
    const ENABLED: bool = true;

    /// `count` copies of a message of class `class` were sent at `now`,
    /// `bytes` accounted wire bytes in total.
    fn message_sent(&mut self, _now: f64, _class: MessageClass, _count: u64, _bytes: u64) {}

    /// One message was delivered to an `on_message` upcall.
    fn message_delivered(&mut self, _now: f64, _class: MessageClass, _from: u32, _to: u32) {}

    /// `count` messages (or timers) of class `class` were dropped.
    fn message_dropped(&mut self, _now: f64, _class: MessageClass, _count: u64) {}

    /// One engine event (queue pop) of class `class` finished; it took
    /// `wall_nanos` nanoseconds of wall-clock to process.
    fn event_done(&mut self, _class: MessageClass, _wall_nanos: u64) {}

    /// A topology mutation was applied. `kind` is one of `"join"`,
    /// `"leave"`, `"link_up"`, `"link_down"`; `node` is the (first)
    /// affected node.
    fn topology_changed(&mut self, _now: f64, _kind: &'static str, _node: u32) {}

    /// Node `node`'s route-selection state changed during an upcall (the
    /// protocol's `control_revision` moved) — the signal the repair-latency
    /// probe watches for restabilization.
    fn selection_changed(&mut self, _now: f64, _node: u32) {}

    /// A named experiment phase begins at simulation time `now`.
    fn phase_begin(&mut self, _phase: Phase, _now: f64) {}

    /// The phase ends at simulation time `now`.
    fn phase_end(&mut self, _phase: Phase, _now: f64) {}

    /// The run is over (quiescence or budget); `now` is the final clock.
    /// Closes anything still open (repair windows, spans).
    fn finish(&mut self, _now: f64) {}
}

/// A recorder whose per-shard instances can be merged into one — what a
/// sharded run needs to hand back a single recorder at the end. Every
/// shard observes *all* topology events (replicas replay them) but only
/// its own nodes' message traffic and selection changes, so `absorb`
/// combines counters additively and repair windows by worst-case.
pub trait MergeRecorder: Recorder + Sized {
    /// Fold `other` (a later shard, in shard-id order) into `self`. Both
    /// sides have already received [`Recorder::finish`].
    fn absorb(&mut self, other: Self);
}

/// The default recorder: records nothing, costs nothing. Its
/// `ENABLED = false` makes every engine instrumentation site compile away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;
}

impl MergeRecorder for NoopRecorder {
    fn absorb(&mut self, _other: Self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indexes_are_dense_and_named() {
        for (i, c) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn shaped_prefers_protocol_class() {
        use MessageClass::*;
        assert_eq!(MessageClass::shaped(Withdraw, Flood), Withdraw);
        assert_eq!(MessageClass::shaped(Gossip, Batch), Gossip);
        assert_eq!(MessageClass::shaped(Deliver, Flood), Flood);
        assert_eq!(MessageClass::shaped(Deliver, Deliver), Deliver);
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopRecorder::ENABLED) };
        // The default bodies must be callable (and do nothing).
        let mut r = NoopRecorder;
        r.message_sent(0.0, MessageClass::Flood, 3, 192);
        r.event_done(MessageClass::Timer, 10);
        r.finish(1.0);
    }
}
