//! # disco-telemetry
//!
//! Zero-cost-when-off structured observability for the deterministic
//! engine.
//!
//! The repo's experiments can *summarize* a run ([`disco_sim`'s
//! `MessageStats`], control-bytes gauges, peak RSS) but could not *explain*
//! one: which message classes dominate a churn storm, how long each repair
//! actually takes, where wall-clock goes between boot and convergence. This
//! crate adds that visibility as a [`Recorder`] trait the engine is generic
//! over:
//!
//! * [`NoopRecorder`] — the default. Its `ENABLED` constant is `false`, so
//!   every instrumentation site in the engine's hot path is guarded by
//!   `if R::ENABLED { … }` and monomorphizes to *nothing*: the off path
//!   compiles to exactly the un-instrumented engine, and the byte-identical
//!   churn goldens lock that in.
//! * [`FullRecorder`] — the everything-on composition used by the bench
//!   binaries' `--telemetry` / `--trace` flags:
//!   a per-[`MessageClass`] counter registry with log₂-bucketed
//!   event-latency histograms ([`ClassRegistry`]), a repair-latency probe
//!   turning availability from a point probe into a sim-time latency
//!   distribution ([`RepairProbe`]), a bounded flight recorder of the last
//!   N engine events for postmortems ([`FlightRecorder`]), and phase spans
//!   carrying wall-clock and RSS deltas ([`PhaseSpans`]).
//!
//! A [`FullRecorder`] run can be exported as a Chrome `trace_event` JSON
//! timeline ([`FullRecorder::chrome_trace_json`]) and opened in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Everything derived from
//! *simulation* time or message counts is deterministic in the run's seed;
//! wall-clock and RSS numbers are the only non-deterministic fields and are
//! kept out of the deterministic summaries.
//!
//! The crate is dependency-free (node ids are plain `u32`, simulation time
//! is `f64`), so it sits below `disco-sim` in the workspace graph.

pub mod flight;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod repair;
pub mod spans;
pub mod trace;

mod full;

pub use flight::{FlightEvent, FlightRecorder};
pub use full::FullRecorder;
pub use histogram::Log2Histogram;
pub use recorder::{MergeRecorder, MessageClass, NoopRecorder, Phase, Recorder};
pub use registry::{ClassRegistry, ClassStats};
pub use repair::RepairProbe;
pub use spans::{current_rss_bytes, PhaseSpan, PhaseSpans};
pub use trace::{validate_json, ChromeTrace};
