//! Repair-latency probe: sim-time from a topology event until route
//! selection restabilizes.
//!
//! Every [`topology event`](crate::Recorder::topology_changed) opens a
//! *window*. Every [`selection change`](crate::Recorder::selection_changed)
//! stamps the activity time of all open windows. A window closes once no
//! selection change has happened for `settle_gap` simulation-time units
//! after its last activity; its latency is `last_activity − start` (zero if
//! the event provoked no selection change at all — the failure was
//! invisible to routing). This turns the churn experiment's availability
//! point-probes into a distribution: *how long* the control plane took to
//! restabilize after each of the run's topology events.
//!
//! Everything here is simulation time, so the distribution is a pure
//! function of the run's seed — the determinism test compares two
//! same-seed runs' rendered histograms byte-for-byte.

use std::fmt::Write as _;

/// One still-open repair window.
#[derive(Debug, Clone, Copy)]
struct Window {
    start: f64,
    last: Option<f64>,
}

/// The probe. Feed it topology and selection-change events in
/// non-decreasing time order; read the closed-window latencies at the end.
#[derive(Debug, Clone)]
pub struct RepairProbe {
    settle_gap: f64,
    open: Vec<Window>,
    latencies: Vec<f64>,
}

impl Default for RepairProbe {
    fn default() -> Self {
        Self::new(25.0)
    }
}

impl RepairProbe {
    /// A probe that considers a window settled after `settle_gap` sim-time
    /// units without selection activity. The default (25.0) sits well above
    /// the path-vector batch delay (2.0) and below the protocols' repair
    /// debounce (60.0), so one window tracks one repair wave.
    pub fn new(settle_gap: f64) -> Self {
        RepairProbe {
            settle_gap,
            open: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// The configured settle gap.
    pub fn settle_gap(&self) -> f64 {
        self.settle_gap
    }

    /// Close every open window whose last activity is at least
    /// `settle_gap` before `now`.
    fn sweep(&mut self, now: f64) {
        let gap = self.settle_gap;
        let latencies = &mut self.latencies;
        self.open.retain(|w| {
            if w.last.unwrap_or(w.start) + gap <= now {
                latencies.push(w.last.map_or(0.0, |l| l - w.start));
                false
            } else {
                true
            }
        });
    }

    /// A topology event fired at `now`: open a window.
    pub fn on_topology(&mut self, now: f64) {
        self.sweep(now);
        self.open.push(Window {
            start: now,
            last: None,
        });
    }

    /// A selection column changed at `now`: stamp all open windows.
    pub fn on_selection(&mut self, now: f64) {
        self.sweep(now);
        for w in &mut self.open {
            w.last = Some(now);
        }
    }

    /// The run ended: close everything still open, whether or not its
    /// settle gap has elapsed (quiescence is as settled as it gets).
    pub fn finish(&mut self, _now: f64) {
        for w in self.open.drain(..) {
            self.latencies.push(w.last.map_or(0.0, |l| l - w.start));
        }
    }

    /// Merge another probe's closed windows into this one by elementwise
    /// *maximum*. In a sharded run every shard opens a window for every
    /// topology event (replicas replay them all) but stamps it only with
    /// its own nodes' selection changes — so window `i` exists on every
    /// shard and the global repair latency of event `i` is the slowest
    /// shard's: the control plane has restabilized only once the last node
    /// anywhere stops reselecting. Call after [`RepairProbe::finish`] on
    /// both sides.
    pub fn absorb(&mut self, other: &RepairProbe) {
        for (i, &lat) in other.latencies.iter().enumerate() {
            match self.latencies.get_mut(i) {
                Some(mine) => *mine = mine.max(lat),
                None => self.latencies.push(lat),
            }
        }
    }

    /// Closed-window latencies, in window-open order.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Windows still open (0 after [`RepairProbe::finish`]).
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Exact `q`-quantile over the closed latencies (nearest-rank on a
    /// sorted copy); 0 when empty. Repair events number in the hundreds,
    /// so exact beats bucketed here.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    /// Deterministic summary line: event count, quantiles and max of the
    /// repair-latency distribution, in sim-time units.
    pub fn summary_line(&self) -> String {
        let n = self.latencies.len();
        let max = self.latencies.iter().copied().fold(0.0f64, f64::max);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry repair latency: events={} p50={:.2} p90={:.2} p99={:.2} max={:.2} (sim units, settle_gap={})",
            n,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            max,
            self.settle_gap,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_closes_after_settle_gap() {
        let mut p = RepairProbe::new(10.0);
        p.on_topology(100.0);
        p.on_selection(101.0);
        p.on_selection(105.0);
        // Activity at 105 keeps the window open through 114.9…
        p.on_topology(114.0);
        assert_eq!(p.open_windows(), 2);
        // …but by 116 the first window (last activity 105) has settled.
        p.on_selection(116.0);
        assert_eq!(p.latencies(), &[5.0]);
        p.finish(200.0);
        assert_eq!(p.open_windows(), 0);
        // Second window: opened at 114, last stamped at 116.
        assert_eq!(p.latencies(), &[5.0, 2.0]);
    }

    #[test]
    fn invisible_event_scores_zero() {
        let mut p = RepairProbe::new(10.0);
        p.on_topology(1.0);
        p.finish(100.0);
        assert_eq!(p.latencies(), &[0.0]);
    }

    #[test]
    fn quantiles_are_exact() {
        let mut p = RepairProbe::new(200.0);
        for i in 0..100 {
            p.on_topology(i as f64 * 1000.0);
            p.on_selection(i as f64 * 1000.0 + (i + 1) as f64);
        }
        p.finish(1e9);
        assert_eq!(p.latencies().len(), 100);
        assert_eq!(p.quantile(0.5), 50.0);
        assert_eq!(p.quantile(0.99), 99.0);
        assert_eq!(p.quantile(1.0), 100.0);
        let line = p.summary_line();
        assert!(line.contains("events=100"), "{line}");
    }
}
