//! Per-[`MessageClass`] counter and latency registry.

use crate::histogram::Log2Histogram;
use crate::recorder::MessageClass;
use std::fmt::Write as _;

/// Counters of one message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages sent (flood copies counted individually).
    pub sent: u64,
    /// Accounted wire bytes sent.
    pub sent_bytes: u64,
    /// Messages delivered to `on_message` upcalls (timer pops for
    /// [`MessageClass::Timer`], mutations for [`MessageClass::Topology`]).
    pub delivered: u64,
    /// Messages lost in flight (or stale/cancelled timers).
    pub dropped: u64,
}

/// Registry of per-class counters plus a log₂ wall-latency histogram per
/// class of engine event. The counters are a pure function of the run;
/// the latency histograms are wall-clock and therefore not.
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    stats: [ClassStats; MessageClass::COUNT],
    latency: [Log2Histogram; MessageClass::COUNT],
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count `count` sends of `bytes` total wire bytes.
    #[inline]
    pub fn sent(&mut self, class: MessageClass, count: u64, bytes: u64) {
        let s = &mut self.stats[class.index()];
        s.sent += count;
        s.sent_bytes += bytes;
    }

    /// Count one delivery.
    #[inline]
    pub fn delivered(&mut self, class: MessageClass) {
        self.stats[class.index()].delivered += 1;
    }

    /// Count `count` drops.
    #[inline]
    pub fn dropped(&mut self, class: MessageClass, count: u64) {
        self.stats[class.index()].dropped += count;
    }

    /// Record the wall-clock cost of one engine event of `class`.
    #[inline]
    pub fn event_done(&mut self, class: MessageClass, wall_nanos: u64) {
        self.latency[class.index()].record(wall_nanos);
    }

    /// Counters of `class`.
    pub fn stats(&self, class: MessageClass) -> &ClassStats {
        &self.stats[class.index()]
    }

    /// Wall-latency histogram of `class`.
    pub fn latency(&self, class: MessageClass) -> &Log2Histogram {
        &self.latency[class.index()]
    }

    /// Delivered counts by class index (the counter-track sample the
    /// timeline exporter plots over time).
    pub fn delivered_by_class(&self) -> [u64; MessageClass::COUNT] {
        let mut out = [0; MessageClass::COUNT];
        for (o, s) in out.iter_mut().zip(self.stats.iter()) {
            *o = s.delivered;
        }
        out
    }

    /// Total messages delivered across the *control* message classes
    /// (excludes timers, topology events and data-plane lookups — budget
    /// stops must count the same protocol work whether or not a traffic
    /// generator is feeding the recorder).
    pub fn messages_delivered(&self) -> u64 {
        MessageClass::ALL
            .iter()
            .filter(|c| {
                !matches!(
                    c,
                    MessageClass::Timer | MessageClass::Topology | MessageClass::Lookup
                )
            })
            .map(|c| self.stats[c.index()].delivered)
            .sum()
    }

    /// Subtract `count` from a class's delivered counter (saturating).
    /// Used when merging shard replicas that each delivered the *same*
    /// replayed events (topology), which plain addition double-counts.
    pub fn undo_delivered(&mut self, class: MessageClass, count: u64) {
        let s = &mut self.stats[class.index()];
        s.delivered = s.delivered.saturating_sub(count);
    }

    /// Merge another registry into this one: counters add up, latency
    /// histograms merge bucket-wise. Used to combine a sharded run's
    /// per-shard registries (each class counter is incremented on exactly
    /// one shard per message, so addition is exact).
    pub fn absorb(&mut self, other: &ClassRegistry) {
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.sent += b.sent;
            a.sent_bytes += b.sent_bytes;
            a.delivered += b.delivered;
            a.dropped += b.dropped;
        }
        for (a, b) in self.latency.iter_mut().zip(other.latency.iter()) {
            a.absorb(b);
        }
    }

    /// Deterministic one-line summary of per-class delivered/sent counts
    /// (no wall-clock numbers — safe for same-seed comparison).
    pub fn summary_line(&self) -> String {
        let mut out = String::from("telemetry msgs by class:");
        for c in MessageClass::ALL {
            let s = &self.stats[c.index()];
            if s.sent == 0 && s.delivered == 0 && s.dropped == 0 {
                continue;
            }
            let _ = write!(
                out,
                " {}={}/{}/{}",
                c.name(),
                s.sent,
                s.delivered,
                s.dropped
            );
        }
        out.push_str(" (sent/delivered/dropped)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_class() {
        let mut r = ClassRegistry::new();
        r.sent(MessageClass::Flood, 3, 300);
        r.delivered(MessageClass::Flood);
        r.delivered(MessageClass::Flood);
        r.dropped(MessageClass::Flood, 1);
        r.delivered(MessageClass::Timer);
        r.event_done(MessageClass::Flood, 1500);
        let s = r.stats(MessageClass::Flood);
        assert_eq!(
            (s.sent, s.sent_bytes, s.delivered, s.dropped),
            (3, 300, 2, 1)
        );
        assert_eq!(r.messages_delivered(), 2, "timer pops are not messages");
        assert_eq!(r.latency(MessageClass::Flood).count(), 1);
        let line = r.summary_line();
        assert!(line.contains("flood=3/2/1"), "{line}");
        assert!(!line.contains("gossip"), "empty classes omitted: {line}");
    }
}
