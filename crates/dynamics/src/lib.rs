//! # disco-dynamics
//!
//! Churn, failure and mobility workloads for the discrete-event simulator.
//!
//! The Disco paper's headline claim is a *dynamic*, distributed routing
//! protocol, yet a static simulation can only exercise the converged state.
//! This crate turns `disco-sim` into a dynamic-network simulator:
//!
//! * [`Schedule`] — a deterministic, seeded stream of
//!   [`disco_sim::TopologyEvent`]s that can be applied to any engine;
//! * [`models`] — compilers from churn models to schedules: Poisson
//!   join/leave churn ([`models::PoissonChurn`]), rolling link failures
//!   ([`models::LinkFailures`]), flash-crowd arrival
//!   ([`models::FlashCrowd`]) and waypoint mobility that re-attaches a node
//!   to new anchors ([`models::Waypoints`], the schedule-driven form of
//!   `examples/flat_name_mobility.rs`);
//! * [`probe`] — measurement of route availability and stretch-under-churn
//!   against the *current* topology, extending the paper's Fig. 8
//!   messaging methodology to steady-state churn.
//!
//! Everything is a pure function of `(graph, model parameters, seed)`, so
//! churn experiments replay bit-for-bit, exactly like the static ones.
//!
//! ```
//! use disco_dynamics::{models::PoissonChurn, probe};
//! use disco_graph::{generators, NodeId};
//! use disco_core::path_vector::{PathVectorNode, TableLimit};
//! use disco_sim::Engine;
//!
//! let g = generators::gnm_connected(64, 256, 7);
//! let schedule = PoissonChurn::default().compile(&g, 7);
//! let mut engine = Engine::new(&g, |v| {
//!     PathVectorNode::new(v, v == NodeId(0), TableLimit::Unlimited)
//! });
//! assert!(engine.run().converged);           // initial convergence
//! schedule.apply_to(&mut engine);            // inject the churn
//! assert!(engine.run_until(|_| false));      // repair to quiescence
//! let pairs = probe::sample_live_pairs(&engine, 64, 7);
//! let report = probe::probe(&engine, &pairs, probe::path_vector_route);
//! assert!(report.availability() > 0.9);
//! ```

pub mod forward;
pub mod models;
pub mod probe;
pub mod schedule;

pub use probe::ProbeReport;
pub use schedule::Schedule;
