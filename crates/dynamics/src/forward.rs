//! Stale-loss probe: hop-by-hop packet walks over *published* forwarding
//! tables against the *current* topology.
//!
//! [`crate::probe`] measures whether the control plane still has a route;
//! this module measures whether the data plane still *delivers* — the two
//! diverge exactly when churn has moved selections that the last published
//! [`ForwardingTable`] epoch has not picked up. A walk forwards one packet
//! the way a Disco router would: table hit on the destination anywhere
//! along the way routes directly (the paper's `ToDestination` shortcut),
//! otherwise the packet rides toward the destination's addressing landmark
//! and then down the address label, with the table's landmark-fallback
//! entry as the last resort. Every hop is validated against the live graph
//! and active set; a hop onto a dead link or node is a packet **lost to a
//! stale epoch** — the served-traffic cost `exp_forward` turns into an SLO.
//!
//! Tables and addresses are plain arrays/`Vec<NodeId>` (no interned paths),
//! so a sharded run can compile them on owner shards, ship them to the
//! coordinator and walk there.

use disco_core::forward::ForwardingTable;
use disco_graph::{Graph, NodeId};
use std::time::Instant;

/// A destination's address detached from the path arena: its closest
/// landmark and the label path `landmark → … → destination`.
#[derive(Debug, Clone)]
pub struct FlowAddress {
    /// The destination's addressing landmark.
    pub landmark: NodeId,
    /// Node path from the landmark to the destination (landmark first).
    pub path: Vec<NodeId>,
}

/// How one packet walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Reached the destination in `hops` hops.
    Delivered {
        /// Hops traversed.
        hops: u32,
    },
    /// A published table named a next hop that the current topology no
    /// longer serves (node down or link gone) after `hops` good hops —
    /// the packet is lost to a stale epoch.
    StaleLoss {
        /// Good hops before the stale one.
        hops: u32,
    },
    /// No table entry and no address to fall back on (unpublished node,
    /// unresolved destination, or a landmark route not yet learned).
    Miss {
        /// Hops traversed before the dead end.
        hops: u32,
    },
    /// The TTL ran out — transient loop across mixed epochs.
    TtlExceeded,
}

impl WalkOutcome {
    /// Whether the packet reached its destination.
    pub fn delivered(self) -> bool {
        matches!(self, WalkOutcome::Delivered { .. })
    }

    /// Whether the packet was lost to stale forwarding state (a dead hop
    /// or an epoch-mixing loop) — the numerator of the stale-loss SLO.
    pub fn stale_loss(self) -> bool {
        matches!(
            self,
            WalkOutcome::StaleLoss { .. } | WalkOutcome::TtlExceeded
        )
    }
}

/// The forwarding environment a batch of packet walks runs against: the
/// current topology and active set, the published-epoch resolver and the
/// TTL. Built once per checkpoint; [`PacketWalker::walk`] forwards one
/// packet.
pub struct PacketWalker<'a, A, T> {
    /// The live topology every hop is validated against.
    pub graph: &'a Graph,
    /// The live active set (a hop onto an inactive node is a stale loss).
    pub is_active: A,
    /// A node's last published epoch (`None` = the node never published).
    pub table_of: T,
    /// Hop budget: exceeding it means a transient loop across mixed
    /// epochs, counted as a stale loss.
    pub ttl: u32,
}

impl<'a, 't, A, T> PacketWalker<'a, A, T>
where
    A: Fn(NodeId) -> bool,
    T: Fn(NodeId) -> Option<&'t ForwardingTable>,
{
    /// Forward one packet from `src` to `dst` hop-by-hop through the
    /// published tables. `addr` is the destination's resolved address
    /// (`None` models an unresolved name: only direct table hits can
    /// deliver). `on_lookup` observes every table probe's wall-clock
    /// nanoseconds — the per-lookup latency stream for
    /// [`disco_telemetry`]'s histograms.
    ///
    /// At each node the forwarding decision is, in order: direct table
    /// hit on `dst`; explicit label step if the node sits on the address
    /// path; table route toward the address landmark; the table's
    /// landmark-fallback hop.
    pub fn walk(
        &self,
        src: NodeId,
        dst: NodeId,
        addr: Option<&FlowAddress>,
        mut on_lookup: impl FnMut(u64),
    ) -> WalkOutcome {
        if src == dst {
            return WalkOutcome::Delivered { hops: 0 };
        }
        let mut cur = src;
        for hops in 0..self.ttl {
            let Some(tab) = (self.table_of)(cur) else {
                return WalkOutcome::Miss { hops };
            };
            let t0 = Instant::now();
            let direct = tab.lookup(dst);
            on_lookup(t0.elapsed().as_nanos() as u64);
            let next = if let Some(h) = direct {
                h
            } else if let Some(addr) = addr {
                match addr.path.iter().position(|&p| p == cur) {
                    // On the label: follow the explicit source route.
                    Some(i) if i + 1 < addr.path.len() => addr.path[i + 1],
                    _ => {
                        let t0 = Instant::now();
                        let lm_hop = tab.lookup(addr.landmark);
                        on_lookup(t0.elapsed().as_nanos() as u64);
                        match lm_hop.or_else(|| tab.fallback().map(|(_, hop)| hop)) {
                            Some(h) => h,
                            None => return WalkOutcome::Miss { hops },
                        }
                    }
                }
            } else {
                return WalkOutcome::Miss { hops };
            };
            if !(self.is_active)(next) || self.graph.edge_weight(cur, next).is_none() {
                return WalkOutcome::StaleLoss { hops };
            }
            cur = next;
            if cur == dst {
                return WalkOutcome::Delivered { hops: hops + 1 };
            }
        }
        WalkOutcome::TtlExceeded
    }
}

/// Breadth-first hop distances from `src` over the active subgraph
/// (`u32::MAX` = unreachable) — the denominator of per-walk hop stretch,
/// and the routability oracle the stale-loss SLO conditions on (a pair no
/// path serves cannot be *lost*, only unreachable).
pub fn hop_distances(graph: &Graph, is_active: impl Fn(NodeId) -> bool, src: NodeId) -> Vec<u32> {
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    if !is_active(src) {
        return dist;
    }
    dist[src.0] = 0;
    let mut frontier = vec![src];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &v in &frontier {
            for nb in graph.neighbors(v) {
                let w = nb.node;
                if dist[w.0] == u32::MAX && is_active(w) {
                    dist[w.0] = d;
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::GraphBuilder;

    /// A 0–1–2–3 path graph with tables routing left-to-right.
    fn line() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        b.add_edge(NodeId(2), NodeId(3), 1.0);
        b.build()
    }

    fn table(node: usize, rows: &[(usize, usize)]) -> ForwardingTable {
        let mut t = ForwardingTable::new(NodeId(node));
        t.begin(NodeId(node), 1);
        for &(dest, hop) in rows {
            t.push_route(NodeId(dest), NodeId(hop), 1);
        }
        t.seal();
        t
    }

    /// Delivered along the line, hop count and lookup stream correct.
    #[test]
    fn walks_deliver_over_direct_routes() {
        let g = line();
        let tabs: Vec<ForwardingTable> = (0..4).map(|v| table(v, &[(3, (v + 1).min(3))])).collect();
        let mut lookups = 0;
        let walker = PacketWalker {
            graph: &g,
            is_active: |_| true,
            table_of: |v: NodeId| Some(&tabs[v.0]),
            ttl: 16,
        };
        let out = walker.walk(NodeId(0), NodeId(3), None, |_| lookups += 1);
        assert_eq!(out, WalkOutcome::Delivered { hops: 3 });
        assert_eq!(lookups, 3);
    }

    /// A hop onto an inactive node is a stale loss, not a miss.
    #[test]
    fn dead_hop_is_stale_loss() {
        let g = line();
        let tabs: Vec<ForwardingTable> = (0..4).map(|v| table(v, &[(3, (v + 1).min(3))])).collect();
        let walker = PacketWalker {
            graph: &g,
            is_active: |v: NodeId| v != NodeId(2),
            table_of: |v: NodeId| Some(&tabs[v.0]),
            ttl: 16,
        };
        let out = walker.walk(NodeId(0), NodeId(3), None, |_| {});
        assert_eq!(out, WalkOutcome::StaleLoss { hops: 1 });
        assert!(out.stale_loss() && !out.delivered());
    }

    /// With no direct route, the packet rides the label path from the
    /// landmark; with no address at all, it is a miss.
    #[test]
    fn label_leg_and_miss() {
        let g = line();
        // Node 0 only knows the landmark (node 1); 1 and 2 know nothing
        // directly and sit on the label path 1 → 2 → 3.
        let tabs = [
            table(0, &[(1, 1)]),
            table(1, &[]),
            table(2, &[]),
            table(3, &[]),
        ];
        let addr = FlowAddress {
            landmark: NodeId(1),
            path: vec![NodeId(1), NodeId(2), NodeId(3)],
        };
        let walker = PacketWalker {
            graph: &g,
            is_active: |_| true,
            table_of: |v: NodeId| Some(&tabs[v.0]),
            ttl: 16,
        };
        let out = walker.walk(NodeId(0), NodeId(3), Some(&addr), |_| {});
        assert_eq!(out, WalkOutcome::Delivered { hops: 3 });
        let out = walker.walk(NodeId(0), NodeId(3), None, |_| {});
        assert_eq!(out, WalkOutcome::Miss { hops: 0 });
    }

    /// BFS hop distances respect the active set.
    #[test]
    fn hop_distances_skip_inactive() {
        let g = line();
        let d = hop_distances(&g, |_| true, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
        let d = hop_distances(&g, |v| v != NodeId(1), NodeId(0));
        assert_eq!(d[3], u32::MAX, "cut by the inactive node");
    }
}
