//! Route availability and stretch measurement under dynamics.
//!
//! The paper's Fig. 8 measures control traffic until convergence on a
//! static topology. Under churn the interesting quantities are instead
//! *route availability* — can a live source still construct a working
//! route to a live destination right now? — and *stretch under churn*,
//! both measured against the engine's **current** graph. The probes here
//! are measurement-plane only: they read protocol state omnisciently but
//! never mutate it, and sample deterministically from a seed.

use disco_core::path_vector::PathVectorNode;
use disco_core::protocol::DiscoProtocol;
use disco_graph::{dijkstra, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Engine, EventQueue, Protocol, Recorder, SimTime};
use rand::Rng;

/// Outcome of one batch of route probes.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Simulation time of the probe.
    pub time: SimTime,
    /// Sampled (source, destination) pairs.
    pub pairs: usize,
    /// Pairs connected in the current graph (the denominator: routing can
    /// not be blamed for a partition).
    pub routable: usize,
    /// Pairs for which a working route was found.
    pub delivered: usize,
    /// Sum of stretch over delivered pairs.
    sum_stretch: f64,
}

impl ProbeReport {
    /// Fraction of routable pairs that were delivered (1.0 when nothing
    /// was routable).
    pub fn availability(&self) -> f64 {
        if self.routable == 0 {
            1.0
        } else {
            self.delivered as f64 / self.routable as f64
        }
    }

    /// Mean stretch over delivered pairs (1.0 when nothing was delivered).
    pub fn mean_stretch(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.sum_stretch / self.delivered as f64
        }
    }
}

/// Sample `count` ordered pairs of distinct currently-live nodes,
/// deterministically from `seed`.
pub fn sample_live_pairs<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
    engine: &Engine<'_, P, Q, R>,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let live: Vec<NodeId> = engine.active_nodes().collect();
    if live.len() < 2 {
        return Vec::new();
    }
    let mut rng = rng_for(seed, 0xb0, engine.topology_events());
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let s = live[rng.gen_range(0..live.len())];
        let mut t = live[rng.gen_range(0..live.len())];
        while t == s {
            t = live[rng.gen_range(0..live.len())];
        }
        pairs.push((s, t));
    }
    pairs
}

/// Probe each pair: ask `route_of` for candidate routes in preference
/// order (measurement-plane access to every protocol instance), validate
/// each hop-by-hop against the engine's current graph, count the pair
/// delivered if any candidate walks, and compare the first walking route's
/// length to the true shortest path. `route_of(nodes, s, t)` returns node
/// sequences `s..=t`.
pub fn probe<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
    engine: &Engine<'_, P, Q, R>,
    pairs: &[(NodeId, NodeId)],
    route_of: impl Fn(&[P], NodeId, NodeId) -> Vec<Vec<NodeId>>,
) -> ProbeReport {
    let graph = engine.graph();
    let mut report = ProbeReport {
        time: engine.now(),
        pairs: pairs.len(),
        routable: 0,
        delivered: 0,
        sum_stretch: 0.0,
    };
    // One shortest-path tree per distinct source.
    let mut sources: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
    sources.sort_unstable();
    sources.dedup();
    let trees: std::collections::HashMap<NodeId, _> = sources
        .into_iter()
        .map(|s| (s, dijkstra(graph, s)))
        .collect();
    for &(s, t) in pairs {
        let Some(true_dist) = trees[&s].distance(t) else {
            continue; // partitioned: not the routing layer's fault
        };
        report.routable += 1;
        let candidates = route_of(engine.nodes(), s, t);
        let Some(len) = candidates
            .iter()
            .find_map(|route| walk_length(engine, route, s, t))
        else {
            continue; // no candidate, or all stale (broken link / dead hop)
        };
        report.delivered += 1;
        report.sum_stretch += if true_dist <= 0.0 {
            1.0
        } else {
            len / true_dist
        };
    }
    report
}

/// Validate `route` as a walk `s..=t` over the engine's current graph with
/// every hop active; returns its length.
fn walk_length<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
    engine: &Engine<'_, P, Q, R>,
    route: &[NodeId],
    s: NodeId,
    t: NodeId,
) -> Option<f64> {
    if route.first() != Some(&s) || route.last() != Some(&t) {
        return None;
    }
    let graph = engine.graph();
    let mut len = 0.0;
    for w in route.windows(2) {
        if !engine.is_active(w[0]) || !engine.is_active(w[1]) {
            return None;
        }
        len += graph.edge_weight(w[0], w[1])?;
    }
    Some(len)
}

/// Route oracle for plain path-vector nodes: the table route, if any.
pub fn path_vector_route(nodes: &[PathVectorNode], s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    nodes[s.0]
        .table
        .get(&t)
        .map(|e| e.path.to_vec())
        .into_iter()
        .collect()
}

/// Route oracle emulating Disco's first packet (§4.3), in the protocol's
/// preference order: a vicinity route if the source has one; the address
/// known through the source's sloppy group; and name resolution — the
/// destination's flat-name hash resolved at the owning landmark (which the
/// source must be able to reach and which must hold an address for the
/// hash), followed as `s ; ℓ_t ; t`.
pub fn disco_first_packet_route(nodes: &[DiscoProtocol], s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    let src = &nodes[s.0];
    let mut candidates = Vec::new();
    // Vicinity / landmark-table route.
    if let Some(direct) = src.pv.table.get(&t) {
        candidates.push(direct.path.to_vec());
    }
    // Sloppy-group proxy: the source may already know the address.
    if let Some(addr) = src.group_address(t) {
        candidates.extend(src.route_to(t, Some(addr)).map(|p| p.to_vec()));
    }
    // Name resolution: the owner landmark of H(t) must be reachable from s
    // and must hold t's address.
    let t_hash = nodes[t.0].my_hash();
    if let Some(owner) = src.owner_landmark(t_hash) {
        if src.route_to(owner, None).is_some() {
            // The resolution request is routable; use the stored address.
            if let Some(addr) = nodes[owner.0].resolution_store.get(&t_hash) {
                if addr.node == t {
                    candidates.extend(src.route_to(t, Some(addr)).map(|p| p.to_vec()));
                }
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_core::path_vector::TableLimit;
    use disco_graph::generators;
    use disco_sim::TopologyEvent;

    fn pv_engine(n: usize, m: usize, seed: u64) -> Engine<'static, PathVectorNode> {
        let g = generators::gnm_connected(n, m, seed);
        let mut engine = Engine::new(&g, |v| {
            PathVectorNode::new(v, v == NodeId(0), TableLimit::Unlimited)
        });
        assert!(engine.run().converged);
        engine
    }

    #[test]
    fn converged_network_has_full_availability_and_unit_stretch() {
        let engine = pv_engine(48, 192, 3);
        let pairs = sample_live_pairs(&engine, 64, 3);
        assert_eq!(pairs.len(), 64);
        let report = probe(&engine, &pairs, path_vector_route);
        assert_eq!(report.routable, 64);
        assert_eq!(report.delivered, 64);
        assert!((report.availability() - 1.0).abs() < 1e-12);
        assert!((report.mean_stretch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn availability_recovers_after_churn() {
        let mut engine = pv_engine(48, 192, 5);
        let t0 = engine.now() + 1.0;
        engine.schedule_topology(t0, TopologyEvent::NodeLeave { node: NodeId(7) });
        engine.schedule_topology(
            t0 + 1.0,
            TopologyEvent::LinkDown {
                u: NodeId(1),
                v: engine.graph().neighbors(NodeId(1))[0].node,
            },
        );
        assert!(engine.run_until(|_| false), "repair did not quiesce");
        let pairs = sample_live_pairs(&engine, 64, 5);
        let report = probe(&engine, &pairs, path_vector_route);
        assert_eq!(report.routable, report.pairs);
        assert_eq!(
            report.delivered, report.routable,
            "unlimited path vector must fully heal"
        );
        assert!((report.mean_stretch() - 1.0).abs() < 1e-9);
        // Sampling never picks the departed node.
        assert!(pairs.iter().all(|&(s, t)| s != NodeId(7) && t != NodeId(7)));
    }

    #[test]
    fn stale_routes_fail_validation() {
        let mut engine = pv_engine(16, 48, 9);
        // Freeze state, then break a link WITHOUT letting repair run: routes
        // through it must count as undelivered.
        let (u, v) = {
            let e = engine.nodes()[2]
                .table
                .iter()
                .find(|(&d, _)| d != NodeId(2));
            let entry = e.map(|(_, e)| e.path.to_vec()).unwrap();
            (entry[0], entry[1])
        };
        let before = probe(&engine, &[(u, v)], path_vector_route);
        assert_eq!(before.delivered, 1);
        let t0 = engine.now() + 1.0;
        engine.schedule_topology(t0, TopologyEvent::LinkDown { u, v });
        // Advance exactly past the event; the repair traffic it triggers is
        // still in flight, so u's direct route to v is stale.
        engine.run_to(t0 + 1e-6);
        let report = probe(&engine, &[(u, v)], path_vector_route);
        if let Some(e) = engine.nodes()[u.0].table.get(&v) {
            // If u still exports a (stale or alternate) route, the probe
            // must only count it when it walks on the current graph.
            let walks = e
                .path
                .to_vec()
                .windows(2)
                .all(|w| engine.graph().edge_weight(w[0], w[1]).is_some());
            assert_eq!(report.delivered == 1, walks);
        } else {
            assert_eq!(report.delivered, 0);
        }
    }
}
