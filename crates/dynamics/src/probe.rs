//! Route availability and stretch measurement under dynamics.
//!
//! The paper's Fig. 8 measures control traffic until convergence on a
//! static topology. Under churn the interesting quantities are instead
//! *route availability* — can a live source still construct a working
//! route to a live destination right now? — and *stretch under churn*,
//! both measured against the engine's **current** graph. The probes here
//! are measurement-plane only: they read protocol state omnisciently but
//! never mutate it, and sample deterministically from a seed.

use disco_core::hash::NameHash;
use disco_core::path_vector::PathVectorNode;
use disco_core::protocol::{DiscoProtocol, WireAddress};
use disco_graph::{dijkstra, Graph, InternedPath, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Engine, EventQueue, Protocol, Recorder, ShardedEngine, SimTime};
use rand::Rng;

/// Outcome of one batch of route probes.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Simulation time of the probe.
    pub time: SimTime,
    /// Sampled (source, destination) pairs.
    pub pairs: usize,
    /// Pairs connected in the current graph (the denominator: routing can
    /// not be blamed for a partition).
    pub routable: usize,
    /// Pairs for which a working route was found.
    pub delivered: usize,
    /// Sum of stretch over delivered pairs.
    sum_stretch: f64,
}

impl ProbeReport {
    /// Fraction of routable pairs that were delivered (1.0 when nothing
    /// was routable).
    pub fn availability(&self) -> f64 {
        if self.routable == 0 {
            1.0
        } else {
            self.delivered as f64 / self.routable as f64
        }
    }

    /// Mean stretch over delivered pairs (1.0 when nothing was delivered).
    pub fn mean_stretch(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.sum_stretch / self.delivered as f64
        }
    }
}

/// Sample `count` ordered pairs of distinct live nodes from `live`,
/// deterministically from `(seed, topology_events)`. The shared core of
/// the sequential and sharded samplers: both draw from the same RNG
/// stream keyed by the same topology-event count, so a sharded run probes
/// exactly the pairs the sequential run would.
fn sample_pairs_from(
    live: &[NodeId],
    topology_events: u64,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    if live.len() < 2 {
        return Vec::new();
    }
    let mut rng = rng_for(seed, 0xb0, topology_events);
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let s = live[rng.gen_range(0..live.len())];
        let mut t = live[rng.gen_range(0..live.len())];
        while t == s {
            t = live[rng.gen_range(0..live.len())];
        }
        pairs.push((s, t));
    }
    pairs
}

/// Sample `count` ordered pairs of distinct currently-live nodes,
/// deterministically from `seed`.
pub fn sample_live_pairs<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
    engine: &Engine<'_, P, Q, R>,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let live: Vec<NodeId> = engine.active_nodes().collect();
    sample_pairs_from(&live, engine.topology_events(), count, seed)
}

/// [`sample_live_pairs`] against a sharded engine's coordinator mirror.
/// Byte-identical pairs to the sequential sampler at the same probe point.
pub fn sample_live_pairs_sharded<P, R>(
    engine: &ShardedEngine<P, R>,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)>
where
    P: disco_sim::ShardProtocol + 'static,
    R: Recorder + Send + 'static,
{
    let live: Vec<NodeId> = engine.active_nodes().collect();
    sample_pairs_from(&live, engine.topology_events(), count, seed)
}

/// Probe each pair: ask `route_of` for candidate routes in preference
/// order (measurement-plane access to every protocol instance), validate
/// each hop-by-hop against the engine's current graph, count the pair
/// delivered if any candidate walks, and compare the first walking route's
/// length to the true shortest path. `route_of(nodes, s, t)` returns node
/// sequences `s..=t`.
pub fn probe<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
    engine: &Engine<'_, P, Q, R>,
    pairs: &[(NodeId, NodeId)],
    route_of: impl Fn(&[P], NodeId, NodeId) -> Vec<Vec<NodeId>>,
) -> ProbeReport {
    let candidates: Vec<Vec<Vec<NodeId>>> = pairs
        .iter()
        .map(|&(s, t)| route_of(engine.nodes(), s, t))
        .collect();
    validate_candidates(
        engine.graph(),
        |v| engine.is_active(v),
        engine.now(),
        pairs,
        &candidates,
    )
}

/// The measurement half of a probe, shared by the sequential and sharded
/// drivers: given each pair's candidate routes (in preference order),
/// validate them hop-by-hop against `graph` + `is_active`, count delivered
/// pairs and accumulate stretch against the true shortest paths.
fn validate_candidates(
    graph: &Graph,
    is_active: impl Fn(NodeId) -> bool,
    now: SimTime,
    pairs: &[(NodeId, NodeId)],
    candidates: &[Vec<Vec<NodeId>>],
) -> ProbeReport {
    let mut report = ProbeReport {
        time: now,
        pairs: pairs.len(),
        routable: 0,
        delivered: 0,
        sum_stretch: 0.0,
    };
    // One shortest-path tree per distinct source.
    let mut sources: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
    sources.sort_unstable();
    sources.dedup();
    let trees: std::collections::HashMap<NodeId, _> = sources
        .into_iter()
        .map(|s| (s, dijkstra(graph, s)))
        .collect();
    for (&(s, t), cands) in pairs.iter().zip(candidates) {
        let Some(true_dist) = trees[&s].distance(t) else {
            continue; // partitioned: not the routing layer's fault
        };
        report.routable += 1;
        let Some(len) = cands
            .iter()
            .find_map(|route| walk_length(graph, &is_active, route, s, t))
        else {
            continue; // no candidate, or all stale (broken link / dead hop)
        };
        report.delivered += 1;
        report.sum_stretch += if true_dist <= 0.0 {
            1.0
        } else {
            len / true_dist
        };
    }
    report
}

/// Validate `route` as a walk `s..=t` over `graph` with every hop active;
/// returns its length.
fn walk_length(
    graph: &Graph,
    is_active: impl Fn(NodeId) -> bool,
    route: &[NodeId],
    s: NodeId,
    t: NodeId,
) -> Option<f64> {
    if route.first() != Some(&s) || route.last() != Some(&t) {
        return None;
    }
    let mut len = 0.0;
    for w in route.windows(2) {
        if !is_active(w[0]) || !is_active(w[1]) {
            return None;
        }
        len += graph.edge_weight(w[0], w[1])?;
    }
    Some(len)
}

/// Route oracle for plain path-vector nodes: the table route, if any.
pub fn path_vector_route(nodes: &[PathVectorNode], s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    nodes[s.0]
        .table
        .get(&t)
        .map(|e| e.path.to_vec())
        .into_iter()
        .collect()
}

/// Route oracle emulating Disco's first packet (§4.3), in the protocol's
/// preference order: a vicinity route if the source has one; the address
/// known through the source's sloppy group; and name resolution — the
/// destination's flat-name hash resolved at the owning landmark (which the
/// source must be able to reach and which must hold an address for the
/// hash), followed as `s ; ℓ_t ; t`.
pub fn disco_first_packet_route(nodes: &[DiscoProtocol], s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    let src = &nodes[s.0];
    let mut candidates = Vec::new();
    // Vicinity / landmark-table route.
    if let Some(direct) = src.pv.table.get(&t) {
        candidates.push(direct.path.to_vec());
    }
    // Sloppy-group proxy: the source may already know the address.
    if let Some(addr) = src.group_address(t) {
        candidates.extend(src.route_to(t, Some(addr)).map(|p| p.to_vec()));
    }
    // Name resolution: the owner landmark of H(t) must be reachable from s
    // and must hold t's address.
    let t_hash = nodes[t.0].my_hash();
    if let Some(owner) = src.owner_landmark(t_hash) {
        if src.route_to(owner, None).is_some() {
            // The resolution request is routable; use the stored address.
            if let Some(addr) = nodes[owner.0].resolution_store.get(&t_hash) {
                if addr.node == t {
                    candidates.extend(src.route_to(t, Some(addr)).map(|p| p.to_vec()));
                }
            }
        }
    }
    candidates
}

/// [`probe`] with [`disco_first_packet_route`] semantics against a sharded
/// engine. Node `v`'s live protocol state exists only on shard
/// `owner_of(v)`, so the candidate collection runs as three batched visit
/// phases (one sweep over the shards each) that reproduce the sequential
/// oracle's candidate order exactly:
///
/// 1. on `owner(s)`: the vicinity route and the sloppy-group route, plus
///    whether the owner landmark of `H(t)` is reachable from `s` (the
///    hash itself is construction-time constant, so the local replica of
///    `t` can supply it);
/// 2. on `owner(ℓ)`: the owning landmark's resolution-store entry for
///    `H(t)`, detached from its shard-local path arena;
/// 3. on `owner(s)` again: the resolution route `s ; ℓ_t ; t` built from
///    the re-interned address, appended after the phase-1 candidates.
///
/// Validation then runs against the coordinator's graph mirror, so the
/// report is byte-identical to the sequential probe at the same time.
pub fn disco_probe_sharded<R>(
    engine: &mut ShardedEngine<DiscoProtocol, R>,
    pairs: &[(NodeId, NodeId)],
) -> ProbeReport
where
    R: Recorder + Send + 'static,
{
    let shards = engine.shards();
    let mut candidates: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); pairs.len()];
    // Resolution follow-ups: pair index -> (owning landmark, H(t)).
    let mut lookups: Vec<Option<(NodeId, NameHash)>> = vec![None; pairs.len()];

    // Phase 1: source-local candidates + resolution reachability.
    for shard in 0..shards {
        let mine: Vec<(usize, NodeId, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|&(_, &(s, _))| engine.owner_of(s) == shard)
            .map(|(i, &(s, t))| (i, s, t))
            .collect();
        if mine.is_empty() {
            continue;
        }
        type Phase1Row = (usize, Vec<Vec<NodeId>>, Option<(NodeId, NameHash)>);
        let rows: Vec<Phase1Row> = engine.visit(shard, move |e| {
            let nodes = e.nodes();
            mine.into_iter()
                .map(|(i, s, t)| {
                    let src = &nodes[s.0];
                    let mut cands = Vec::new();
                    if let Some(direct) = src.pv.table.get(&t) {
                        cands.push(direct.path.to_vec());
                    }
                    if let Some(addr) = src.group_address(t) {
                        cands.extend(src.route_to(t, Some(addr)).map(|p| p.to_vec()));
                    }
                    let t_hash = nodes[t.0].my_hash();
                    let lookup = src
                        .owner_landmark(t_hash)
                        .filter(|&owner| src.route_to(owner, None).is_some())
                        .map(|owner| (owner, t_hash));
                    (i, cands, lookup)
                })
                .collect()
        });
        for (i, cands, lookup) in rows {
            candidates[i] = cands;
            lookups[i] = lookup;
        }
    }

    // Phase 2: resolution-store reads on the owning landmarks' shards.
    // Addresses come back with their paths detached (interned paths are
    // pinned to the worker's arena).
    let mut resolved: Vec<Option<(NodeId, NodeId, Vec<NodeId>)>> = vec![None; pairs.len()];
    for shard in 0..shards {
        let mine: Vec<(usize, NodeId, NameHash, NodeId)> = lookups
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.map(|(owner, hash)| (i, owner, hash, pairs[i].1)))
            .filter(|&(_, owner, _, _)| engine.owner_of(owner) == shard)
            .collect();
        if mine.is_empty() {
            continue;
        }
        type Phase2Row = (usize, Option<(NodeId, NodeId, Vec<NodeId>)>);
        let rows: Vec<Phase2Row> = engine.visit(shard, move |e| {
            let nodes = e.nodes();
            mine.into_iter()
                .map(|(i, owner, hash, t)| {
                    let addr = nodes[owner.0]
                        .resolution_store
                        .get(&hash)
                        .filter(|addr| addr.node == t)
                        .map(|addr| (addr.node, addr.landmark, addr.path.to_vec()));
                    (i, addr)
                })
                .collect()
        });
        for (i, addr) in rows {
            resolved[i] = addr;
        }
    }

    // Phase 3: back on the source shards, build the resolution route from
    // the re-interned address; it lands after the phase-1 candidates,
    // matching the sequential preference order.
    // (pair index, source, target, detached (node, landmark, path)).
    type Phase3Row = (usize, NodeId, NodeId, (NodeId, NodeId, Vec<NodeId>));
    for shard in 0..shards {
        let mine: Vec<Phase3Row> = resolved
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.clone().map(|a| (i, pairs[i].0, pairs[i].1, a)))
            .filter(|&(_, s, _, _)| engine.owner_of(s) == shard)
            .collect();
        if mine.is_empty() {
            continue;
        }
        let rows: Vec<(usize, Option<Vec<NodeId>>)> = engine.visit(shard, move |e| {
            let nodes = e.nodes();
            mine.into_iter()
                .map(|(i, s, t, (node, landmark, path))| {
                    let addr = WireAddress {
                        node,
                        landmark,
                        path: InternedPath::from_slice(&path),
                    };
                    (i, nodes[s.0].route_to(t, Some(&addr)).map(|p| p.to_vec()))
                })
                .collect()
        });
        for (i, route) in rows {
            candidates[i].extend(route);
        }
    }

    validate_candidates(
        engine.graph(),
        |v| engine.is_active(v),
        engine.now(),
        pairs,
        &candidates,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_core::path_vector::TableLimit;
    use disco_graph::generators;
    use disco_sim::TopologyEvent;

    fn pv_engine(n: usize, m: usize, seed: u64) -> Engine<'static, PathVectorNode> {
        let g = generators::gnm_connected(n, m, seed);
        let mut engine = Engine::new(&g, |v| {
            PathVectorNode::new(v, v == NodeId(0), TableLimit::Unlimited)
        });
        assert!(engine.run().converged);
        engine
    }

    #[test]
    fn converged_network_has_full_availability_and_unit_stretch() {
        let engine = pv_engine(48, 192, 3);
        let pairs = sample_live_pairs(&engine, 64, 3);
        assert_eq!(pairs.len(), 64);
        let report = probe(&engine, &pairs, path_vector_route);
        assert_eq!(report.routable, 64);
        assert_eq!(report.delivered, 64);
        assert!((report.availability() - 1.0).abs() < 1e-12);
        assert!((report.mean_stretch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn availability_recovers_after_churn() {
        let mut engine = pv_engine(48, 192, 5);
        let t0 = engine.now() + 1.0;
        engine.schedule_topology(t0, TopologyEvent::NodeLeave { node: NodeId(7) });
        engine.schedule_topology(
            t0 + 1.0,
            TopologyEvent::LinkDown {
                u: NodeId(1),
                v: engine.graph().neighbors(NodeId(1))[0].node,
            },
        );
        assert!(engine.run_until(|_| false), "repair did not quiesce");
        let pairs = sample_live_pairs(&engine, 64, 5);
        let report = probe(&engine, &pairs, path_vector_route);
        assert_eq!(report.routable, report.pairs);
        assert_eq!(
            report.delivered, report.routable,
            "unlimited path vector must fully heal"
        );
        assert!((report.mean_stretch() - 1.0).abs() < 1e-9);
        // Sampling never picks the departed node.
        assert!(pairs.iter().all(|&(s, t)| s != NodeId(7) && t != NodeId(7)));
    }

    #[test]
    fn stale_routes_fail_validation() {
        let mut engine = pv_engine(16, 48, 9);
        // Freeze state, then break a link WITHOUT letting repair run: routes
        // through it must count as undelivered.
        let (u, v) = {
            let e = engine.nodes()[2]
                .table
                .iter()
                .find(|(&d, _)| d != NodeId(2));
            let entry = e.map(|(_, e)| e.path.to_vec()).unwrap();
            (entry[0], entry[1])
        };
        let before = probe(&engine, &[(u, v)], path_vector_route);
        assert_eq!(before.delivered, 1);
        let t0 = engine.now() + 1.0;
        engine.schedule_topology(t0, TopologyEvent::LinkDown { u, v });
        // Advance exactly past the event; the repair traffic it triggers is
        // still in flight, so u's direct route to v is stale.
        engine.run_to(t0 + 1e-6);
        let report = probe(&engine, &[(u, v)], path_vector_route);
        if let Some(e) = engine.nodes()[u.0].table.get(&v) {
            // If u still exports a (stale or alternate) route, the probe
            // must only count it when it walks on the current graph.
            let walks = e
                .path
                .to_vec()
                .windows(2)
                .all(|w| engine.graph().edge_weight(w[0], w[1]).is_some());
            assert_eq!(report.delivered == 1, walks);
        } else {
            assert_eq!(report.delivered, 0);
        }
    }
}
