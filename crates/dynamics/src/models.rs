//! Compilers from churn models to deterministic [`Schedule`]s.
//!
//! Each model is a pure function of `(graph, parameters, seed)`: the same
//! inputs always compile to the same event stream. The compilers track the
//! liveness they themselves induce (who is up at each instant), so joins
//! attach to anchors that are actually present when the event fires.

use crate::schedule::Schedule;
use disco_graph::{Graph, NodeId, Weight};
use disco_sim::rng::rng_for;
use disco_sim::TopologyEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG stream ids (see `disco_sim::rng`).
const STREAM_CHURN: u64 = 0xc0;
const STREAM_LINKS: u64 = 0xc1;
const STREAM_CROWD: u64 = 0xc2;
const STREAM_WAYPOINT: u64 = 0xc3;

/// Exponential draw with the given rate (mean `1/rate`).
fn exp_draw(rng: &mut StdRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Pick `k` distinct elements of `pool` (uniformly, without replacement).
/// Returns fewer when the pool is smaller than `k`.
fn pick_distinct(rng: &mut StdRng, pool: &[NodeId], k: usize) -> Vec<NodeId> {
    let mut pool = pool.to_vec();
    let k = k.min(pool.len());
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out.sort_unstable();
    out
}

/// Poisson node churn: nodes leave at exponential inter-arrival times and
/// rejoin after an exponential downtime, re-attaching to fresh anchors —
/// the classic P2P churn model (e.g. Stutzbach & Rejaie, IMC'06), here
/// compiled to a deterministic event stream.
#[derive(Debug, Clone)]
pub struct PoissonChurn {
    /// Per-node leave rate λ (events per unit time per live node).
    pub leave_rate_per_node: f64,
    /// Mean downtime before a departed node rejoins.
    pub mean_downtime: f64,
    /// Anchors a rejoining node attaches to.
    pub attach_links: usize,
    /// Weight of the new attachment links.
    pub link_weight: Weight,
    /// Length of the churn window.
    pub horizon: f64,
    /// Leaves are suppressed while the live fraction is at or below this
    /// floor, bounding how much of the network can be down at once.
    pub min_live_fraction: f64,
}

impl Default for PoissonChurn {
    fn default() -> Self {
        PoissonChurn {
            leave_rate_per_node: 0.001,
            mean_downtime: 40.0,
            attach_links: 3,
            link_weight: 1.0,
            horizon: 400.0,
            min_live_fraction: 0.75,
        }
    }
}

impl PoissonChurn {
    /// Compile to a schedule over the nodes of `graph`.
    pub fn compile(&self, graph: &Graph, seed: u64) -> Schedule {
        let n = graph.node_count();
        let mut rng = rng_for_model(seed, STREAM_CHURN);
        let mut schedule = Schedule::new();
        let mut live: Vec<bool> = vec![true; n];
        let mut live_count = n;
        // Pending rejoins, kept sorted by time descending (pop from the end).
        let mut rejoins: Vec<(f64, NodeId)> = Vec::new();
        let mut t = 0.0;
        loop {
            let leave_rate = self.leave_rate_per_node * live_count as f64;
            let next_leave = t + exp_draw(&mut rng, leave_rate.max(1e-12));
            let next_rejoin = rejoins.last().map(|&(rt, _)| rt);
            let (event_time, is_rejoin) = match next_rejoin {
                Some(rt) if rt <= next_leave => (rt, true),
                _ => (next_leave, false),
            };
            if event_time > self.horizon {
                break;
            }
            t = event_time;
            if is_rejoin {
                let (_, v) = rejoins.pop().unwrap();
                let pool: Vec<NodeId> = (0..n)
                    .map(NodeId)
                    .filter(|&w| live[w.0] && w != v)
                    .collect();
                let links: Vec<(NodeId, Weight)> =
                    pick_distinct(&mut rng, &pool, self.attach_links)
                        .into_iter()
                        .map(|a| (a, self.link_weight))
                        .collect();
                schedule.push(t, TopologyEvent::NodeJoin { node: v, links });
                live[v.0] = true;
                live_count += 1;
            } else {
                if (live_count as f64) <= self.min_live_fraction * n as f64 {
                    continue; // too many down already; suppress this leave
                }
                let pool: Vec<NodeId> = (0..n).map(NodeId).filter(|&w| live[w.0]).collect();
                let v = pool[rng.gen_range(0..pool.len())];
                schedule.push(t, TopologyEvent::NodeLeave { node: v });
                live[v.0] = false;
                live_count -= 1;
                let back = t + exp_draw(&mut rng, 1.0 / self.mean_downtime.max(1e-12));
                let pos = rejoins
                    .iter()
                    .position(|&(rt, _)| rt < back)
                    .unwrap_or(rejoins.len());
                rejoins.insert(pos, (back, v));
            }
        }
        schedule
    }
}

/// Rolling link failures: each edge independently alternates between up and
/// down with exponential times (mean time between failures / mean time to
/// repair), the standard availability model for links.
#[derive(Debug, Clone)]
pub struct LinkFailures {
    /// Mean up-time of a link before it fails.
    pub mtbf: f64,
    /// Mean repair time before the link comes back (with its old weight).
    pub mttr: f64,
    /// Length of the failure window.
    pub horizon: f64,
}

impl Default for LinkFailures {
    fn default() -> Self {
        LinkFailures {
            mtbf: 2000.0,
            mttr: 50.0,
            horizon: 400.0,
        }
    }
}

impl LinkFailures {
    /// Compile to a schedule over the edges of `graph`.
    pub fn compile(&self, graph: &Graph, seed: u64) -> Schedule {
        // Per-edge streams interleave arbitrarily in time, so collect and
        // sort once instead of insertion-sorting every push.
        let mut events = Vec::new();
        for (id, e) in graph.edges() {
            // One independent renewal process per edge, each on its own
            // deterministic stream.
            let mut rng = rng_for(seed, STREAM_LINKS, id.0 as u64);
            let mut t = 0.0;
            loop {
                t += exp_draw(&mut rng, 1.0 / self.mtbf.max(1e-12));
                if t > self.horizon {
                    break;
                }
                events.push((t, TopologyEvent::LinkDown { u: e.u, v: e.v }));
                t += exp_draw(&mut rng, 1.0 / self.mttr.max(1e-12));
                if t > self.horizon {
                    break;
                }
                events.push((
                    t,
                    TopologyEvent::LinkUp {
                        u: e.u,
                        v: e.v,
                        weight: e.weight,
                    },
                ));
            }
        }
        Schedule::from_events(events)
    }
}

/// A flash crowd: a burst of brand-new nodes joins within a short window,
/// each attaching to random anchors among the original population.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Number of arriving nodes.
    pub arrivals: usize,
    /// Start of the burst.
    pub at: f64,
    /// Arrivals are spread uniformly over `[at, at + spread)`.
    pub spread: f64,
    /// Anchors each arrival attaches to.
    pub attach_links: usize,
    /// Weight of the attachment links.
    pub link_weight: Weight,
}

impl Default for FlashCrowd {
    fn default() -> Self {
        FlashCrowd {
            arrivals: 32,
            at: 10.0,
            spread: 50.0,
            attach_links: 3,
            link_weight: 1.0,
        }
    }
}

impl FlashCrowd {
    /// Compile to a schedule; arrivals get the fresh ids
    /// `graph.node_count()..graph.node_count() + arrivals`.
    pub fn compile(&self, graph: &Graph, seed: u64) -> Schedule {
        let n = graph.node_count();
        let mut rng = rng_for_model(seed, STREAM_CROWD);
        let anchors_pool: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut arrivals: Vec<(f64, NodeId)> = (0..self.arrivals)
            .map(|i| {
                let dt: f64 = rng.gen::<f64>() * self.spread;
                (self.at + dt, NodeId(n + i))
            })
            .collect();
        arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut schedule = Schedule::new();
        for (t, v) in arrivals {
            let links: Vec<(NodeId, Weight)> =
                pick_distinct(&mut rng, &anchors_pool, self.attach_links)
                    .into_iter()
                    .map(|a| (a, self.link_weight))
                    .collect();
            schedule.push(t, TopologyEvent::NodeJoin { node: v, links });
        }
        schedule
    }
}

/// Waypoint mobility for one node: at each waypoint the node tears down its
/// current attachment links and attaches to fresh anchors, keeping its
/// protocol identity (name, hash, sloppy group) — the schedule-driven form
/// of the re-attachment trick in `examples/flat_name_mobility.rs`.
#[derive(Debug, Clone)]
pub struct Waypoints {
    /// The mobile node. May be a fresh id (`>= graph.node_count()`), in
    /// which case the first waypoint is a join.
    pub node: NodeId,
    /// Number of moves.
    pub moves: usize,
    /// Time of the first move.
    pub start: f64,
    /// Time between moves.
    pub period: f64,
    /// Anchors attached to at each waypoint.
    pub attach_links: usize,
    /// Weight of the attachment links.
    pub link_weight: Weight,
}

impl Waypoints {
    /// Compile to a schedule over the anchor population of `graph`.
    pub fn compile(&self, graph: &Graph, seed: u64) -> Schedule {
        let n = graph.node_count();
        let mut rng = rng_for_model(seed ^ self.node.0 as u64, STREAM_WAYPOINT);
        let pool: Vec<NodeId> = (0..n).map(NodeId).filter(|&v| v != self.node).collect();
        let mut schedule = Schedule::new();
        let mut current: Vec<NodeId> = if self.node.0 < n {
            graph
                .neighbors(self.node)
                .iter()
                .map(|nb| nb.node)
                .collect()
        } else {
            Vec::new()
        };
        let fresh_join = self.node.0 >= n;
        for m in 0..self.moves {
            let t = self.start + m as f64 * self.period;
            let next = pick_distinct(&mut rng, &pool, self.attach_links);
            if m == 0 && fresh_join {
                let links: Vec<(NodeId, Weight)> =
                    next.iter().map(|&a| (a, self.link_weight)).collect();
                schedule.push(
                    t,
                    TopologyEvent::NodeJoin {
                        node: self.node,
                        links,
                    },
                );
            } else {
                for &old in &current {
                    if !next.contains(&old) {
                        schedule.push(
                            t,
                            TopologyEvent::LinkDown {
                                u: self.node,
                                v: old,
                            },
                        );
                    }
                }
                for &a in &next {
                    if !current.contains(&a) {
                        schedule.push(
                            t,
                            TopologyEvent::LinkUp {
                                u: self.node,
                                v: a,
                                weight: self.link_weight,
                            },
                        );
                    }
                }
            }
            current = next;
        }
        schedule
    }
}

/// A seeded model RNG decorrelated from the per-purpose streams used by the
/// protocols themselves.
fn rng_for_model(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(disco_sim::seed_for(seed, stream, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    #[test]
    fn poisson_churn_is_deterministic_and_balanced() {
        let g = generators::gnm_connected(128, 512, 3);
        let model = PoissonChurn {
            leave_rate_per_node: 0.01,
            horizon: 200.0,
            ..PoissonChurn::default()
        };
        let a = model.compile(&g, 9);
        let b = model.compile(&g, 9);
        assert_eq!(a, b, "same seed must compile identically");
        let c = model.compile(&g, 10);
        assert_ne!(a, c, "different seed must differ");
        assert!(!a.is_empty());
        assert!(a.horizon() <= 200.0);
        // Leaves and joins roughly balance (downtime ≪ horizon).
        let leaves = a
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TopologyEvent::NodeLeave { .. }))
            .count();
        let joins = a
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TopologyEvent::NodeJoin { .. }))
            .count();
        assert!(leaves > 10, "expected real churn, got {leaves} leaves");
        assert!(joins > leaves / 2, "joins {joins} vs leaves {leaves}");
    }

    #[test]
    fn poisson_churn_never_leaves_dead_nodes_as_anchors() {
        let g = generators::gnm_connected(64, 256, 5);
        let model = PoissonChurn {
            leave_rate_per_node: 0.02,
            mean_downtime: 30.0,
            horizon: 300.0,
            ..PoissonChurn::default()
        };
        let s = model.compile(&g, 4);
        // Replay the liveness the schedule itself induces; every join must
        // attach only to nodes that are live at that instant.
        let mut live = vec![true; g.node_count()];
        for (_, ev) in s.events() {
            match ev {
                TopologyEvent::NodeLeave { node } => live[node.0] = false,
                TopologyEvent::NodeJoin { node, links } => {
                    for (a, _) in links {
                        assert!(live[a.0], "join of {node} attaches to dead anchor {a}");
                    }
                    live[node.0] = true;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn poisson_churn_respects_live_floor() {
        let g = generators::gnm_connected(40, 160, 7);
        let model = PoissonChurn {
            leave_rate_per_node: 0.5, // extreme: would empty the network
            mean_downtime: 1e6,       // nobody comes back
            horizon: 100.0,
            min_live_fraction: 0.75,
            ..PoissonChurn::default()
        };
        let s = model.compile(&g, 1);
        // Replay the schedule: the live count must never drop below the
        // floor (leaves beyond it are suppressed until someone rejoins).
        let mut live = 40i64;
        let mut min_live = live;
        for (_, ev) in s.events() {
            match ev {
                TopologyEvent::NodeLeave { .. } => live -= 1,
                TopologyEvent::NodeJoin { .. } => live += 1,
                _ => {}
            }
            min_live = min_live.min(live);
        }
        assert!(
            min_live >= 30,
            "live count fell to {min_live} (< 75% floor)"
        );
        assert!(
            min_live == 30,
            "extreme rate should drive the network to the floor, got {min_live}"
        );
    }

    #[test]
    fn link_failures_pair_down_with_up() {
        let g = generators::ring(32);
        let model = LinkFailures {
            mtbf: 100.0,
            mttr: 10.0,
            horizon: 300.0,
        };
        let s = model.compile(&g, 11);
        assert_eq!(s, model.compile(&g, 11));
        assert!(!s.is_empty());
        // Per edge: alternating down/up starting with down.
        let mut down: std::collections::HashMap<(usize, usize), bool> = Default::default();
        for (_, ev) in s.events() {
            match ev {
                TopologyEvent::LinkDown { u, v } => {
                    let was = down.insert((u.0, v.0), true);
                    assert_ne!(was, Some(true), "double failure of {u}-{v}");
                }
                TopologyEvent::LinkUp { u, v, weight } => {
                    assert_eq!(down.insert((u.0, v.0), false), Some(true));
                    assert_eq!(*weight, 1.0, "recovery must restore the old weight");
                }
                _ => unreachable!("only link events expected"),
            }
        }
    }

    #[test]
    fn flash_crowd_assigns_fresh_ids_in_order() {
        let g = generators::gnm_connected(50, 200, 13);
        let model = FlashCrowd {
            arrivals: 10,
            attach_links: 2,
            ..FlashCrowd::default()
        };
        let s = model.compile(&g, 2);
        assert_eq!(s.len(), 10);
        let mut seen = std::collections::HashSet::new();
        for (t, ev) in s.events() {
            let TopologyEvent::NodeJoin { node, links } = ev else {
                panic!("expected only joins");
            };
            assert!(node.0 >= 50 && node.0 < 60);
            assert!(seen.insert(node.0), "duplicate joiner {node}");
            assert_eq!(links.len(), 2);
            assert!(*t >= model.at && *t < model.at + model.spread);
        }
    }

    #[test]
    fn waypoints_rotate_attachment_links() {
        let g = generators::gnm_connected(60, 240, 17);
        let mobile = NodeId(60); // fresh id: first waypoint is a join
        let model = Waypoints {
            node: mobile,
            moves: 4,
            start: 5.0,
            period: 50.0,
            attach_links: 2,
            link_weight: 1.5,
        };
        let s = model.compile(&g, 3);
        // Replay: track the mobile node's links; after every waypoint it has
        // exactly `attach_links` links, all to anchors in the base graph.
        let mut links: std::collections::HashSet<usize> = Default::default();
        let mut moves_seen = 0;
        let mut last_links: Vec<usize> = Vec::new();
        for (t, ev) in s.events() {
            match ev {
                TopologyEvent::NodeJoin { node, links: l } => {
                    assert_eq!(*node, mobile);
                    for (a, w) in l {
                        assert!(a.0 < 60);
                        assert_eq!(*w, 1.5);
                        links.insert(a.0);
                    }
                }
                TopologyEvent::LinkDown { u, v } => {
                    assert_eq!(*u, mobile);
                    assert!(links.remove(&v.0));
                }
                TopologyEvent::LinkUp { u, v, weight } => {
                    assert_eq!(*u, mobile);
                    assert_eq!(*weight, 1.5);
                    assert!(links.insert(v.0));
                }
                _ => unreachable!(),
            }
            let expected_move = ((t - 5.0) / 50.0).round() as usize;
            if expected_move != moves_seen {
                moves_seen = expected_move;
            }
            last_links = links.iter().copied().collect();
        }
        assert_eq!(last_links.len(), 2);
        assert!(moves_seen >= 3, "expected several distinct waypoints");
    }
}
