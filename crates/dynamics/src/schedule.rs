//! Deterministic topology-event schedules.

use disco_sim::{
    Engine, EventQueue, LookaheadViolation, Protocol, Recorder, ShardProtocol, ShardedEngine,
    SimTime, TopologyEvent,
};

/// A time-ordered stream of topology events, ready to be injected into an
/// [`Engine`]. Events at equal timestamps keep their insertion order (the
/// engine's event queue is FIFO for equal times), so a schedule applied to
/// the same engine state always replays identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    events: Vec<(SimTime, TopologyEvent)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schedule from events in arbitrary order (stable-sorted by
    /// time: equal-timestamp events keep their input order). O(k log k) —
    /// use this instead of repeated [`Schedule::push`] for bulk streams
    /// that interleave in time.
    pub fn from_events(mut events: Vec<(SimTime, TopologyEvent)>) -> Schedule {
        for (t, _) in &events {
            assert!(
                t.is_finite() && *t >= 0.0,
                "event time must be finite and non-negative"
            );
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Schedule { events }
    }

    /// Append `event` at absolute simulation time `at`.
    pub fn push(&mut self, at: SimTime, event: TopologyEvent) {
        assert!(
            at.is_finite() && at >= 0.0,
            "event time must be finite and non-negative"
        );
        self.events.push((at, event));
        // Keep sorted: models emit in time order, so this is O(1) amortized;
        // occasional out-of-order pushes pay an insertion. Bulk out-of-order
        // producers should use [`Schedule::from_events`] instead.
        let mut i = self.events.len() - 1;
        while i > 0 && self.events[i - 1].0 > self.events[i].0 {
            self.events.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Merge another schedule into this one, preserving time order (ties:
    /// `self`'s events first).
    pub fn merge(self, other: Schedule) -> Schedule {
        let mut events = self.events;
        events.extend(other.events);
        // Both inputs are sorted, so a stable sort is effectively a merge
        // pass and keeps `self`'s events first on ties.
        Schedule::from_events(events)
    }

    /// The events in time order.
    pub fn events(&self) -> &[(SimTime, TopologyEvent)] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the last event (0 for an empty schedule).
    pub fn horizon(&self) -> SimTime {
        self.events.last().map_or(0.0, |(t, _)| *t)
    }

    /// Shift every event later by `offset` (e.g. to start churn after the
    /// initial convergence phase).
    pub fn shifted(mut self, offset: SimTime) -> Schedule {
        for (t, _) in &mut self.events {
            *t += offset;
        }
        self
    }

    /// Schedule every event into `engine` (whatever its event-queue
    /// implementation), offset so the first event fires no earlier than
    /// the engine's current time.
    pub fn apply_to<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
        &self,
        engine: &mut Engine<'_, P, Q, R>,
    ) {
        let now = engine.now();
        for (t, ev) in &self.events {
            engine.schedule_topology(now + t, ev.clone());
        }
    }

    /// [`Schedule::apply_to`] for a sharded engine. Events are injected in
    /// the same order, so a sharded run replays the schedule with the same
    /// logical event keys as a sequential one. Fails on the first event
    /// that would introduce a link faster than the conservative lookahead
    /// window (the same check applies at every shard count, including 1).
    pub fn apply_to_sharded<P, R>(
        &self,
        engine: &mut ShardedEngine<P, R>,
    ) -> Result<(), LookaheadViolation>
    where
        P: ShardProtocol + 'static,
        R: Recorder + Send + 'static,
    {
        let now = engine.now();
        for (t, ev) in &self.events {
            engine.schedule_topology(now + t, ev.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::NodeId;

    fn leave(n: usize) -> TopologyEvent {
        TopologyEvent::NodeLeave { node: NodeId(n) }
    }

    #[test]
    fn push_keeps_time_order_with_stable_ties() {
        let mut s = Schedule::new();
        s.push(2.0, leave(2));
        s.push(1.0, leave(1));
        s.push(2.0, leave(3));
        s.push(0.5, leave(0));
        let order: Vec<(f64, usize)> = s
            .events()
            .iter()
            .map(|(t, e)| match e {
                TopologyEvent::NodeLeave { node } => (*t, node.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(0.5, 0), (1.0, 1), (2.0, 2), (2.0, 3)]);
        assert_eq!(s.horizon(), 2.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn merge_and_shift() {
        let mut a = Schedule::new();
        a.push(1.0, leave(1));
        let mut b = Schedule::new();
        b.push(0.5, leave(2));
        let m = a.merge(b).shifted(10.0);
        assert_eq!(m.events()[0].0, 10.5);
        assert_eq!(m.events()[1].0, 11.0);
        assert_eq!(m.horizon(), 11.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_times() {
        let mut s = Schedule::new();
        s.push(-1.0, leave(0));
    }
}
