//! High-churn regression for the event queue's dead-entry accounting with
//! the *real* protocol: under a dense Poisson churn schedule, every timer
//! of a departed incarnation must be reclaimed eagerly (counted into the
//! timer wheel's dead gauge at leave time) — the engine's stale-timer
//! defense-in-depth path must never fire, and the gauge must drain to
//! zero by quiescence.

use disco_core::config::DiscoConfig;
use disco_core::landmark::select_landmarks;
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_dynamics::models::PoissonChurn;
use disco_graph::{generators, NodeId};
use disco_sim::Engine;
use std::collections::HashSet;

#[test]
fn high_churn_never_pops_epoch_dead_timers() {
    let n = 128;
    let seed = 11;
    let graph = generators::gnm_average_degree(n, 8.0, seed);
    let cfg = DiscoConfig::seeded(seed).with_forgetful_dynamic(true);
    let landmarks = select_landmarks(n, &cfg);
    let lm_set: HashSet<NodeId> = landmarks.iter().copied().collect();
    let mut engine = Engine::new(&graph, |v| {
        DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
    });
    assert!(engine.run().converged, "initial convergence");

    // An order of magnitude more churn than the recorded baselines: every
    // node leaves ~once per 250 time units, so hundreds of incarnations
    // die with timers pending (repair debounce, batch flushes, phase
    // timers all outlive a short incarnation).
    let model = PoissonChurn {
        leave_rate_per_node: 0.004,
        mean_downtime: 60.0,
        horizon: 500.0,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, seed);
    schedule.apply_to(&mut engine);

    let mut max_dead = 0usize;
    while !engine.run_to(engine.now() + 50.0) {
        let (_, dead) = engine.queue_stats();
        max_dead = max_dead.max(dead);
        assert_eq!(
            engine.stale_timer_pops(),
            0,
            "an epoch-dead timer survived to its pop time at t={}",
            engine.now()
        );
        if engine.now() > 4000.0 {
            panic!("churn run did not quiesce");
        }
    }
    assert!(engine.topology_events() > 200, "expected heavy churn");
    assert!(
        max_dead > 0,
        "eager cancellation should have left (counted) residue in the wheel"
    );
    assert_eq!(engine.stale_timer_pops(), 0);
    assert_eq!(
        engine.queue_stats(),
        (0, 0),
        "gauge must drain to zero at quiescence"
    );
}
