//! Deterministic sampling of nodes and source–destination pairs.
//!
//! "In many cases, for large topologies, we sample a fraction of nodes or
//! source-destination pairs to compute state, stretch, and congestion"
//! (paper §5.1). Samples are deterministic in the seed so experiments are
//! reproducible, and pairs are grouped by source so the routers' per-source
//! shortest-path caches are effective.

use disco_graph::NodeId;
use disco_sim::rng::rng_for;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample `count` distinct nodes of an `n`-node network (all nodes if
/// `count ≥ n`), deterministically in `seed`.
pub fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    if count >= n {
        return (0..n).map(NodeId).collect();
    }
    let mut rng = rng_for(seed, 0xA0, 0);
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(&mut rng);
    let mut picked: Vec<NodeId> = all[..count].iter().copied().map(NodeId).collect();
    picked.sort();
    picked
}

/// Sample `count` ordered source–destination pairs (`s ≠ t`) uniformly at
/// random, deterministically in `seed`.
pub fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2);
    let mut rng = rng_for(seed, 0xA1, 0);
    (0..count)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            (NodeId(s), NodeId(t))
        })
        .collect()
}

/// Sample pairs grouped by source: `sources` distinct sources, each with
/// `dests_per_source` distinct destinations. Grouping keeps the per-source
/// Dijkstra caches of the routers hot, which matters on 16k-node graphs.
pub fn sample_pairs_grouped(
    n: usize,
    sources: usize,
    dests_per_source: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2);
    let srcs = sample_nodes(n, sources.min(n), seed ^ 0x51);
    let mut rng = rng_for(seed, 0xA2, 1);
    let mut out = Vec::with_capacity(srcs.len() * dests_per_source);
    for &s in &srcs {
        let mut seen = std::collections::HashSet::new();
        let want = dests_per_source.min(n - 1);
        while seen.len() < want {
            let t = NodeId(rng.gen_range(0..n));
            if t != s && seen.insert(t) {
                out.push((s, t));
            }
        }
    }
    out
}

/// One random destination per node (the paper's congestion workload:
/// "we have each node route to a random destination").
pub fn one_destination_per_node(n: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2);
    let mut rng = rng_for(seed, 0xA3, 2);
    (0..n)
        .map(|s| {
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            (NodeId(s), NodeId(t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_nodes_distinct_and_deterministic() {
        let a = sample_nodes(1000, 50, 7);
        let b = sample_nodes(1000, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 50);
        assert_eq!(sample_nodes(10, 100, 7).len(), 10);
    }

    #[test]
    fn sample_pairs_never_self_pairs() {
        for (s, t) in sample_pairs(50, 500, 3) {
            assert_ne!(s, t);
            assert!(s.0 < 50 && t.0 < 50);
        }
    }

    #[test]
    fn grouped_pairs_have_requested_shape() {
        let pairs = sample_pairs_grouped(200, 10, 20, 5);
        assert_eq!(pairs.len(), 200);
        let sources: std::collections::HashSet<_> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(sources.len(), 10);
        for (s, t) in pairs {
            assert_ne!(s, t);
        }
    }

    #[test]
    fn one_destination_per_node_covers_all_sources() {
        let pairs = one_destination_per_node(64, 9);
        assert_eq!(pairs.len(), 64);
        for (i, (s, t)) in pairs.iter().enumerate() {
            assert_eq!(s.0, i);
            assert_ne!(s, t);
        }
    }
}
