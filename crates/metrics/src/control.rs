//! Per-component **control-plane** byte accounting for the dynamic
//! protocol — the companion to [`crate::state`]'s *data-plane* entry
//! counts, used by `exp_memory`.
//!
//! The paper's `Θ(√(n ln n))` bound speaks about routing *entries*;
//! compact-routing practice lives or dies on the constant factor per entry
//! (Krioukov et al., *On Compact Routing for the Internet*). After PR 3
//! bounded the Adj-RIB-In, resident memory was dominated by *non-RIB*
//! control state: the materialized Loc-RIB best map, the path arena's
//! intern map, and the dissemination bookkeeping. This module gives those
//! components names and numbers:
//!
//! * [`ControlBytes`] — one node's control state split into Adj-RIB-In
//!   proper, the Loc-RIB view, and dissemination/resolution bookkeeping;
//! * [`ControlAccounting`] — the per-node aggregator `exp_memory` folds
//!   the grid legs through;
//! * [`swiss_table_bytes`] and the `legacy_*` models — the byte cost the
//!   *pre-view* layouts (PR 3: `FxHashMap<NodeId, RouteEntry>` Loc-RIB,
//!   `FxHashMap<(u32, u32), u32>` arena intern map, `std::collections`
//!   dissemination maps) would spend on the *same* live contents, so a
//!   leg can report its before/after reduction from a single run.

/// Byte cost of a hashbrown (SwissTable) map holding `len` entries of
/// `payload` bytes each: buckets are the next power of two holding `len`
/// at 7/8 load, each bucket paying one control byte on top of the payload.
/// This is the allocation model behind both `std::collections::HashMap`
/// and the `FxHashMap` alias, independent of hasher.
pub fn swiss_table_bytes(len: usize, payload: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let buckets = (len * 8).div_ceil(7).next_power_of_two();
    buckets * (payload + 1)
}

/// One node's control-plane bytes, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControlBytes {
    /// Adj-RIB-In proper: per-neighbor candidate slabs + the destination
    /// interner.
    pub rib: usize,
    /// The Loc-RIB view: selection columns + ordered mirrors.
    pub loc_rib: usize,
    /// Dissemination bookkeeping: sloppy-group address store, overlay
    /// slots, forwarded-announcement dedup. (The resolution shard — §4.3
    /// application state — is deliberately excluded on both the measured
    /// and the legacy side; its layout is entry-count-driven either way.)
    pub dissemination: usize,
}

impl ControlBytes {
    /// Everything that is not the Adj-RIB-In — the quantity this PR's
    /// acceptance gate cuts ≥1.5× (the arena intern table, the fourth
    /// non-RIB component, is process-wide and accounted separately).
    pub fn non_rib(&self) -> usize {
        self.loc_rib + self.dissemination
    }

    /// Component-wise sum.
    pub fn total(&self) -> usize {
        self.rib + self.loc_rib + self.dissemination
    }
}

/// Live contents of one node's control structures, from which both the
/// current and the legacy (pre-view) byte costs are derived.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlCounts {
    /// Destinations with a selected route (Loc-RIB occupancy).
    pub selected: usize,
    /// Entries across the ordered `locals`/`waiting`/`lm_best` mirrors
    /// (present in both layouts; 16-byte keys before, 12-byte now).
    pub mirror_entries: usize,
    /// Sloppy-group addresses stored.
    pub group_addresses: usize,
    /// Overlay neighbor slots actually filled (the legacy `HashMap` held
    /// only those; the measured side's slot vector is priced at capacity).
    pub overlay_slots: usize,
    /// Forwarded-announcement dedup entries.
    pub forwarded: usize,
}

/// Sizes of the PR 3-era per-entry payloads, used by the legacy model.
/// `RouteEntry` = dist f64 + next_hop usize + lm-dist f64 + path id u32 +
/// flag bool, padded to 32 B; a `WireAddress` is two `NodeId`s + a path id,
/// padded to 24 B.
const LEGACY_ROUTE_ENTRY: usize = 32;
const WIRE_ADDRESS: usize = 24;

/// Bytes the pre-view Loc-RIB (`best: FxHashMap<NodeId, RouteEntry>`)
/// would spend on `selected` destinations, plus the same ordered mirrors
/// at their former 16-byte `(dist, NodeId)` keys (~28 B amortized in
/// B-tree nodes, vs 24 B with today's compact 12-byte keys).
pub fn legacy_loc_rib_bytes(counts: &ControlCounts) -> usize {
    swiss_table_bytes(counts.selected, 8 + LEGACY_ROUTE_ENTRY) + counts.mirror_entries * 28
}

/// Bytes the pre-compaction dissemination bookkeeping would spend on the
/// same contents: `HashMap<(NodeId, bool), bool>` forwarded entries
/// (17 B payload), `HashMap<NodeId, WireAddress>` group store, and
/// `HashMap<usize, (NameHash, WireAddress)>` overlay slots.
pub fn legacy_dissemination_bytes(counts: &ControlCounts) -> usize {
    swiss_table_bytes(counts.forwarded, 17)
        + swiss_table_bytes(counts.group_addresses, 8 + WIRE_ADDRESS)
        + swiss_table_bytes(counts.overlay_slots, 8 + 8 + WIRE_ADDRESS)
}

/// Bytes the pre-PR `FxHashMap<(u32, u32), u32>` arena intern map would
/// spend given `peak_cells` interned cells at the occupancy peak (12 B
/// payload per cell), for comparison against
/// `PathArenaStats::intern_bytes`. Priced on the *peak*, like the
/// measured side: neither a SwissTable nor the open-addressed slot array
/// shrinks on its own, so resident size is a function of peak occupancy
/// on both sides.
pub fn legacy_intern_bytes(peak_cells: usize) -> usize {
    swiss_table_bytes(peak_cells, 12)
}

/// Aggregates per-node [`ControlBytes`] (measured) and the legacy model's
/// equivalents over the live nodes of one experiment leg.
#[derive(Debug, Clone, Default)]
pub struct ControlAccounting {
    nodes: usize,
    measured: ControlBytes,
    legacy: ControlBytes,
}

impl ControlAccounting {
    /// Fold in one node: its measured component bytes and the live counts
    /// the legacy model is priced on.
    pub fn push(&mut self, measured: ControlBytes, counts: &ControlCounts) {
        self.nodes += 1;
        self.measured.rib += measured.rib;
        self.measured.loc_rib += measured.loc_rib;
        self.measured.dissemination += measured.dissemination;
        self.legacy.rib += measured.rib; // the RIB layout is unchanged
        self.legacy.loc_rib += legacy_loc_rib_bytes(counts);
        self.legacy.dissemination += legacy_dissemination_bytes(counts);
    }

    /// Nodes folded in.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Mean measured bytes per node, by component.
    pub fn mean(&self) -> (f64, f64, f64) {
        let n = self.nodes.max(1) as f64;
        (
            self.measured.rib as f64 / n,
            self.measured.loc_rib as f64 / n,
            self.measured.dissemination as f64 / n,
        )
    }

    /// Mean *legacy-model* bytes per node for the non-RIB components
    /// (loc-rib, dissemination) on the same contents.
    pub fn legacy_mean(&self) -> (f64, f64) {
        let n = self.nodes.max(1) as f64;
        (
            self.legacy.loc_rib as f64 / n,
            self.legacy.dissemination as f64 / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swiss_model_matches_power_of_two_growth() {
        assert_eq!(swiss_table_bytes(0, 12), 0);
        // 7 entries fit 8 buckets at 7/8; 8 entries need 16.
        assert_eq!(swiss_table_bytes(7, 12), 8 * 13);
        assert_eq!(swiss_table_bytes(8, 12), 16 * 13);
        assert!(swiss_table_bytes(1000, 12) >= 1024 * 13);
    }

    #[test]
    fn legacy_models_dominate_compact_layouts() {
        // The open-addressed intern table costs ≤ ~5.4 B per live cell;
        // the legacy map ≥ 13 B.
        for cells in [100, 10_000, 1_000_000] {
            assert!(legacy_intern_bytes(cells) > cells * 13);
        }
        // A selection column costs ~25 B per dest; the legacy map ≥ 40 B
        // plus capacity slack.
        let counts = ControlCounts {
            selected: 1000,
            ..Default::default()
        };
        assert!(legacy_loc_rib_bytes(&counts) > 1000 * 40);
    }

    #[test]
    fn accounting_aggregates_and_reduces() {
        let mut acc = ControlAccounting::default();
        for _ in 0..4 {
            acc.push(
                ControlBytes {
                    rib: 1000,
                    loc_rib: 300,
                    dissemination: 200,
                },
                &ControlCounts {
                    selected: 50,
                    mirror_entries: 60,
                    group_addresses: 20,
                    overlay_slots: 3,
                    forwarded: 40,
                },
            );
        }
        assert_eq!(acc.nodes(), 4);
        let (rib, loc, dis) = acc.mean();
        assert_eq!((rib, loc, dis), (1000.0, 300.0, 200.0));
        let (lloc, ldis) = acc.legacy_mean();
        assert!(lloc > loc && ldis > dis, "legacy must cost more");
        assert!(
            acc.legacy_mean().0 + acc.legacy_mean().1 > loc + dis,
            "legacy non-RIB components must sum higher"
        );
    }
}
