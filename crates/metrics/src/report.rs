//! Plain-text rendering of experiment results in the shape the paper
//! reports them (CDF series and tables), plus CSV output for plotting.

use crate::cdf::Cdf;
use std::fmt::Write as _;

/// Render a set of named CDFs as aligned columns of `(value, fraction)`
/// series — the data behind a paper figure.
pub fn render_cdf_series(title: &str, series: &[(&str, &Cdf)], points: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "# columns: fraction, then one value column per protocol"
    );
    let mut header = String::from("fraction");
    for (name, _) in series {
        header.push_str(&format!(", {name}"));
    }
    let _ = writeln!(out, "{header}");
    for i in 1..=points {
        let p = i as f64 / points as f64;
        let mut row = format!("{p:.4}");
        for (_, cdf) in series {
            row.push_str(&format!(", {:.4}", cdf.percentile(p)));
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Render summary statistics (mean / median / p95 / max) for named CDFs.
pub fn render_summary(title: &str, series: &[(&str, &Cdf)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "protocol", "mean", "median", "p95", "max"
    );
    for (name, cdf) in series {
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            name,
            cdf.mean(),
            cdf.median(),
            cdf.percentile(0.95),
            cdf.max()
        );
    }
    out
}

/// Render a generic table with a header row.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let mut header = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header.push_str(&format!("{h:<width$}  ", width = w));
    }
    let _ = writeln!(out, "{}", header.trim_end());
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<width$}  ", width = w));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Format a float with three decimals (the precision the paper uses in its
/// tables).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_series_has_requested_points() {
        let c = Cdf::from_counts(0..100usize);
        let d = Cdf::from_counts(100..200usize);
        let s = render_cdf_series("demo", &[("a", &c), ("b", &d)], 10);
        assert!(s.contains("# demo"));
        // Header + comment lines + 10 data rows.
        assert_eq!(s.lines().filter(|l| !l.starts_with('#')).count(), 11);
        assert!(s.contains("fraction, a, b"));
    }

    #[test]
    fn summary_contains_every_protocol() {
        let c = Cdf::from_counts(1..10usize);
        let s = render_summary("stats", &[("disco", &c), ("s4", &c)]);
        assert!(s.contains("disco"));
        assert!(s.contains("s4"));
        assert!(s.contains("mean"));
    }

    #[test]
    fn table_alignment_includes_all_rows() {
        let rows = vec![
            vec!["Disco".to_string(), fmt3(1.153)],
            vec!["S4".to_string(), fmt3(2.0)],
        ];
        let t = render_table("fig", &["protocol", "stretch"], &rows);
        assert!(t.contains("Disco"));
        assert!(t.contains("1.153"));
        assert_eq!(t.lines().count(), 4);
    }
}
