//! Per-node routing-state measurement (paper §5.2 "State", Fig. 2, Fig. 4/5
//! left, Fig. 7, Fig. 9 right).
//!
//! "We measure data plane state for the protocols. This includes everything
//! necessary to forward a packet after the protocol has converged:
//! forwarding entries for landmarks and vicinities, name resolution entries
//! on the landmark database, forwarding label mappings for our compact
//! source route format in NDDisco, and the address mappings for Disco."
//!
//! Entries are counted per node for each protocol; Table 7's byte figures
//! additionally weight each entry with its wire size under IPv4-sized or
//! IPv6-sized node identifiers plus the (exact, per-address) compact
//! explicit-route bytes.

use crate::cdf::Cdf;
use disco_baselines::{S4State, ShortestPathState, VrrState};
use disco_core::address::IdentifierSize;
use disco_core::static_state::DiscoState;
use disco_graph::{Graph, NodeId};

/// Which protocol's state to account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateProtocol {
    /// Full name-independent Disco.
    Disco,
    /// Name-dependent NDDisco (landmarks + vicinity + labels + resolution).
    NdDisco,
    /// S4 (landmarks + clusters + directory).
    S4,
    /// Virtual Ring Routing.
    Vrr,
    /// Shortest-path / path-vector routing.
    PathVector,
}

/// Per-node entry counts for one protocol, plus derived statistics.
#[derive(Debug, Clone)]
pub struct StateReport {
    /// Which protocol was measured.
    pub protocol: StateProtocol,
    /// Entry count per measured node.
    pub entries: Vec<usize>,
}

impl StateReport {
    /// Mean entries per node.
    pub fn mean(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.entries.iter().sum::<usize>() as f64 / self.entries.len() as f64
        }
    }

    /// Maximum entries at any node.
    pub fn max(&self) -> usize {
        self.entries.iter().copied().max().unwrap_or(0)
    }

    /// CDF over nodes.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_counts(self.entries.iter().copied())
    }
}

/// Disco per-node entries (full name-independent protocol) for the given
/// nodes (pass all nodes or a sample).
pub fn disco_entries(graph: &Graph, state: &DiscoState, nodes: &[NodeId]) -> StateReport {
    StateReport {
        protocol: StateProtocol::Disco,
        entries: nodes
            .iter()
            .map(|&v| state.state_breakdown(graph, v).disco_total())
            .collect(),
    }
}

/// NDDisco per-node entries (name-dependent subset of Disco's state).
pub fn nddisco_entries(graph: &Graph, state: &DiscoState, nodes: &[NodeId]) -> StateReport {
    StateReport {
        protocol: StateProtocol::NdDisco,
        entries: nodes
            .iter()
            .map(|&v| state.state_breakdown(graph, v).nddisco_total())
            .collect(),
    }
}

/// S4 per-node entries.
pub fn s4_entries(state: &S4State, nodes: &[NodeId]) -> StateReport {
    StateReport {
        protocol: StateProtocol::S4,
        entries: nodes.iter().map(|&v| state.state_entries(v)).collect(),
    }
}

/// VRR per-node entries.
pub fn vrr_entries(state: &VrrState, nodes: &[NodeId]) -> StateReport {
    StateReport {
        protocol: StateProtocol::Vrr,
        entries: nodes.iter().map(|&v| state.state_entries(v)).collect(),
    }
}

/// Shortest-path routing per-node entries (`n − 1` everywhere).
pub fn path_vector_entries(state: &ShortestPathState, nodes: &[NodeId]) -> StateReport {
    StateReport {
        protocol: StateProtocol::PathVector,
        entries: nodes.iter().map(|&v| state.state_entries(v)).collect(),
    }
}

/// Byte-accounted state (the paper's Fig. 7 table): per measured node, the
/// size of its routing state in bytes given the identifier size.
///
/// Per-entry costs:
/// * landmark / vicinity / cluster entry: one node identifier,
/// * compact-label mapping: 1 byte,
/// * name-resolution / directory / sloppy-group address entry: two node
///   identifiers (name + landmark) plus that node's exact compact
///   explicit-route bytes.
#[derive(Debug, Clone)]
pub struct ByteReport {
    /// Which protocol was measured.
    pub protocol: StateProtocol,
    /// Bytes of state per measured node.
    pub bytes: Vec<f64>,
}

impl ByteReport {
    /// Mean bytes per node.
    pub fn mean(&self) -> f64 {
        if self.bytes.is_empty() {
            0.0
        } else {
            self.bytes.iter().sum::<f64>() / self.bytes.len() as f64
        }
    }

    /// Maximum bytes at any node.
    pub fn max(&self) -> f64 {
        self.bytes.iter().copied().fold(0.0, f64::max)
    }
}

/// Byte-accounted Disco / NDDisco state.
pub fn disco_bytes(
    graph: &Graph,
    state: &DiscoState,
    nodes: &[NodeId],
    id_size: IdentifierSize,
    name_independent: bool,
) -> ByteReport {
    let id = id_size.bytes() as f64;
    let bytes = nodes
        .iter()
        .map(|&v| {
            let b = state.state_breakdown(graph, v);
            let mut total =
                (b.landmark_entries + b.vicinity_entries) as f64 * id + b.label_entries as f64;
            // Resolution entries stored at landmarks: exact per-address cost.
            if state.is_landmark(v) {
                for (w, addr) in state.addresses().iter().enumerate() {
                    if state
                        .resolution_ring()
                        .owner_of_name(state.name_of(NodeId(w)))
                        == v
                    {
                        total += 2.0 * id + addr.route_bytes(graph) as f64;
                    }
                }
            }
            if name_independent {
                // Sloppy-group address store.
                for &w in &state.grouping().perceived_group(v) {
                    if w != v && state.grouping().considers_member(w, v) {
                        total += 2.0 * id + state.address_of(w).route_bytes(graph) as f64;
                    }
                }
                total += b.overlay_entries as f64 * (2.0 * id);
            }
            total
        })
        .collect();
    ByteReport {
        protocol: if name_independent {
            StateProtocol::Disco
        } else {
            StateProtocol::NdDisco
        },
        bytes,
    }
}

/// Byte-accounted S4 state.
pub fn s4_bytes(
    graph: &Graph,
    disco_state: &DiscoState,
    s4: &S4State,
    nodes: &[NodeId],
    id_size: IdentifierSize,
) -> ByteReport {
    let id = id_size.bytes() as f64;
    let bytes = nodes
        .iter()
        .map(|&v| {
            let mut total = (s4.landmarks().len() + s4.cluster(v).len()) as f64 * id;
            if s4.is_landmark(v) {
                // Directory entries: name + landmark identifier each; S4
                // stores no explicit routes, so no route bytes. Reuse the
                // Disco addresses only for counting which nodes hash here.
                total += s4.directory_entries_at(v) as f64 * 2.0 * id;
            }
            let _ = disco_state;
            let _ = graph;
            total
        })
        .collect();
    ByteReport {
        protocol: StateProtocol::S4,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_core::config::DiscoConfig;
    use disco_graph::generators;

    fn setup(n: usize, seed: u64) -> (Graph, DiscoState, S4State) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed);
        let d = DiscoState::build(&g, &cfg);
        let s = S4State::build(&g, &cfg);
        (g, d, s)
    }

    #[test]
    fn disco_state_is_balanced_and_bounded() {
        let (g, d, _) = setup(256, 1);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let disco = disco_entries(&g, &d, &nodes);
        let nd = nddisco_entries(&g, &d, &nodes);
        assert_eq!(disco.entries.len(), 256);
        // NDDisco ≤ Disco everywhere.
        for (a, b) in nd.entries.iter().zip(&disco.entries) {
            assert!(a <= b);
        }
        // Balance: max within a small factor of the mean.
        assert!((disco.max() as f64) < 3.0 * disco.mean());
    }

    #[test]
    fn path_vector_dwarfs_disco_at_scale() {
        let (g, d, _) = setup(512, 2);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let pv = path_vector_entries(&ShortestPathState::build(&g), &nodes);
        let disco = disco_entries(&g, &d, &nodes);
        assert_eq!(pv.mean(), 511.0);
        assert!(disco.mean() < pv.mean());
    }

    #[test]
    fn s4_state_is_more_unbalanced_than_nddisco_on_powerlaw() {
        // The defining observation of Fig. 2: NDDisco's state distribution
        // is tight (hard vicinity cap) while S4's has a heavy tail on
        // Internet-like topologies. At the full 16k/192k scale S4's worst
        // node dwarfs NDDisco's; at unit-test scale we assert the
        // imbalance ordering (max/mean ratio), which is already visible.
        let n = 2048;
        let g = generators::internet_router_like(n, 7);
        let cfg = DiscoConfig::seeded(7);
        let d = DiscoState::build(&g, &cfg);
        let s = S4State::build(&g, &cfg);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let nd = nddisco_entries(&g, &d, &nodes);
        let s4r = s4_entries(&s, &nodes);
        let nd_imbalance = nd.max() as f64 / nd.mean();
        let s4_imbalance = s4r.max() as f64 / s4r.mean();
        assert!(
            s4_imbalance > nd_imbalance,
            "S4 imbalance {s4_imbalance:.2} vs NDDisco {nd_imbalance:.2}"
        );
        // On the adversarial tree the effect is extreme even at small n
        // (covered in disco-baselines::s4 tests as well).
        let tree = generators::s4_adversarial_tree(32);
        let s_tree = S4State::build(&tree, &cfg);
        let d_tree = DiscoState::build(&tree, &cfg);
        let tree_nodes: Vec<NodeId> = tree.nodes().collect();
        let s4_tree = s4_entries(&s_tree, &tree_nodes);
        let nd_tree = nddisco_entries(&tree, &d_tree, &tree_nodes);
        assert!(s4_tree.max() > 2 * nd_tree.max());
    }

    #[test]
    fn byte_reports_scale_with_identifier_size() {
        let (g, d, s) = setup(200, 3);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let v4 = disco_bytes(&g, &d, &nodes, IdentifierSize::V4, true);
        let v6 = disco_bytes(&g, &d, &nodes, IdentifierSize::V6, true);
        assert!(v6.mean() > v4.mean() * 2.0);
        assert!(v6.max() >= v6.mean());
        let s4b = s4_bytes(&g, &d, &s, &nodes, IdentifierSize::V4);
        assert!(s4b.mean() > 0.0);
        let nd = disco_bytes(&g, &d, &nodes, IdentifierSize::V4, false);
        assert!(nd.mean() < v4.mean());
    }

    #[test]
    fn cdf_over_nodes_has_all_samples() {
        let (g, d, _) = setup(128, 4);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let rep = disco_entries(&g, &d, &nodes);
        assert_eq!(rep.cdf().len(), 128);
        assert!(rep.cdf().max() >= rep.cdf().mean());
    }
}
