//! Congestion measurement (paper §5.2 "Congestion", Fig. 4/5 right,
//! Fig. 10).
//!
//! "To compute congestion, we have each node route to a random destination
//! and count the number of times each edge is used." The result is a CDF
//! over edges of the number of paths crossing each edge; compact routing
//! could in principle concentrate load near landmarks, and the experiment
//! shows it mostly does not.

use crate::cdf::Cdf;
use disco_baselines::{S4Router, ShortestPathRouter, VrrRouter};
use disco_core::routing::DiscoRouter;
use disco_graph::{Graph, NodeId};

/// Per-edge usage counts for one protocol's routes.
#[derive(Debug, Clone)]
pub struct CongestionReport {
    /// Number of paths using each edge, indexed by `EdgeId`.
    pub edge_usage: Vec<u64>,
}

impl CongestionReport {
    /// CDF over edges of the usage counts.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_counts(self.edge_usage.iter().map(|&u| u as usize))
    }

    /// The most used edge.
    pub fn max(&self) -> u64 {
        self.edge_usage.iter().copied().max().unwrap_or(0)
    }

    /// Mean usage over edges.
    pub fn mean(&self) -> f64 {
        if self.edge_usage.is_empty() {
            0.0
        } else {
            self.edge_usage.iter().sum::<u64>() as f64 / self.edge_usage.len() as f64
        }
    }

    /// Fraction of edges used more than `threshold` times.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.edge_usage.is_empty() {
            return 0.0;
        }
        self.edge_usage.iter().filter(|&&u| u > threshold).count() as f64
            / self.edge_usage.len() as f64
    }
}

/// Accumulate edge usage for a set of routes produced by `route_nodes`.
pub fn measure<F>(graph: &Graph, pairs: &[(NodeId, NodeId)], mut route_nodes: F) -> CongestionReport
where
    F: FnMut(NodeId, NodeId) -> Vec<NodeId>,
{
    // Sized by edge *slots*: after runtime edge removals, live edge ids
    // can exceed the live-edge count.
    let mut edge_usage = vec![0u64; graph.edge_slots()];
    for &(s, t) in pairs {
        let nodes = route_nodes(s, t);
        for w in nodes.windows(2) {
            let edge = graph
                .find_edge(w[0], w[1])
                .unwrap_or_else(|| panic!("route uses non-edge {}-{}", w[0], w[1]));
            edge_usage[edge.index()] += 1;
        }
    }
    CongestionReport { edge_usage }
}

/// Congestion of Disco's first-packet routes.
pub fn disco_congestion(
    graph: &Graph,
    router: &DiscoRouter<'_>,
    pairs: &[(NodeId, NodeId)],
) -> CongestionReport {
    measure(graph, pairs, |s, t| router.route_later_packet(s, t).nodes)
}

/// Congestion of S4's later-packet routes.
pub fn s4_congestion(
    graph: &Graph,
    router: &S4Router<'_>,
    pairs: &[(NodeId, NodeId)],
) -> CongestionReport {
    measure(graph, pairs, |s, t| router.route_later_packet(s, t).0)
}

/// Congestion of VRR's greedy routes.
pub fn vrr_congestion(
    graph: &Graph,
    router: &VrrRouter<'_>,
    pairs: &[(NodeId, NodeId)],
) -> CongestionReport {
    measure(graph, pairs, |s, t| router.route(s, t).0)
}

/// Congestion of shortest-path routing.
pub fn shortest_path_congestion(
    graph: &Graph,
    router: &ShortestPathRouter<'_>,
    pairs: &[(NodeId, NodeId)],
) -> CongestionReport {
    measure(graph, pairs, |s, t| router.route(s, t).nodes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::one_destination_per_node;
    use disco_baselines::{S4State, VrrState};
    use disco_core::config::DiscoConfig;
    use disco_core::static_state::DiscoState;
    use disco_graph::generators;

    #[test]
    fn total_usage_equals_total_hops() {
        let g = generators::gnm_average_degree(128, 8.0, 1);
        let router = ShortestPathRouter::new(&g);
        let pairs = one_destination_per_node(128, 1);
        let rep = shortest_path_congestion(&g, &router, &pairs);
        let total_usage: u64 = rep.edge_usage.iter().sum();
        let total_hops: usize = pairs
            .iter()
            .map(|&(s, t)| router.route(s, t).hop_count())
            .sum();
        assert_eq!(total_usage as usize, total_hops);
        assert!(rep.max() >= 1);
        assert!(rep.mean() > 0.0);
    }

    #[test]
    fn compact_schemes_stay_close_to_shortest_path_congestion() {
        let n = 256;
        let g = generators::gnm_average_degree(n, 8.0, 3);
        let cfg = DiscoConfig::seeded(3);
        let disco_state = DiscoState::build(&g, &cfg);
        let disco_router = DiscoRouter::new(&g, &disco_state);
        let sp_router = ShortestPathRouter::new(&g);
        let pairs = one_destination_per_node(n, 3);
        let disco = disco_congestion(&g, &disco_router, &pairs);
        let sp = shortest_path_congestion(&g, &sp_router, &pairs);
        // Disco routes are at most 3x longer, so aggregate load is bounded
        // by a small factor of shortest-path load.
        let disco_total: u64 = disco.edge_usage.iter().sum();
        let sp_total: u64 = sp.edge_usage.iter().sum();
        assert!(disco_total as f64 <= 3.5 * sp_total as f64);
        assert!(disco.fraction_above(0) > 0.1);
    }

    #[test]
    fn vrr_congestion_is_heavier() {
        let n = 256;
        let g = generators::gnm_average_degree(n, 8.0, 5);
        let cfg = DiscoConfig::seeded(5);
        let vrr_state = VrrState::build(&g, &cfg);
        let s4_state = S4State::build(&g, &cfg);
        let vrr_router = VrrRouter::new(&g, &vrr_state);
        let s4_router = S4Router::new(&g, &s4_state);
        let pairs = one_destination_per_node(n, 5);
        let vrr = vrr_congestion(&g, &vrr_router, &pairs);
        let s4 = s4_congestion(&g, &s4_router, &pairs);
        // VRR's longer, identifier-chasing routes put more total load on
        // the network than S4's (Figs. 4–5 right).
        let vrr_total: u64 = vrr.edge_usage.iter().sum();
        let s4_total: u64 = s4.edge_usage.iter().sum();
        assert!(
            vrr_total > s4_total,
            "VRR total load {vrr_total} should exceed S4 {s4_total}"
        );
        assert!(vrr.max() >= s4.max() / 4);
    }
}
