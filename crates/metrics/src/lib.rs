//! # disco-metrics
//!
//! Measurement harness for the Disco reproduction: the three quantities the
//! paper's evaluation (§5) reports — per-node **state**, per-pair
//! **stretch**, and per-edge **congestion** — plus the topology catalogue,
//! pair sampling, CDF utilities, and the experiment runners behind every
//! figure and table.
//!
//! The `disco-bench` crate's `fig*` binaries are thin wrappers around
//! [`experiment`]: they call a runner with the paper-scale parameters and
//! print the series/rows; the same runners at smaller sizes are exercised
//! by this crate's tests and by the workspace integration tests, so the
//! figure pipeline itself is under test.

pub mod cdf;
pub mod congestion;
pub mod control;
pub mod experiment;
pub mod forward;
pub mod report;
pub mod sampling;
pub mod state;
pub mod stretch;
pub mod topology;

pub use cdf::Cdf;
pub use sampling::{sample_nodes, sample_pairs};
pub use topology::Topology;
