//! Experiment runners: one function per figure/table of the paper's
//! evaluation (§5). The `disco-bench` binaries call these with paper-scale
//! parameters; the tests here and the workspace integration tests run the
//! same functions at smaller sizes, so the figure pipeline itself is under
//! test. See DESIGN.md §4 for the experiment ↔ figure index.

use crate::congestion::{self, CongestionReport};
use crate::sampling::{one_destination_per_node, sample_nodes, sample_pairs_grouped};
use crate::state::{self, StateReport};
use crate::stretch::{self, StretchReport};
use crate::topology::Topology;
use disco_baselines::{
    S4Router, S4State, ShortestPathRouter, ShortestPathState, VrrRouter, VrrState,
};
use disco_core::address::IdentifierSize;
use disco_core::config::DiscoConfig;
use disco_core::dissemination;
use disco_core::estimate_n::NEstimates;
use disco_core::overlay::Overlay;
use disco_core::path_vector::{PathVectorNode, TableLimit};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_core::routing::DiscoRouter;
use disco_core::shortcut::ShortcutMode;
use disco_core::sloppy_group::SloppyGrouping;
use disco_core::static_state::DiscoState;
use disco_core::{landmark, FlatName};
use disco_graph::{Graph, NodeId};
use disco_sim::Engine;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentParams {
    /// Number of nodes in the topology.
    pub nodes: usize,
    /// Experiment seed (topology, protocol randomness and sampling all
    /// derive from it).
    pub seed: u64,
    /// How many nodes to sample for state measurements (`usize::MAX` = all).
    pub state_samples: usize,
    /// How many distinct sources to sample for stretch.
    pub stretch_sources: usize,
    /// How many destinations per sampled source.
    pub stretch_dests_per_source: usize,
}

impl ExperimentParams {
    /// Reasonable defaults for an `n`-node run: all nodes for state, about
    /// 2,000 pairs for stretch.
    pub fn for_nodes(nodes: usize, seed: u64) -> Self {
        ExperimentParams {
            nodes,
            seed,
            state_samples: usize::MAX,
            stretch_sources: 50.min(nodes / 2),
            stretch_dests_per_source: 40.min(nodes / 4).max(1),
        }
    }
}

// ---------------------------------------------------------------------
// Figures 2, 4-left, 5-left, 9-right: state
// ---------------------------------------------------------------------

/// Per-protocol state reports for one topology instance.
#[derive(Debug, Clone)]
pub struct StateComparison {
    /// The topology family measured.
    pub topology: Topology,
    /// Number of nodes.
    pub nodes: usize,
    /// Full Disco.
    pub disco: StateReport,
    /// Name-dependent NDDisco.
    pub nddisco: StateReport,
    /// S4.
    pub s4: StateReport,
    /// VRR (only on the small-topology figures).
    pub vrr: Option<StateReport>,
    /// Shortest-path routing.
    pub path_vector: Option<StateReport>,
}

/// Run the state comparison of Fig. 2 (Disco / NDDisco / S4) or
/// Fig. 4/5-left (plus VRR and path-vector) on one topology instance.
pub fn state_comparison(
    topology: Topology,
    params: &ExperimentParams,
    include_vrr: bool,
) -> StateComparison {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);
    let nodes = sample_nodes(params.nodes, params.state_samples, params.seed);

    let vrr = include_vrr.then(|| {
        let v = VrrState::build(&graph, &cfg);
        state::vrr_entries(&v, &nodes)
    });
    let path_vector =
        include_vrr.then(|| state::path_vector_entries(&ShortestPathState::build(&graph), &nodes));

    StateComparison {
        topology,
        nodes: params.nodes,
        disco: state::disco_entries(&graph, &disco_state, &nodes),
        nddisco: state::nddisco_entries(&graph, &disco_state, &nodes),
        s4: state::s4_entries(&s4_state, &nodes),
        vrr,
        path_vector,
    }
}

// ---------------------------------------------------------------------
// Figures 3, 4-middle, 5-middle: stretch
// ---------------------------------------------------------------------

/// Per-protocol stretch reports for one topology instance.
#[derive(Debug, Clone)]
pub struct StretchComparison {
    /// The topology family measured.
    pub topology: Topology,
    /// Number of nodes.
    pub nodes: usize,
    /// Disco (first + later packets).
    pub disco: StretchReport,
    /// S4 (first + later packets).
    pub s4: StretchReport,
    /// VRR (optional; same samples for first/later).
    pub vrr: Option<StretchReport>,
}

/// Run the stretch comparison of Fig. 3 (Disco vs S4) or Fig. 4/5-middle
/// (plus VRR) on one topology instance.
pub fn stretch_comparison(
    topology: Topology,
    params: &ExperimentParams,
    include_vrr: bool,
) -> StretchComparison {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);
    let pairs = sample_pairs_grouped(
        params.nodes,
        params.stretch_sources,
        params.stretch_dests_per_source,
        params.seed,
    );
    // The per-source sampling harnesses fan over one worker per CPU
    // (threads = 0); output is bit-identical to the sequential forms.
    let vrr = include_vrr.then(|| {
        let v = VrrState::build(&graph, &cfg);
        stretch::vrr_stretch_parallel(&graph, &v, &pairs, 0)
    });
    StretchComparison {
        topology,
        nodes: params.nodes,
        disco: stretch::disco_stretch_parallel(&graph, &disco_state, &pairs, 0),
        s4: stretch::s4_stretch_parallel(&graph, &s4_state, &pairs, 0),
        vrr,
    }
}

// ---------------------------------------------------------------------
// Figure 6: shortcutting heuristics
// ---------------------------------------------------------------------

/// Mean first-packet stretch per shortcutting heuristic on one topology.
#[derive(Debug, Clone)]
pub struct ShortcutRow {
    /// The topology measured.
    pub topology: Topology,
    /// `(mode, mean stretch)` in the order of the paper's Fig. 6.
    pub means: Vec<(ShortcutMode, f64)>,
}

/// Run the Fig. 6 shortcutting sweep on one topology instance.
pub fn shortcut_sweep(topology: Topology, params: &ExperimentParams) -> ShortcutRow {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let state = DiscoState::build(&graph, &cfg);
    let pairs = sample_pairs_grouped(
        params.nodes,
        params.stretch_sources,
        params.stretch_dests_per_source,
        params.seed,
    );
    let means = ShortcutMode::ALL
        .iter()
        .map(|&mode| {
            (
                mode,
                stretch::disco_mean_stretch_with_mode_parallel(&graph, &state, &pairs, mode, 0),
            )
        })
        .collect();
    ShortcutRow { topology, means }
}

// ---------------------------------------------------------------------
// Figure 7: state in bytes
// ---------------------------------------------------------------------

/// One row of the Fig. 7 table.
#[derive(Debug, Clone)]
pub struct ByteRow {
    /// Protocol label.
    pub protocol: &'static str,
    /// Mean entries per node.
    pub mean_entries: f64,
    /// Maximum entries at any node.
    pub max_entries: f64,
    /// Mean kilobytes with IPv4-sized identifiers.
    pub mean_kb_v4: f64,
    /// Max kilobytes with IPv4-sized identifiers.
    pub max_kb_v4: f64,
    /// Mean kilobytes with IPv6-sized identifiers.
    pub mean_kb_v6: f64,
    /// Max kilobytes with IPv6-sized identifiers.
    pub max_kb_v6: f64,
}

/// Run the Fig. 7 byte-accounting table on one topology instance
/// (the paper uses the router-level Internet map).
pub fn state_bytes_table(topology: Topology, params: &ExperimentParams) -> Vec<ByteRow> {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);
    let nodes = sample_nodes(params.nodes, params.state_samples, params.seed);

    let kb = |b: f64| b / 1024.0;
    let mut rows = Vec::new();

    let s4_entries = state::s4_entries(&s4_state, &nodes);
    let s4_v4 = state::s4_bytes(&graph, &disco_state, &s4_state, &nodes, IdentifierSize::V4);
    let s4_v6 = state::s4_bytes(&graph, &disco_state, &s4_state, &nodes, IdentifierSize::V6);
    rows.push(ByteRow {
        protocol: "S4",
        mean_entries: s4_entries.mean(),
        max_entries: s4_entries.max() as f64,
        mean_kb_v4: kb(s4_v4.mean()),
        max_kb_v4: kb(s4_v4.max()),
        mean_kb_v6: kb(s4_v6.mean()),
        max_kb_v6: kb(s4_v6.max()),
    });

    let nd_entries = state::nddisco_entries(&graph, &disco_state, &nodes);
    let nd_v4 = state::disco_bytes(&graph, &disco_state, &nodes, IdentifierSize::V4, false);
    let nd_v6 = state::disco_bytes(&graph, &disco_state, &nodes, IdentifierSize::V6, false);
    rows.push(ByteRow {
        protocol: "ND-Disco",
        mean_entries: nd_entries.mean(),
        max_entries: nd_entries.max() as f64,
        mean_kb_v4: kb(nd_v4.mean()),
        max_kb_v4: kb(nd_v4.max()),
        mean_kb_v6: kb(nd_v6.mean()),
        max_kb_v6: kb(nd_v6.max()),
    });

    let d_entries = state::disco_entries(&graph, &disco_state, &nodes);
    let d_v4 = state::disco_bytes(&graph, &disco_state, &nodes, IdentifierSize::V4, true);
    let d_v6 = state::disco_bytes(&graph, &disco_state, &nodes, IdentifierSize::V6, true);
    rows.push(ByteRow {
        protocol: "Disco",
        mean_entries: d_entries.mean(),
        max_entries: d_entries.max() as f64,
        mean_kb_v4: kb(d_v4.mean()),
        max_kb_v4: kb(d_v4.max()),
        mean_kb_v6: kb(d_v6.mean()),
        max_kb_v6: kb(d_v6.max()),
    });

    rows
}

// ---------------------------------------------------------------------
// Figure 8: control messaging until convergence
// ---------------------------------------------------------------------

/// Mean messages per node until convergence for each protocol at one
/// network size.
#[derive(Debug, Clone)]
pub struct MessagingPoint {
    /// Number of nodes.
    pub nodes: usize,
    /// Full path-vector routing.
    pub path_vector: f64,
    /// S4 (cluster-rule path vector).
    pub s4: f64,
    /// NDDisco (vicinity-capped path vector).
    pub nddisco: f64,
    /// Disco with one dissemination finger.
    pub disco_1_finger: f64,
    /// Disco with three dissemination fingers.
    pub disco_3_finger: f64,
}

/// Run the Fig. 8 messaging experiment at one size on a `G(n, m)` graph.
pub fn messaging_point(n: usize, seed: u64) -> MessagingPoint {
    let graph = Topology::Gnm.build(n, seed);
    let cfg = DiscoConfig::seeded(seed);
    let landmarks = landmark::select_landmarks(n, &cfg);
    let lm_set: std::collections::HashSet<NodeId> = landmarks.iter().copied().collect();
    let vicinity = cfg.vicinity_size(n);

    let run_pv = |limit: TableLimit| -> f64 {
        let mut engine = Engine::new(&graph, |v| {
            PathVectorNode::new(v, lm_set.contains(&v), limit)
        });
        let report = engine.run();
        assert!(report.converged, "path vector variant did not converge");
        report.stats.mean_sent_per_node()
    };
    let run_disco = |fingers: usize| -> f64 {
        // Fig. 8 counts the routing protocol's own messages with `n`
        // known a priori (the paper's setting); live n-estimation — on by
        // default since it became the protocol's normal mode — would add
        // synopsis-gossip traffic the figure does not measure.
        let cfg = DiscoConfig::seeded(seed)
            .with_fingers(fingers)
            .with_dynamic_n_estimation(false);
        let mut engine = Engine::new(&graph, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        let report = engine.run();
        assert!(report.converged, "Disco did not converge");
        report.stats.mean_sent_per_node()
    };

    MessagingPoint {
        nodes: n,
        path_vector: run_pv(TableLimit::Unlimited),
        s4: run_pv(TableLimit::Cluster),
        nddisco: run_pv(TableLimit::VicinityCap { size: vicinity }),
        disco_1_finger: run_disco(1),
        disco_3_finger: run_disco(3),
    }
}

/// Run the Fig. 8 sweep over several network sizes.
pub fn messaging_sweep(sizes: &[usize], seed: u64) -> Vec<MessagingPoint> {
    sizes.iter().map(|&n| messaging_point(n, seed)).collect()
}

// ---------------------------------------------------------------------
// Figure 9: scaling with n
// ---------------------------------------------------------------------

/// Mean stretch and mean state at one network size (geometric graphs).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of nodes.
    pub nodes: usize,
    /// Mean Disco first-packet stretch.
    pub disco_first: f64,
    /// Mean Disco later-packet stretch.
    pub disco_later: f64,
    /// Mean S4 first-packet stretch.
    pub s4_first: f64,
    /// Mean S4 later-packet stretch.
    pub s4_later: f64,
    /// Mean Disco state (entries per node).
    pub disco_state: f64,
    /// Mean NDDisco state.
    pub nddisco_state: f64,
    /// Mean S4 state.
    pub s4_state: f64,
}

/// Run the Fig. 9 scaling experiment at one size.
pub fn scaling_point(n: usize, seed: u64) -> ScalingPoint {
    let params = ExperimentParams::for_nodes(n, seed);
    let st = state_comparison(Topology::Geometric, &params, false);
    let sr = stretch_comparison(Topology::Geometric, &params, false);
    ScalingPoint {
        nodes: n,
        disco_first: sr.disco.mean_first(),
        disco_later: sr.disco.mean_later(),
        s4_first: sr.s4.mean_first(),
        s4_later: sr.s4.mean_later(),
        disco_state: st.disco.mean(),
        nddisco_state: st.nddisco.mean(),
        s4_state: st.s4.mean(),
    }
}

// ---------------------------------------------------------------------
// Figures 4/5-right, 10: congestion
// ---------------------------------------------------------------------

/// Per-protocol congestion reports for one topology instance.
#[derive(Debug, Clone)]
pub struct CongestionComparison {
    /// The topology measured.
    pub topology: Topology,
    /// Number of nodes.
    pub nodes: usize,
    /// Disco.
    pub disco: CongestionReport,
    /// Shortest-path routing.
    pub path_vector: CongestionReport,
    /// S4.
    pub s4: CongestionReport,
    /// VRR (small topologies only).
    pub vrr: Option<CongestionReport>,
}

/// Run the congestion comparison (Fig. 4/5 right with VRR, Fig. 10
/// without) on one topology instance.
pub fn congestion_comparison(
    topology: Topology,
    params: &ExperimentParams,
    include_vrr: bool,
) -> CongestionComparison {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let disco_state = DiscoState::build(&graph, &cfg);
    let s4_state = S4State::build(&graph, &cfg);
    let pairs = one_destination_per_node(params.nodes, params.seed);
    let disco_router = DiscoRouter::new(&graph, &disco_state);
    let s4_router = S4Router::new(&graph, &s4_state);
    let sp_router = ShortestPathRouter::new(&graph);
    let vrr = include_vrr.then(|| {
        let v = VrrState::build(&graph, &cfg);
        let router = VrrRouter::new(&graph, &v);
        congestion::vrr_congestion(&graph, &router, &pairs)
    });
    CongestionComparison {
        topology,
        nodes: params.nodes,
        disco: congestion::disco_congestion(&graph, &disco_router, &pairs),
        path_vector: congestion::shortest_path_congestion(&graph, &sp_router, &pairs),
        s4: congestion::s4_congestion(&graph, &s4_router, &pairs),
        vrr,
    }
}

// ---------------------------------------------------------------------
// §4.2: address size experiment
// ---------------------------------------------------------------------

/// Statistics of the compact explicit-route encoding (paper §4.2: mean
/// 2.93 B, 95th percentile 5 B, max 10.6 B on the router-level map).
#[derive(Debug, Clone)]
pub struct AddressSizeStats {
    /// Mean route size in bytes.
    pub mean_bytes: f64,
    /// 95th percentile.
    pub p95_bytes: f64,
    /// Maximum.
    pub max_bytes: f64,
    /// Mean total address size (landmark id + route) with IPv4 ids.
    pub mean_address_bytes_v4: f64,
}

/// Measure explicit-route sizes on one topology instance.
pub fn address_size_experiment(topology: Topology, params: &ExperimentParams) -> AddressSizeStats {
    let graph = topology.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let state = DiscoState::build(&graph, &cfg);
    let sizes: Vec<f64> = graph
        .nodes()
        .map(|v| state.address_of(v).route_bytes(&graph) as f64)
        .collect();
    let cdf = crate::cdf::Cdf::new(sizes.clone());
    AddressSizeStats {
        mean_bytes: cdf.mean(),
        p95_bytes: cdf.percentile(0.95),
        max_bytes: cdf.max(),
        mean_address_bytes_v4: cdf.mean() + 4.0,
    }
}

// ---------------------------------------------------------------------
// §5.2: error in estimating n
// ---------------------------------------------------------------------

/// Outcome of one estimation-error run.
#[derive(Debug, Clone)]
pub struct EstimationErrorOutcome {
    /// Injected relative error.
    pub error: f64,
    /// Number of sampled (source, destination) pairs whose first packet had
    /// to fall back to the landmark resolution database (i.e. no member of
    /// the destination's group was found in the source's vicinity).
    pub fallback_pairs: usize,
    /// Total sampled pairs.
    pub total_pairs: usize,
    /// Mean first-packet stretch.
    pub mean_first_stretch: f64,
}

/// Run the §5.2 robustness experiment: inject up to `error` relative error
/// into every node's estimate of `n` and measure reachability (fallbacks)
/// and stretch.
pub fn estimation_error_experiment(
    params: &ExperimentParams,
    error: f64,
) -> EstimationErrorOutcome {
    let graph = Topology::Gnm.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed).with_n_estimate_error(error);
    let state = DiscoState::build(&graph, &cfg);
    let router = DiscoRouter::new(&graph, &state);
    let pairs = sample_pairs_grouped(
        params.nodes,
        params.stretch_sources,
        params.stretch_dests_per_source,
        params.seed,
    );
    let mut fallbacks = 0usize;
    let mut stretches = Vec::with_capacity(pairs.len());
    for &(s, t) in &pairs {
        let out = router.route_first_packet(s, t);
        if out.category == disco_core::routing::RouteCategory::Fallback {
            fallbacks += 1;
        }
        stretches.push(out.stretch(router.true_distance(s, t)));
    }
    EstimationErrorOutcome {
        error,
        fallback_pairs: fallbacks,
        total_pairs: pairs.len(),
        mean_first_stretch: crate::cdf::Cdf::new(stretches).mean(),
    }
}

// ---------------------------------------------------------------------
// §5.2: accuracy of the static simulation
// ---------------------------------------------------------------------

/// Comparison of later-packet stretch measured over the static simulator's
/// state vs the discrete-event protocol's converged state.
#[derive(Debug, Clone)]
pub struct StaticAccuracyOutcome {
    /// Mean later-packet stretch over the static state.
    pub static_mean_stretch: f64,
    /// Mean later-packet stretch over the event-driven converged tables.
    pub event_mean_stretch: f64,
    /// Relative difference |static − event| / event.
    pub relative_difference: f64,
}

/// Run the static-vs-event-driven accuracy check on a `G(n, m)` graph.
pub fn static_accuracy_experiment(params: &ExperimentParams) -> StaticAccuracyOutcome {
    let graph = Topology::Gnm.build(params.nodes, params.seed);
    let cfg = DiscoConfig::seeded(params.seed);
    let n = params.nodes;

    // Static side.
    let state = DiscoState::build(&graph, &cfg);
    let router = DiscoRouter::new(&graph, &state);
    let pairs = sample_pairs_grouped(
        n,
        params.stretch_sources,
        params.stretch_dests_per_source,
        params.seed,
    );
    let static_mean = stretch::disco_stretch(&router, &pairs).mean_later();

    // Event-driven side: run the bounded path-vector protocol to
    // convergence and route over its converged tables.
    let landmarks = landmark::select_landmarks(n, &cfg);
    let lm_set: std::collections::HashSet<NodeId> = landmarks.iter().copied().collect();
    let vicinity = cfg.vicinity_size(n);
    let mut engine = Engine::new(&graph, |v| {
        PathVectorNode::new(
            v,
            lm_set.contains(&v),
            TableLimit::VicinityCap { size: vicinity },
        )
    });
    let report = engine.run();
    assert!(report.converged);
    let nodes = engine.nodes();

    let sp = ShortestPathRouter::new(&graph);
    let mut stretches = Vec::with_capacity(pairs.len());
    for &(s, t) in &pairs {
        let d = sp.distance(s, t);
        let len = event_later_packet_length(&graph, nodes, s, t);
        stretches.push(if d <= 0.0 { 1.0 } else { len / d });
    }
    let event_mean = crate::cdf::Cdf::new(stretches).mean();

    StaticAccuracyOutcome {
        static_mean_stretch: static_mean,
        event_mean_stretch: event_mean,
        relative_difference: (static_mean - event_mean).abs() / event_mean.max(1e-12),
    }
}

/// Later-packet route length using the distributed protocol's converged
/// tables (handshake included), mirroring `DiscoRouter::route_later_packet`.
fn event_later_packet_length(graph: &Graph, nodes: &[PathVectorNode], s: NodeId, t: NodeId) -> f64 {
    let path_len = |path: &[NodeId]| -> f64 {
        path.windows(2)
            .map(|w| graph.edge_weight(w[0], w[1]).expect("table path edge"))
            .sum()
    };
    if s == t {
        return 0.0;
    }
    // Direct: t in s's table (vicinity member or landmark).
    if let Some(e) = nodes[s.0].table.get(&t) {
        return e.dist;
    }
    // Handshake: s in t's table.
    if let Some(e) = nodes[t.0].table.get(&s) {
        return e.dist;
    }
    // Landmark route: s → ℓ_t → t, where ℓ_t is t's closest landmark and
    // the last leg is the reverse of t's route to ℓ_t.
    let (lm, lm_entry) = nodes[t.0]
        .landmark_entries()
        .min_by(|a, b| a.1.dist.partial_cmp(&b.1.dist).unwrap().then(a.0.cmp(b.0)))
        .expect("every node learns the landmarks");
    let s_to_lm = nodes[s.0]
        .table
        .get(lm)
        .expect("every node learns routes to all landmarks");
    // Apply To-Destination shortcutting along the concatenated path, exactly
    // as the protocol would.
    let mut full: Vec<NodeId> = s_to_lm.path.to_vec();
    let mut tail: Vec<NodeId> = lm_entry.path.to_vec();
    tail.reverse(); // t→ℓ_t becomes ℓ_t→t
    full.extend_from_slice(&tail[1..]);
    // To-Destination shortcut: first node on the path with t in its table.
    for (i, &u) in full.iter().enumerate() {
        if u == t {
            return path_len(&full[..=i]);
        }
        if let Some(e) = nodes[u.0].table.get(&t) {
            return path_len(&full[..=i]) + e.dist;
        }
    }
    path_len(&full)
}

// ---------------------------------------------------------------------
// §4.4: overlay dissemination hop counts
// ---------------------------------------------------------------------

/// Dissemination statistics for one finger count.
#[derive(Debug, Clone)]
pub struct OverlayHopOutcome {
    /// Number of fingers per node.
    pub fingers: usize,
    /// Mean overlay hops for an announcement to reach a group member.
    pub mean_hops: f64,
    /// Maximum overlay hops observed.
    pub max_hops: u32,
    /// Mean overlay messages per announcement.
    pub mean_messages: f64,
    /// Fraction of (origin, core-group member) pairs reached.
    pub coverage: f64,
}

/// Run the §4.4 overlay experiment (paper: 1 finger → mean 5.77 / max 24;
/// 3 fingers → mean 3.04 / max 16 on a 1,024-node G(n,m) graph).
pub fn overlay_hops_experiment(params: &ExperimentParams, fingers: usize) -> OverlayHopOutcome {
    let n = params.nodes;
    let cfg = DiscoConfig::seeded(params.seed).with_fingers(fingers);
    let names: Vec<FlatName> = (0..n).map(FlatName::synthetic).collect();
    let estimates = NEstimates::exact(n);
    let grouping = SloppyGrouping::build(n, &cfg, &names, |v| estimates.of(v));
    let overlay = Overlay::build(&grouping, &cfg);
    let origins = sample_nodes(n, 256.min(n), params.seed);
    let stats = dissemination::disseminate_many(&overlay, &grouping, &origins);
    OverlayHopOutcome {
        fingers,
        mean_hops: stats.mean_hops,
        max_hops: stats.max_hops,
        mean_messages: stats.mean_messages,
        coverage: stats.coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(n: usize, seed: u64) -> ExperimentParams {
        ExperimentParams {
            nodes: n,
            seed,
            state_samples: usize::MAX,
            stretch_sources: 8,
            stretch_dests_per_source: 6,
        }
    }

    #[test]
    fn state_comparison_smoke() {
        let params = small_params(200, 1);
        let cmp = state_comparison(Topology::Gnm, &params, true);
        assert_eq!(cmp.disco.entries.len(), 200);
        assert!(cmp.nddisco.mean() <= cmp.disco.mean());
        assert!(cmp.vrr.is_some());
        assert_eq!(cmp.path_vector.unwrap().mean(), 199.0);
    }

    #[test]
    fn stretch_comparison_smoke() {
        let params = small_params(200, 2);
        let cmp = stretch_comparison(Topology::Geometric, &params, false);
        assert!(cmp.disco.mean_first() >= 1.0);
        assert!(cmp.disco.max_later() <= 3.0 + 1e-9);
        assert!(cmp.s4.max_later() <= 3.0 + 1e-9);
    }

    #[test]
    fn shortcut_sweep_has_all_modes_in_order() {
        let params = small_params(150, 3);
        let row = shortcut_sweep(Topology::Gnm, &params);
        assert_eq!(row.means.len(), 6);
        assert_eq!(row.means[0].0, ShortcutMode::None);
        // No-shortcut is the upper bound of the column.
        let base = row.means[0].1;
        for &(_, m) in &row.means[1..] {
            assert!(m <= base + 1e-9);
        }
    }

    #[test]
    fn byte_table_has_three_rows() {
        let params = small_params(150, 4);
        let rows = state_bytes_table(Topology::RouterLevel, &params);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.mean_kb_v6 > row.mean_kb_v4);
            assert!(row.max_entries >= row.mean_entries);
        }
    }

    #[test]
    fn messaging_point_orders_protocols() {
        let p = messaging_point(96, 5);
        assert!(
            p.path_vector > p.nddisco,
            "pv {} nd {}",
            p.path_vector,
            p.nddisco
        );
        assert!(p.disco_1_finger > p.nddisco);
        assert!(p.disco_3_finger >= p.disco_1_finger);
        assert!(p.s4 > 0.0);
    }

    #[test]
    fn scaling_point_smoke() {
        let p = scaling_point(200, 6);
        assert!(p.disco_later <= p.disco_first + 1e-9);
        assert!(p.disco_state >= p.nddisco_state);
        assert!(p.s4_state > 0.0);
    }

    #[test]
    fn congestion_comparison_smoke() {
        let params = small_params(150, 7);
        let cmp = congestion_comparison(Topology::Gnm, &params, true);
        assert_eq!(cmp.disco.edge_usage.len(), cmp.path_vector.edge_usage.len());
        assert!(cmp.vrr.is_some());
        let disco_total: u64 = cmp.disco.edge_usage.iter().sum();
        let sp_total: u64 = cmp.path_vector.edge_usage.iter().sum();
        assert!(disco_total >= sp_total);
    }

    #[test]
    fn address_sizes_are_small() {
        let params = small_params(400, 8);
        let stats = address_size_experiment(Topology::RouterLevel, &params);
        assert!(stats.mean_bytes < 6.0, "mean {}", stats.mean_bytes);
        assert!(stats.max_bytes < 20.0);
        assert!(stats.p95_bytes >= stats.mean_bytes);
        assert!(stats.mean_address_bytes_v4 > stats.mean_bytes);
    }

    #[test]
    fn estimation_error_keeps_reachability() {
        let params = small_params(256, 9);
        let exact = estimation_error_experiment(&params, 0.0);
        let noisy = estimation_error_experiment(&params, 0.4);
        assert_eq!(exact.fallback_pairs, 0);
        // With 40% error the fallback count stays tiny and stretch barely
        // moves (paper: +0.6% mean stretch).
        assert!(noisy.fallback_pairs * 20 <= noisy.total_pairs);
        assert!(noisy.mean_first_stretch < exact.mean_first_stretch * 1.5);
    }

    #[test]
    fn static_accuracy_is_close() {
        // More sampled pairs than the other smoke tests: the 5% agreement
        // tolerance is tight enough that 8×6 pairs is dominated by sampling
        // noise rather than the static/event gap being measured.
        let params = ExperimentParams {
            stretch_sources: 12,
            stretch_dests_per_source: 12,
            ..small_params(200, 10)
        };
        let out = static_accuracy_experiment(&params);
        assert!(
            out.relative_difference < 0.05,
            "static {} vs event {}",
            out.static_mean_stretch,
            out.event_mean_stretch
        );
    }

    #[test]
    fn overlay_hops_improve_with_fingers() {
        let params = small_params(512, 11);
        let one = overlay_hops_experiment(&params, 1);
        let three = overlay_hops_experiment(&params, 3);
        assert!(one.coverage > 0.999);
        assert!(three.coverage > 0.999);
        assert!(three.mean_hops < one.mean_hops);
    }
}
