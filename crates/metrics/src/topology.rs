//! The topology catalogue of the paper's evaluation (§5.1).
//!
//! | Paper topology | Here |
//! |---|---|
//! | 30,610-node AS-level Internet map | [`Topology::AsLevel`] — synthetic power-law graph (see DESIGN.md §3) |
//! | 192,244-node router-level Internet map | [`Topology::RouterLevel`] — synthetic power-law graph |
//! | `G(n, m)` random graphs, average degree 8 | [`Topology::Gnm`] |
//! | geometric random graphs, average degree 8, link latencies | [`Topology::Geometric`] |

use disco_graph::{generators, Graph};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A topology family from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// `G(n, m)` random graph with average degree 8 (unweighted).
    Gnm,
    /// Geometric random graph with average degree 8 and Euclidean link
    /// latencies.
    Geometric,
    /// Synthetic stand-in for the CAIDA AS-level Internet map (unweighted,
    /// power-law, denser core).
    AsLevel,
    /// Synthetic stand-in for the CAIDA router-level Internet map
    /// (unweighted, power-law).
    RouterLevel,
}

impl Topology {
    /// All families, in the order the paper lists them.
    pub const ALL: [Topology; 4] = [
        Topology::AsLevel,
        Topology::RouterLevel,
        Topology::Gnm,
        Topology::Geometric,
    ];

    /// Build an `n`-node instance with the given seed.
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            Topology::Gnm => generators::gnm_average_degree(n, 8.0, seed),
            Topology::Geometric => generators::geometric_connected(n, 8.0, seed),
            Topology::AsLevel => generators::internet_as_like(n, seed),
            Topology::RouterLevel => generators::internet_router_like(n, seed),
        }
    }

    /// Whether the topology has meaningful (non-unit) link latencies.
    pub fn weighted(self) -> bool {
        matches!(self, Topology::Geometric)
    }

    /// The label used in figure/table output.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Gnm => "GNM",
            Topology::Geometric => "Geometric",
            Topology::AsLevel => "AS-Level",
            Topology::RouterLevel => "Router-Level",
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Topology {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gnm" | "random" => Ok(Topology::Gnm),
            "geometric" | "geo" => Ok(Topology::Geometric),
            "as" | "as-level" | "aslevel" => Ok(Topology::AsLevel),
            "router" | "router-level" | "routerlevel" => Ok(Topology::RouterLevel),
            _ => Err(format!("unknown topology: {s}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::properties::is_connected;

    #[test]
    fn all_topologies_build_connected_graphs() {
        for topo in Topology::ALL {
            let g = topo.build(512, 3);
            assert_eq!(g.node_count(), 512, "{topo}");
            assert!(is_connected(&g), "{topo}");
        }
    }

    #[test]
    fn weighted_flag_matches_edge_weights() {
        let geo = Topology::Geometric.build(256, 1);
        assert!(Topology::Geometric.weighted());
        assert!(geo.edges().any(|(_, e)| (e.weight - 1.0).abs() > 1e-9));
        let gnm = Topology::Gnm.build(256, 1);
        assert!(!Topology::Gnm.weighted());
        assert!(gnm.edges().all(|(_, e)| (e.weight - 1.0).abs() < 1e-9));
    }

    #[test]
    fn parse_labels() {
        for topo in Topology::ALL {
            assert_eq!(topo.label().parse::<Topology>().unwrap(), topo);
        }
        assert!("nope".parse::<Topology>().is_err());
    }

    #[test]
    fn internet_like_topologies_have_heavier_tails_than_gnm() {
        let router = Topology::RouterLevel.build(2048, 5);
        let gnm = Topology::Gnm.build(2048, 5);
        assert!(router.max_degree() > 3 * gnm.max_degree());
    }
}
