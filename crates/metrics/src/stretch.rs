//! Stretch measurement (paper §5.2 "Stretch", Fig. 3, Fig. 4/5 middle,
//! Fig. 6, Fig. 9 left).
//!
//! Stretch is the ratio of a protocol's route length to the shortest-path
//! length, measured over sampled source–destination pairs; the paper
//! reports both the first packet of a flow and subsequent ("later")
//! packets.

//! ## Parallel harnesses
//!
//! Stretch sampling is embarrassingly parallel per *source*: every pair's
//! samples are a pure function of `(graph, state, pair)`, and the routers'
//! per-source tree caches only pay off within one source's destination
//! group. The `*_parallel` variants below fan contiguous same-source runs
//! of the pair list over a `scoped_threadpool`, each worker building its
//! own router (the routers' `RefCell` caches are not `Sync`) and writing
//! into the run's own index-addressed output slice — the same
//! bit-identical-output contract as `DiscoState::build_parallel`: results
//! are byte-for-byte independent of the thread count.

use crate::cdf::Cdf;
use disco_baselines::{S4Router, S4State, VrrRouter, VrrState};
use disco_core::routing::DiscoRouter;
use disco_core::shortcut::ShortcutMode;
use disco_core::static_state::DiscoState;
use disco_graph::{Graph, NodeId};

/// First- and later-packet stretch samples for one protocol.
#[derive(Debug, Clone, Default)]
pub struct StretchReport {
    /// Stretch of the first packet, one sample per pair.
    pub first: Vec<f64>,
    /// Stretch of subsequent packets, one sample per pair.
    pub later: Vec<f64>,
}

impl StretchReport {
    /// Mean first-packet stretch.
    pub fn mean_first(&self) -> f64 {
        mean(&self.first)
    }

    /// Mean later-packet stretch.
    pub fn mean_later(&self) -> f64 {
        mean(&self.later)
    }

    /// Maximum first-packet stretch.
    pub fn max_first(&self) -> f64 {
        self.first.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum later-packet stretch.
    pub fn max_later(&self) -> f64 {
        self.later.iter().copied().fold(0.0, f64::max)
    }

    /// CDF of first-packet stretch over pairs.
    pub fn first_cdf(&self) -> Cdf {
        Cdf::new(self.first.clone())
    }

    /// CDF of later-packet stretch over pairs.
    pub fn later_cdf(&self) -> Cdf {
        Cdf::new(self.later.clone())
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Number of worker threads to use: `threads` (0 = one per CPU).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Split `pairs` into contiguous same-source runs together with each run's
/// start index (pairs from `sample_pairs_grouped` arrive grouped by
/// source, so a run is one source's destination block).
fn source_runs(pairs: &[(NodeId, NodeId)]) -> Vec<(usize, &[(NodeId, NodeId)])> {
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=pairs.len() {
        if i == pairs.len() || pairs[i].0 != pairs[start].0 {
            runs.push((start, &pairs[start..i]));
            start = i;
        }
    }
    runs
}

/// Fan per-source runs over a scoped pool. `eval` fills one run's
/// first/later output slices from a fresh per-worker measurement context;
/// each output index is computed exactly once, by pure per-pair work, so
/// the assembled report is identical for any thread count.
fn stretch_parallel_with(
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    eval: impl Fn(&[(NodeId, NodeId)], &mut [f64], &mut [f64]) + Sync,
) -> StretchReport {
    let mut report = StretchReport {
        first: vec![0.0; pairs.len()],
        later: vec![0.0; pairs.len()],
    };
    let mut pool = scoped_threadpool::Pool::new(resolve_threads(threads) as u32);
    // Carve the output vectors into per-run slices (disjoint, index-addressed).
    let mut first_rest: &mut [f64] = &mut report.first;
    let mut later_rest: &mut [f64] = &mut report.later;
    let mut jobs = Vec::new();
    for (_, run) in source_runs(pairs) {
        let (f, fr) = first_rest.split_at_mut(run.len());
        let (l, lr) = later_rest.split_at_mut(run.len());
        first_rest = fr;
        later_rest = lr;
        jobs.push((run, f, l));
    }
    pool.scoped(|scope| {
        for (run, f, l) in jobs {
            let eval = &eval;
            scope.execute(move || eval(run, f, l));
        }
    });
    report
}

/// [`disco_stretch`] fanned over `threads` workers (0 = one per CPU);
/// bit-identical to the sequential form.
pub fn disco_stretch_parallel(
    graph: &Graph,
    state: &DiscoState,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchReport {
    stretch_parallel_with(pairs, threads, |run, first, later| {
        let router = DiscoRouter::new(graph, state);
        for (i, &(s, t)) in run.iter().enumerate() {
            let d = router.true_distance(s, t);
            first[i] = router.route_first_packet(s, t).stretch(d);
            later[i] = router.route_later_packet(s, t).stretch(d);
        }
    })
}

/// [`nddisco_stretch`] fanned over `threads` workers (0 = one per CPU).
pub fn nddisco_stretch_parallel(
    graph: &Graph,
    state: &DiscoState,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchReport {
    stretch_parallel_with(pairs, threads, |run, first, later| {
        let router = DiscoRouter::new(graph, state);
        for (i, &(s, t)) in run.iter().enumerate() {
            let d = router.true_distance(s, t);
            first[i] = router.nddisco_first_packet(s, t).stretch(d);
            later[i] = router.nddisco_later_packet(s, t).stretch(d);
        }
    })
}

/// [`s4_stretch`] fanned over `threads` workers (0 = one per CPU).
pub fn s4_stretch_parallel(
    graph: &Graph,
    state: &S4State,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchReport {
    stretch_parallel_with(pairs, threads, |run, first, later| {
        let router = S4Router::new(graph, state);
        for (i, &(s, t)) in run.iter().enumerate() {
            first[i] = router.first_packet_stretch(s, t);
            later[i] = router.later_packet_stretch(s, t);
        }
    })
}

/// [`vrr_stretch`] fanned over `threads` workers (0 = one per CPU).
pub fn vrr_stretch_parallel(
    graph: &Graph,
    state: &VrrState,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchReport {
    stretch_parallel_with(pairs, threads, |run, first, later| {
        let router = VrrRouter::new(graph, state);
        for (i, &(s, t)) in run.iter().enumerate() {
            first[i] = router.stretch(s, t);
            later[i] = first[i];
        }
    })
}

/// [`disco_mean_stretch_with_mode`] fanned over `threads` workers — the
/// Fig. 6 shortcut sweep's inner loop.
pub fn disco_mean_stretch_with_mode_parallel(
    graph: &Graph,
    state: &DiscoState,
    pairs: &[(NodeId, NodeId)],
    mode: ShortcutMode,
    threads: usize,
) -> f64 {
    let report = stretch_parallel_with(pairs, threads, |run, first, _later| {
        let router = DiscoRouter::new(graph, state);
        for (i, &(s, t)) in run.iter().enumerate() {
            let d = router.true_distance(s, t);
            first[i] = router.route_first_packet_with(s, t, mode).stretch(d);
        }
    });
    mean(&report.first)
}

/// Measure Disco first/later-packet stretch over the given pairs with the
/// router's configured shortcutting.
pub fn disco_stretch(router: &DiscoRouter<'_>, pairs: &[(NodeId, NodeId)]) -> StretchReport {
    let mut report = StretchReport::default();
    for &(s, t) in pairs {
        let d = router.true_distance(s, t);
        report
            .first
            .push(router.route_first_packet(s, t).stretch(d));
        report
            .later
            .push(router.route_later_packet(s, t).stretch(d));
    }
    report
}

/// Measure Disco first-packet stretch under an explicit shortcut mode
/// (used by the Fig. 6 sweep). Returns the mean.
pub fn disco_mean_stretch_with_mode(
    router: &DiscoRouter<'_>,
    pairs: &[(NodeId, NodeId)],
    mode: ShortcutMode,
) -> f64 {
    let samples: Vec<f64> = pairs
        .iter()
        .map(|&(s, t)| {
            let d = router.true_distance(s, t);
            router.route_first_packet_with(s, t, mode).stretch(d)
        })
        .collect();
    mean(&samples)
}

/// Measure NDDisco first/later-packet stretch (name-dependent protocol).
pub fn nddisco_stretch(router: &DiscoRouter<'_>, pairs: &[(NodeId, NodeId)]) -> StretchReport {
    let mut report = StretchReport::default();
    for &(s, t) in pairs {
        let d = router.true_distance(s, t);
        report
            .first
            .push(router.nddisco_first_packet(s, t).stretch(d));
        report
            .later
            .push(router.nddisco_later_packet(s, t).stretch(d));
    }
    report
}

/// Measure S4 first/later-packet stretch.
pub fn s4_stretch(router: &S4Router<'_>, pairs: &[(NodeId, NodeId)]) -> StretchReport {
    let mut report = StretchReport::default();
    for &(s, t) in pairs {
        report.first.push(router.first_packet_stretch(s, t));
        report.later.push(router.later_packet_stretch(s, t));
    }
    report
}

/// Measure VRR stretch (VRR has no first/later distinction; both fields get
/// the same samples so reports stay comparable).
pub fn vrr_stretch(router: &VrrRouter<'_>, pairs: &[(NodeId, NodeId)]) -> StretchReport {
    let samples: Vec<f64> = pairs.iter().map(|&(s, t)| router.stretch(s, t)).collect();
    StretchReport {
        first: samples.clone(),
        later: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_pairs_grouped;
    use disco_baselines::{S4State, VrrState};
    use disco_core::config::DiscoConfig;
    use disco_core::static_state::DiscoState;
    use disco_graph::generators;

    #[test]
    fn disco_stretch_bounds_and_ordering() {
        let n = 300;
        let g = generators::gnm_average_degree(n, 8.0, 3);
        let cfg = DiscoConfig::seeded(3);
        let state = DiscoState::build(&g, &cfg);
        let router = DiscoRouter::new(&g, &state);
        let pairs = sample_pairs_grouped(n, 12, 10, 3);
        let rep = disco_stretch(&router, &pairs);
        assert_eq!(rep.first.len(), pairs.len());
        assert!(rep.mean_first() >= 1.0 - 1e-9);
        assert!(rep.mean_later() <= rep.mean_first() + 1e-9);
        assert!(rep.max_first() <= 7.0 + 1e-9);
        assert!(rep.max_later() <= 3.0 + 1e-9);
    }

    #[test]
    fn shortcut_modes_reduce_mean_stretch_monotonically() {
        let n = 300;
        let g = generators::geometric_connected(n, 8.0, 5);
        let cfg = DiscoConfig::seeded(5);
        let state = DiscoState::build(&g, &cfg);
        let router = DiscoRouter::new(&g, &state);
        let pairs = sample_pairs_grouped(n, 10, 10, 5);
        let none = disco_mean_stretch_with_mode(&router, &pairs, ShortcutMode::None);
        let to_dest = disco_mean_stretch_with_mode(&router, &pairs, ShortcutMode::ToDestination);
        let npk = disco_mean_stretch_with_mode(&router, &pairs, ShortcutMode::NoPathKnowledge);
        let pk = disco_mean_stretch_with_mode(&router, &pairs, ShortcutMode::PathKnowledge);
        assert!(to_dest <= none + 1e-9);
        assert!(npk <= to_dest + 1e-9);
        assert!(pk <= npk + 1e-9);
        assert!(pk >= 1.0 - 1e-9);
    }

    #[test]
    fn s4_and_vrr_stretch_exceed_disco_on_average() {
        let n = 400;
        let g = generators::gnm_average_degree(n, 8.0, 7);
        let cfg = DiscoConfig::seeded(7);
        let disco = DiscoState::build(&g, &cfg);
        let s4 = S4State::build(&g, &cfg);
        let vrr = VrrState::build(&g, &cfg);
        let d_router = DiscoRouter::new(&g, &disco);
        let s_router = S4Router::new(&g, &s4);
        let v_router = VrrRouter::new(&g, &vrr);
        let pairs = sample_pairs_grouped(n, 15, 8, 7);
        let d = disco_stretch(&d_router, &pairs);
        let s = s4_stretch(&s_router, &pairs);
        let v = vrr_stretch(&v_router, &pairs);
        // First-packet comparison is where Disco's advantage shows.
        assert!(
            d.mean_first() < s.mean_first() + 1e-9,
            "Disco {} vs S4 {}",
            d.mean_first(),
            s.mean_first()
        );
        assert!(
            d.mean_first() < v.mean_first(),
            "Disco {} vs VRR {}",
            d.mean_first(),
            v.mean_first()
        );
        // Later packets: both compact schemes are ≤ 3.
        assert!(d.max_later() <= 3.0 + 1e-9);
        assert!(s.max_later() <= 3.0 + 1e-9);
    }

    /// The parallel harnesses carry the same contract as
    /// `DiscoState::build_parallel`: byte-identical output for any thread
    /// count, including the sequential reference.
    #[test]
    fn parallel_harnesses_bit_identical_to_sequential() {
        let n = 240;
        let g = generators::gnm_average_degree(n, 8.0, 11);
        let cfg = DiscoConfig::seeded(11);
        let state = DiscoState::build(&g, &cfg);
        let s4 = S4State::build(&g, &cfg);
        let vrr = VrrState::build(&g, &cfg);
        let pairs = sample_pairs_grouped(n, 14, 9, 11);

        let d_router = DiscoRouter::new(&g, &state);
        let seq_d = disco_stretch(&d_router, &pairs);
        let seq_nd = nddisco_stretch(&d_router, &pairs);
        let seq_s4 = s4_stretch(&S4Router::new(&g, &s4), &pairs);
        let seq_v = vrr_stretch(&VrrRouter::new(&g, &vrr), &pairs);
        let seq_mode = disco_mean_stretch_with_mode(&d_router, &pairs, ShortcutMode::PathKnowledge);

        for threads in [1, 3, 0] {
            let par = disco_stretch_parallel(&g, &state, &pairs, threads);
            assert_eq!(par.first, seq_d.first, "disco first, {threads} threads");
            assert_eq!(par.later, seq_d.later, "disco later, {threads} threads");
            let par_nd = nddisco_stretch_parallel(&g, &state, &pairs, threads);
            assert_eq!(par_nd.first, seq_nd.first);
            assert_eq!(par_nd.later, seq_nd.later);
            let par_s4 = s4_stretch_parallel(&g, &s4, &pairs, threads);
            assert_eq!(par_s4.first, seq_s4.first);
            assert_eq!(par_s4.later, seq_s4.later);
            let par_v = vrr_stretch_parallel(&g, &vrr, &pairs, threads);
            assert_eq!(par_v.first, seq_v.first);
            assert_eq!(par_v.later, seq_v.later);
            let par_mode = disco_mean_stretch_with_mode_parallel(
                &g,
                &state,
                &pairs,
                ShortcutMode::PathKnowledge,
                threads,
            );
            assert_eq!(par_mode.to_bits(), seq_mode.to_bits());
        }
    }

    #[test]
    fn nddisco_stretch_at_most_5_and_3() {
        let n = 300;
        let g = generators::gnm_average_degree(n, 8.0, 9);
        let cfg = DiscoConfig::seeded(9);
        let state = DiscoState::build(&g, &cfg);
        let router = DiscoRouter::new(&g, &state);
        let pairs = sample_pairs_grouped(n, 10, 10, 9);
        let rep = nddisco_stretch(&router, &pairs);
        assert!(rep.max_first() <= 5.0 + 1e-9);
        assert!(rep.max_later() <= 3.0 + 1e-9);
    }
}
