//! **FIB pricing**: the byte cost of a node's forwarding table, flat
//! versus hash-map.
//!
//! The compiled data plane (`disco_core::forward::ForwardingTable`) holds
//! one destination in ten bytes across three parallel arrays — a `u32`
//! key, a `u32` next hop and a `u16` path-length hint — plus twelve bytes
//! per landmark for the ring used by the owner-fallback. The obvious
//! alternative, a per-node `FxHashMap<NodeId, FibEntry>` FIB, pays
//! SwissTable geometry on 8-byte keys and padded values. This module
//! prices both on the *same* live contents so `exp_forward` (and any
//! future memory sweep) can report the reduction from a single run,
//! mirroring how [`crate::control`] prices the pre-view control layouts.

use crate::control::swiss_table_bytes;

/// Bytes per destination in the flat compiled table: `u32` key + `u32`
/// next hop + `u16` path-length hint, split across sorted parallel
/// arrays (no padding — the arrays are independently allocated).
pub const FLAT_ENTRY_BYTES: usize = 10;

/// Bytes per landmark in the flat table's owner ring: a `u64` ring
/// position + `u32` landmark id.
pub const FLAT_RING_BYTES: usize = 12;

/// Bytes per entry a hash-map FIB would pay *inside each bucket*: an
/// 8-byte `NodeId` key and a value of next hop (8) + path-length hint
/// (2) padded to 8-byte alignment — before SwissTable bucket geometry.
pub const HASH_FIB_PAYLOAD: usize = 8 + 16;

/// Flat compiled-table bytes for `entries` destinations and a `ring` of
/// landmarks — the published footprint `ForwardingTable::approx_bytes`
/// reports.
pub fn flat_table_bytes(entries: usize, ring: usize) -> usize {
    entries * FLAT_ENTRY_BYTES + ring * FLAT_RING_BYTES
}

/// What a `FxHashMap<NodeId, FibEntry>` FIB would pay for the same
/// `entries` destinations (the ring would ride along as a sorted `Vec`
/// either way, so it is priced identically).
pub fn hash_fib_bytes(entries: usize, ring: usize) -> usize {
    swiss_table_bytes(entries, HASH_FIB_PAYLOAD) + ring * FLAT_RING_BYTES
}

/// Both prices for one table population, plus the headline ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FibComparison {
    /// Destinations resident in the table.
    pub entries: usize,
    /// Landmarks in the owner ring.
    pub ring: usize,
    /// Flat compiled-table bytes.
    pub flat_bytes: usize,
    /// Hash-map FIB bytes for the same contents.
    pub hash_bytes: usize,
}

impl FibComparison {
    /// Price one table population under both layouts.
    pub fn price(entries: usize, ring: usize) -> Self {
        FibComparison {
            entries,
            ring,
            flat_bytes: flat_table_bytes(entries, ring),
            hash_bytes: hash_fib_bytes(entries, ring),
        }
    }

    /// Hash-map bytes per flat byte (> 1 means the flat layout wins).
    pub fn reduction(&self) -> f64 {
        self.hash_bytes as f64 / (self.flat_bytes as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flat layout beats SwissTable geometry by at least 2x on any
    /// realistically sized table, and the model degenerates gracefully.
    #[test]
    fn flat_wins_by_construction() {
        assert_eq!(flat_table_bytes(0, 0), 0);
        assert_eq!(hash_fib_bytes(0, 0), 0);
        let c = FibComparison::price(300, 58);
        assert_eq!(c.flat_bytes, 300 * 10 + 58 * 12);
        assert!(
            c.reduction() > 2.0,
            "hash {} vs flat {}",
            c.hash_bytes,
            c.flat_bytes
        );
        // The ring is priced identically on both sides.
        let no_ring = FibComparison::price(300, 0);
        assert_eq!(c.hash_bytes - no_ring.hash_bytes, 58 * 12);
    }
}
