//! Cumulative distribution functions over measured samples.
//!
//! Every figure in the paper's evaluation is either a CDF (state over
//! nodes, stretch over source–destination pairs, congestion over edges) or
//! a mean-vs-parameter curve; this module provides the shared machinery.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a set of samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Build from integer samples.
    pub fn from_counts(samples: impl IntoIterator<Item = usize>) -> Self {
        Cdf::new(samples.into_iter().map(|x| x as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) using nearest-rank interpolation.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((self.sorted.len() - 1) as f64 * p).round() as usize;
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `points` equally-spaced (in probability) points of the CDF as
    /// `(value, cumulative fraction)` pairs — the series a figure plots.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                (self.percentile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
        assert!((c.median() - 2.0).abs() < 1e-12 || (c.median() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_and_fractions() {
        let c = Cdf::from_counts(1..=100usize);
        assert!((c.percentile(0.95) - 95.0).abs() <= 1.0);
        assert!((c.fraction_at_most(50.0) - 0.5).abs() < 0.02);
        assert_eq!(c.fraction_at_most(0.0), 0.0);
        assert_eq!(c.fraction_at_most(1000.0), 1.0);
    }

    #[test]
    fn series_is_monotone() {
        let c = Cdf::new(vec![5.0, 1.0, 9.0, 3.0, 7.0]);
        let s = c.series(10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-12);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_harmless() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.percentile(0.9), 0.0);
        assert!(c.series(5).is_empty());
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }
}
