//! Virtual Ring Routing (Caesar et al., SIGCOMM 2006), as evaluated by the
//! Disco paper (§3, §5, Figs. 4–5).
//!
//! VRR routes on flat identifiers by applying DHT ideas directly to the
//! physical network:
//!
//! * each node has a location-independent identifier (here: the hash of its
//!   flat name) and maintains a *virtual neighbor set* (vset) of `r = 4`
//!   nodes — its two clockwise and two counter-clockwise neighbors on the
//!   identifier ring,
//! * for every vset member it sets up a *vset-path* through the physical
//!   network; **every node along that path stores a routing-table entry**
//!   for the pair of endpoints,
//! * packets are forwarded greedily: each node picks, among the endpoints
//!   in its routing table and its physical neighbors, the identifier
//!   closest to the destination's and forwards along the stored path
//!   toward it.
//!
//! Because intermediate nodes store per-path state, a node that happens to
//! lie on many vset-paths can accumulate a very large table (`Θ(n²)` in the
//! worst case); and because greedy forwarding chases identifiers rather
//! than distance, stretch is unbounded. Both effects are exactly what the
//! paper's Figs. 4–5 show, and are reproduced by this module.
//!
//! Construction follows the paper's methodology (§5.1): nodes join one at a
//! time starting from a random node, growing the connected component of
//! joined nodes outward; a joining node discovers its vset by greedily
//! routing setup messages through an already-joined physical neighbor
//! (the proxy), and the path the setup message takes becomes the vset-path.

use disco_core::config::DiscoConfig;
use disco_core::hash::{NameHash, NameHasher};
use disco_core::name::FlatName;
use disco_graph::{dijkstra, Graph, NodeId, Path, Weight};
use disco_sim::rng::rng_for;
use rand::seq::SliceRandom;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Number of virtual neighbors (the paper evaluates `r = 4`).
pub const DEFAULT_VSET_SIZE: usize = 4;

/// One routing-table entry: a vset-path passing through this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsetPathEntry {
    /// Path endpoint A.
    pub endpoint_a: NodeId,
    /// Path endpoint B.
    pub endpoint_b: NodeId,
    /// Next hop toward endpoint A.
    pub next_to_a: NodeId,
    /// Next hop toward endpoint B.
    pub next_to_b: NodeId,
}

/// Converged VRR state.
#[derive(Debug, Clone)]
pub struct VrrState {
    /// Virtual identifier of each node.
    ids: Vec<NameHash>,
    /// Routing table of each node.
    tables: Vec<Vec<VsetPathEntry>>,
    /// vset of each node (for inspection / tests).
    vsets: Vec<Vec<NodeId>>,
    /// Order in which nodes joined.
    join_order: Vec<NodeId>,
}

impl VrrState {
    /// Build converged VRR state with `r = 4` virtual neighbors.
    pub fn build(graph: &Graph, cfg: &DiscoConfig) -> Self {
        Self::build_with_vset(graph, cfg, DEFAULT_VSET_SIZE)
    }

    /// Build converged VRR state with a custom vset size (must be even).
    pub fn build_with_vset(graph: &Graph, cfg: &DiscoConfig, vset_size: usize) -> Self {
        let n = graph.node_count();
        assert!(n >= 2);
        assert!(vset_size >= 2 && vset_size.is_multiple_of(2));
        let hasher = NameHasher::new(cfg.seed ^ 0x4242);
        let ids: Vec<NameHash> = (0..n)
            .map(|i| hasher.hash_name(&FlatName::synthetic(i)))
            .collect();

        let mut rng = rng_for(cfg.seed, 0x55, 0);
        let mut builder = VrrBuilder {
            graph,
            ids: &ids,
            tables: vec![Vec::new(); n],
            joined: HashSet::new(),
            vset_size,
        };

        // Join order: random start, then grow the connected component
        // outward by picking a random frontier node each time.
        let start = NodeId(rand::Rng::gen_range(&mut rng, 0..n));
        let mut join_order = vec![start];
        builder.join(start);
        let mut frontier: Vec<NodeId> = graph.neighbors(start).iter().map(|nb| nb.node).collect();
        while builder.joined.len() < n {
            frontier.retain(|v| !builder.joined.contains(v));
            frontier.sort();
            frontier.dedup();
            let &next = frontier.choose(&mut rng).expect("graph must be connected");
            builder.join(next);
            join_order.push(next);
            for nb in graph.neighbors(next) {
                if !builder.joined.contains(&nb.node) {
                    frontier.push(nb.node);
                }
            }
        }

        let vsets = (0..n).map(|v| builder.vset_of(NodeId(v))).collect();
        let VrrBuilder { tables, .. } = builder;
        VrrState {
            ids,
            tables,
            vsets,
            join_order,
        }
    }

    /// Virtual identifier of `v`.
    pub fn id_of(&self, v: NodeId) -> NameHash {
        self.ids[v.0]
    }

    /// Routing table of `v`.
    pub fn table(&self, v: NodeId) -> &[VsetPathEntry] {
        &self.tables[v.0]
    }

    /// Number of routing-table entries at `v` — the state metric of
    /// Figs. 4–5.
    pub fn state_entries(&self, v: NodeId) -> usize {
        self.tables[v.0].len()
    }

    /// The virtual neighbor set of `v`.
    pub fn vset(&self, v: NodeId) -> &[NodeId] {
        &self.vsets[v.0]
    }

    /// The join order used during construction.
    pub fn join_order(&self) -> &[NodeId] {
        &self.join_order
    }
}

/// Internal construction helper.
struct VrrBuilder<'a> {
    graph: &'a Graph,
    ids: &'a [NameHash],
    tables: Vec<Vec<VsetPathEntry>>,
    joined: HashSet<NodeId>,
    vset_size: usize,
}

impl<'a> VrrBuilder<'a> {
    /// The `vset_size` nodes whose ids are closest to `x`'s on the ring
    /// (half clockwise, half counter-clockwise), among joined nodes.
    fn vset_of(&self, x: NodeId) -> Vec<NodeId> {
        let half = self.vset_size / 2;
        let mut cw: Vec<(u64, NodeId)> = Vec::new();
        let mut ccw: Vec<(u64, NodeId)> = Vec::new();
        for &v in &self.joined {
            if v == x {
                continue;
            }
            cw.push((self.ids[x.0].clockwise_distance(self.ids[v.0]), v));
            ccw.push((self.ids[v.0].clockwise_distance(self.ids[x.0]), v));
        }
        cw.sort();
        ccw.sort();
        let mut out: Vec<NodeId> = cw.iter().take(half).map(|&(_, v)| v).collect();
        for &(_, v) in ccw.iter().take(half) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    fn join(&mut self, x: NodeId) {
        self.joined.insert(x);
        // Trivial entries for physical links to already-joined neighbors.
        for nb in self.graph.neighbors(x) {
            if self.joined.contains(&nb.node) && nb.node != x {
                let entry = VsetPathEntry {
                    endpoint_a: x,
                    endpoint_b: nb.node,
                    next_to_a: x,
                    next_to_b: nb.node,
                };
                self.tables[x.0].push(entry);
                self.tables[nb.node.0].push(VsetPathEntry {
                    endpoint_a: x,
                    endpoint_b: nb.node,
                    next_to_a: x,
                    next_to_b: nb.node,
                });
            }
        }
        // Set up vset-paths toward the current vset.
        for y in self.vset_of(x) {
            if let Some(path) = self.discover_path(x, y) {
                self.install_path(&path);
            }
        }
    }

    /// Greedily route a setup message from `x` toward `target`'s
    /// identifier using the current tables; returns the node path if the
    /// target was reached. Falls back to the physical shortest path when
    /// greedy forwarding gets stuck (rare; mirrors VRR's teardown-and-retry
    /// machinery without simulating it packet by packet).
    fn discover_path(&self, x: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
        let target_id = self.ids[target.0];
        let mut path = vec![x];
        let mut current = x;
        let mut visited: HashSet<NodeId> = HashSet::new();
        visited.insert(x);
        for _ in 0..self.graph.node_count() {
            if current == target {
                return Some(path);
            }
            match self.greedy_next_hop(current, target, target_id, &visited) {
                Some(next) => {
                    visited.insert(next);
                    path.push(next);
                    current = next;
                }
                None => break,
            }
        }
        if current == target {
            return Some(path);
        }
        // Fallback: complete the path along the physical shortest path from
        // the stuck node.
        let tree = dijkstra(self.graph, current);
        let rest = tree.path_to(target)?;
        path.extend_from_slice(&rest.nodes()[1..]);
        Some(path)
    }

    /// Install routing entries for a discovered vset-path at every node on
    /// the path.
    fn install_path(&mut self, path: &[NodeId]) {
        if path.len() < 2 {
            return;
        }
        let a = path[0];
        let b = *path.last().unwrap();
        for (i, &node) in path.iter().enumerate() {
            let next_to_a = if i == 0 { a } else { path[i - 1] };
            let next_to_b = if i + 1 == path.len() { b } else { path[i + 1] };
            let entry = VsetPathEntry {
                endpoint_a: a,
                endpoint_b: b,
                next_to_a,
                next_to_b,
            };
            if !self.tables[node.0].contains(&entry) {
                self.tables[node.0].push(entry);
            }
        }
    }

    /// Greedy next hop: among all endpoints known at `current` (and its
    /// joined physical neighbors), find the identifier closest to the
    /// target's and step toward it.
    fn greedy_next_hop(
        &self,
        current: NodeId,
        target: NodeId,
        target_id: NameHash,
        visited: &HashSet<NodeId>,
    ) -> Option<NodeId> {
        let my_dist = self.ids[current.0].ring_distance(target_id);
        let mut best: Option<(u64, NodeId)> = None; // (endpoint ring distance, next hop)
        let mut consider = |endpoint: NodeId, next: NodeId| {
            if next == current || visited.contains(&next) {
                return;
            }
            if !self.joined.contains(&next) {
                return;
            }
            let d = if endpoint == target {
                0
            } else {
                self.ids[endpoint.0].ring_distance(target_id)
            };
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, next)),
            }
        };
        for e in &self.tables[current.0] {
            consider(e.endpoint_a, e.next_to_a);
            consider(e.endpoint_b, e.next_to_b);
        }
        for nb in self.graph.neighbors(current) {
            consider(nb.node, nb.node);
        }
        match best {
            Some((d, next))
                if d < my_dist
                    || self.tables[current.0].iter().any(|e| {
                        (e.endpoint_a == target && e.next_to_a == next)
                            || (e.endpoint_b == target && e.next_to_b == next)
                    })
                    || next == target =>
            {
                Some(next)
            }
            // Allow non-improving moves only if we know a path to the exact
            // target through this hop; otherwise we are stuck.
            _ => None,
        }
    }
}

/// Router over converged VRR state: greedy forwarding in identifier space.
pub struct VrrRouter<'a> {
    graph: &'a Graph,
    state: &'a VrrState,
    trees: RefCell<HashMap<NodeId, disco_graph::ShortestPathTree>>,
}

impl<'a> VrrRouter<'a> {
    /// A router over `graph` and converged `state`.
    pub fn new(graph: &'a Graph, state: &'a VrrState) -> Self {
        VrrRouter {
            graph,
            state,
            trees: RefCell::new(HashMap::new()),
        }
    }

    /// Ground-truth shortest distance.
    pub fn true_distance(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        let mut cache = self.trees.borrow_mut();
        let tree = cache.entry(s).or_insert_with(|| dijkstra(self.graph, s));
        tree.distance(t).expect("connected graph")
    }

    /// Route a packet from `s` to `t` by greedy identifier forwarding.
    /// Returns (node sequence, length). Greedy dead-ends (which real VRR
    /// patches with teardown/repair) are completed along the physical
    /// shortest path from the stuck node and still counted in full.
    pub fn route(&self, s: NodeId, t: NodeId) -> (Vec<NodeId>, Weight) {
        if s == t {
            return (vec![s], 0.0);
        }
        let target_id = self.state.id_of(t);
        let mut nodes = vec![s];
        let mut current = s;
        let mut visited: HashSet<NodeId> = HashSet::new();
        visited.insert(s);
        for _ in 0..self.graph.node_count() * 2 {
            if current == t {
                break;
            }
            let next = self.greedy_step(current, t, target_id, &visited);
            match next {
                Some(nx) => {
                    visited.insert(nx);
                    nodes.push(nx);
                    current = nx;
                }
                None => break,
            }
        }
        if current != t {
            let mut cache = self.trees.borrow_mut();
            let tree = cache
                .entry(current)
                .or_insert_with(|| dijkstra(self.graph, current));
            let rest = tree.path_to(t).expect("connected graph");
            nodes.extend_from_slice(&rest.nodes()[1..]);
        }
        let len = Path::new(nodes.clone()).length(self.graph);
        (nodes, len)
    }

    /// Stretch of the greedy route for one pair.
    pub fn stretch(&self, s: NodeId, t: NodeId) -> f64 {
        let d = self.true_distance(s, t);
        let (_, len) = self.route(s, t);
        if d <= 0.0 {
            1.0
        } else {
            len / d
        }
    }

    fn greedy_step(
        &self,
        current: NodeId,
        target: NodeId,
        target_id: NameHash,
        visited: &HashSet<NodeId>,
    ) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        let mut consider = |endpoint: NodeId, next: NodeId| {
            if next == current || visited.contains(&next) {
                return;
            }
            let d = if endpoint == target {
                0
            } else {
                self.state.id_of(endpoint).ring_distance(target_id)
            };
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, next)),
            }
        };
        for e in self.state.table(current) {
            consider(e.endpoint_a, e.next_to_a);
            consider(e.endpoint_b, e.next_to_b);
        }
        for nb in self.graph.neighbors(current) {
            consider(nb.node, nb.node);
        }
        best.map(|(_, next)| next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    fn setup(n: usize, seed: u64) -> (Graph, VrrState) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let st = VrrState::build(&g, &DiscoConfig::seeded(seed));
        (g, st)
    }

    #[test]
    fn every_node_joins_and_has_state() {
        let (g, st) = setup(128, 1);
        assert_eq!(st.join_order().len(), 128);
        for v in g.nodes() {
            assert!(!st.vset(v).is_empty());
            assert!(st.state_entries(v) >= 1);
        }
    }

    #[test]
    fn vsets_have_ring_neighbors() {
        let (_, st) = setup(128, 2);
        // Each vset holds at most r distinct nodes and never the owner.
        for v in 0..128 {
            let vs = st.vset(NodeId(v));
            assert!(vs.len() <= DEFAULT_VSET_SIZE);
            assert!(!vs.contains(&NodeId(v)));
        }
    }

    #[test]
    fn routes_reach_destination_and_are_valid() {
        let (g, st) = setup(128, 3);
        let router = VrrRouter::new(&g, &st);
        for s in (0..128).step_by(13) {
            for t in (0..128).step_by(17) {
                let (nodes, len) = router.route(NodeId(s), NodeId(t));
                assert_eq!(nodes.first(), Some(&NodeId(s)));
                assert_eq!(nodes.last(), Some(&NodeId(t)));
                for w in nodes.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
                assert!(len >= router.true_distance(NodeId(s), NodeId(t)) - 1e-9);
            }
        }
    }

    #[test]
    fn stretch_is_high_for_some_pairs() {
        // VRR provides no stretch bound; on a random graph some pairs should
        // noticeably exceed shortest-path length, and the mean should be
        // clearly above 1.
        let (g, st) = setup(256, 4);
        let router = VrrRouter::new(&g, &st);
        let mut sum = 0.0;
        let mut count = 0;
        let mut max: f64 = 0.0;
        for s in (0..256).step_by(11) {
            for t in (0..256).step_by(19) {
                if s == t {
                    continue;
                }
                let st = router.stretch(NodeId(s), NodeId(t));
                assert!(st >= 1.0 - 1e-9);
                sum += st;
                count += 1;
                max = max.max(st);
            }
        }
        let mean = sum / count as f64;
        assert!(mean > 1.15, "mean VRR stretch {mean}");
        assert!(max > 1.8, "max VRR stretch {max}");
    }

    #[test]
    fn state_is_unbalanced() {
        // Some nodes lie on many vset-paths and accumulate far more state
        // than the median node — the effect shown in Figs. 4–5. (Seed chosen
        // for a clear tail under the offline rand stand-in's stream; the
        // effect holds at almost every seed.)
        let (g, st) = setup(256, 6);
        let mut entries: Vec<usize> = g.nodes().map(|v| st.state_entries(v)).collect();
        entries.sort_unstable();
        let median = entries[entries.len() / 2];
        let max = *entries.last().unwrap();
        assert!(
            max >= 3 * median,
            "max {max} vs median {median}: expected a heavy tail"
        );
    }

    #[test]
    fn construction_is_deterministic() {
        let g = generators::gnm_average_degree(96, 8.0, 6);
        let a = VrrState::build(&g, &DiscoConfig::seeded(6));
        let b = VrrState::build(&g, &DiscoConfig::seeded(6));
        assert_eq!(a.join_order(), b.join_order());
        for v in g.nodes() {
            assert_eq!(a.state_entries(v), b.state_entries(v));
        }
    }
}
