//! Shortest-path / path-vector routing baseline.
//!
//! Classic routing protocols (link state, distance vector, path vector)
//! give optimal routes but require `Θ(n)` routing-table entries per node and
//! at least as much communication to build them (paper §1). This module
//! provides the converged view of such a protocol — the yardstick against
//! which the compact schemes' state, congestion (Figs. 4, 5, 10) and
//! messaging (Fig. 8) are compared. The distributed message exchange itself
//! is `disco_core::path_vector` with [`TableLimit::Unlimited`]
//! (re-exported here for convenience).

pub use disco_core::path_vector::TableLimit;
use disco_graph::{dijkstra, Graph, NodeId, Path, ShortestPathTree, Weight};
use std::cell::RefCell;
use std::collections::HashMap;

/// Converged shortest-path routing state (conceptually, every node's full
/// routing table; materialised lazily per source).
#[derive(Debug, Clone, Default)]
pub struct ShortestPathState {
    n: usize,
}

impl ShortestPathState {
    /// "Build" the converged state (records only the network size; tables
    /// are derived on demand).
    pub fn build(graph: &Graph) -> Self {
        ShortestPathState {
            n: graph.node_count(),
        }
    }

    /// Routing-table entries per node: one per destination.
    pub fn state_entries(&self, _v: NodeId) -> usize {
        self.n.saturating_sub(1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Router producing true shortest paths (stretch 1 by construction).
pub struct ShortestPathRouter<'a> {
    graph: &'a Graph,
    trees: RefCell<HashMap<NodeId, ShortestPathTree>>,
}

impl<'a> ShortestPathRouter<'a> {
    /// A router over `graph`.
    pub fn new(graph: &'a Graph) -> Self {
        ShortestPathRouter {
            graph,
            trees: RefCell::new(HashMap::new()),
        }
    }

    /// Shortest-path distance between two nodes.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        self.with_tree(s, |tree| tree.distance(t).expect("connected graph"))
    }

    /// The route taken: the shortest path itself.
    pub fn route(&self, s: NodeId, t: NodeId) -> Path {
        if s == t {
            return Path::trivial(s);
        }
        self.with_tree(s, |tree| tree.path_to(t).expect("connected graph"))
    }

    fn with_tree<R>(&self, s: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let mut cache = self.trees.borrow_mut();
        let tree = cache.entry(s).or_insert_with(|| dijkstra(self.graph, s));
        f(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    #[test]
    fn state_is_n_minus_one_entries() {
        let g = generators::gnm_connected(100, 400, 1);
        let st = ShortestPathState::build(&g);
        assert_eq!(st.node_count(), 100);
        assert_eq!(st.state_entries(NodeId(5)), 99);
    }

    #[test]
    fn routes_are_shortest() {
        let g = generators::geometric_connected(200, 8.0, 2);
        let router = ShortestPathRouter::new(&g);
        for s in (0..200).step_by(29) {
            for t in (0..200).step_by(37) {
                let p = router.route(NodeId(s), NodeId(t));
                assert_eq!(p.source(), NodeId(s));
                assert_eq!(p.destination(), NodeId(t));
                assert!((p.length(&g) - router.distance(NodeId(s), NodeId(t))).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let g = generators::gnm_connected(80, 320, 3);
        let router = ShortestPathRouter::new(&g);
        for s in (0..80).step_by(9) {
            for t in (0..80).step_by(11) {
                assert!(
                    (router.distance(NodeId(s), NodeId(t)) - router.distance(NodeId(t), NodeId(s)))
                        .abs()
                        < 1e-9
                );
            }
        }
    }
}
