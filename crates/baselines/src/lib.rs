//! # disco-baselines
//!
//! The routing protocols the Disco paper compares against in §5:
//!
//! * [`s4`] — S4 (Mao et al., NSDI 2007): a distributed adaptation of the
//!   Thorup–Zwick *cluster* scheme with uniform-random landmarks. Its
//!   clusters have no size cap, which is exactly what breaks the per-node
//!   state bound on topologies with central nodes (paper §4.2 and Fig. 2);
//!   its first packet detours through a directory landmark, which is what
//!   breaks first-packet stretch.
//! * [`vrr`] — Virtual Ring Routing (Caesar et al., SIGCOMM 2006): routing
//!   on flat identifiers by maintaining physical paths between virtual-ring
//!   neighbors and forwarding greedily in identifier space. Provides no
//!   bound on state or stretch (paper §3, Figs. 4–5).
//! * [`shortest_path`] — classic shortest-path / path-vector routing:
//!   optimal stretch, `Θ(n)` state per node, used as the yardstick for
//!   state, congestion and messaging.
//!
//! All three expose the same shape of API as `disco-core`: a *state*
//! constructor (the static post-convergence simulator) plus a *router* that
//! produces concrete routes whose length, node sequence and per-node state
//! the `disco-metrics` crate measures.

pub mod s4;
pub mod shortest_path;
pub mod vrr;

pub use s4::{S4Router, S4State};
pub use shortest_path::{ShortestPathRouter, ShortestPathState};
pub use vrr::{VrrRouter, VrrState};
