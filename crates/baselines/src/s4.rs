//! S4: Small State and Small Stretch routing (Mao et al., NSDI 2007),
//! as evaluated by the Disco paper (§4.2 "Comparison with S4", §5).
//!
//! S4 is a distributed adaptation of the Thorup–Zwick *cluster* scheme:
//!
//! * landmarks are selected uniformly at random (same rule as Disco),
//! * every node `v` knows shortest paths to all landmarks and to its
//!   **cluster** `C(v) = { w : d(v, w) < d(w, ℓ_w) }` — all nodes closer to
//!   `v` than to their own closest landmark,
//! * the address of `w` is its closest landmark `ℓ_w`; a consistent-hashing
//!   *location directory* over the landmarks maps flat names to addresses,
//! * **later packets**: if `t ∈ C(s)` (or `t` is a landmark) route
//!   directly, otherwise route `s ; ℓ_t ; t` — worst-case stretch 3,
//!   because `t ∉ C(s)` implies `d(t, ℓ_t) ≤ d(s, t)`,
//! * **first packet**: `s` does not know `ℓ_t`, so the packet detours via
//!   the directory landmark that owns `h(t)` — with *no* bound on stretch,
//! * "To-Destination" shortcutting: any node on the way that has `t` in its
//!   cluster routes directly to it.
//!
//! The crucial difference from Disco: clusters have no size cap, so a node
//! that is "central" (close to many nodes that are far from their own
//! landmarks) accumulates `Θ(n)` entries — the paper's footnote-6 tree and
//! its Fig. 2 Internet topologies both show this, and both are reproduced
//! in this crate's tests and in the `fig02`/`fig07` experiments.

use disco_core::config::DiscoConfig;
use disco_core::hash::NameHasher;
use disco_core::landmark;
use disco_core::name::FlatName;
use disco_graph::{dijkstra, dijkstra_bounded, multi_source_dijkstra, Graph, NodeId, Path, Weight};
use std::cell::RefCell;
use std::collections::HashMap;

/// Post-convergence S4 state for an entire network.
#[derive(Debug, Clone)]
pub struct S4State {
    landmarks: Vec<NodeId>,
    is_landmark: Vec<bool>,
    landmark_index: HashMap<NodeId, usize>,
    closest_landmark: Vec<NodeId>,
    closest_landmark_dist: Vec<Weight>,
    /// Cluster of each node: destination → distance.
    clusters: Vec<HashMap<NodeId, Weight>>,
    /// Per landmark: distance from the landmark to every node.
    landmark_dist: Vec<Vec<Weight>>,
    /// Per landmark: parent of every node in the landmark's SPT.
    landmark_parent: Vec<Vec<u32>>,
    /// Directory owner (by consistent hashing over landmark ids) per node.
    directory_owner: Vec<NodeId>,
    names: Vec<FlatName>,
}

impl S4State {
    /// Build converged S4 state. Uses the same landmark election as Disco
    /// (so comparisons share the landmark set) and synthetic flat names.
    pub fn build(graph: &Graph, cfg: &DiscoConfig) -> Self {
        let n = graph.node_count();
        assert!(n >= 2);
        let names: Vec<FlatName> = (0..n).map(FlatName::synthetic).collect();
        let landmarks = landmark::select_landmarks(n, cfg);
        let mut is_landmark = vec![false; n];
        for &lm in &landmarks {
            is_landmark[lm.0] = true;
        }
        let landmark_index: HashMap<NodeId, usize> =
            landmarks.iter().enumerate().map(|(i, &l)| (l, i)).collect();

        let closest = multi_source_dijkstra(graph, &landmarks);
        let mut closest_landmark = vec![NodeId(0); n];
        let mut closest_landmark_dist = vec![0.0; n];
        for v in graph.nodes() {
            closest_landmark[v.0] = closest.closest_source(v).expect("connected graph");
            closest_landmark_dist[v.0] = closest.distance(v).unwrap();
        }

        // Landmark SPTs.
        let mut landmark_dist = Vec::with_capacity(landmarks.len());
        let mut landmark_parent = Vec::with_capacity(landmarks.len());
        for &lm in &landmarks {
            let tree = dijkstra(graph, lm);
            let mut dist = vec![Weight::INFINITY; n];
            let mut parent = vec![u32::MAX; n];
            for v in graph.nodes() {
                if let Some(d) = tree.distance(v) {
                    dist[v.0] = d;
                }
                if let Some(p) = tree.parent(v) {
                    parent[v.0] = p.0 as u32;
                }
            }
            landmark_dist.push(dist);
            landmark_parent.push(parent);
        }

        // Clusters: for every w, all nodes strictly closer to w than w's own
        // landmark get w in their cluster. One bounded Dijkstra per node.
        let mut clusters: Vec<HashMap<NodeId, Weight>> = vec![HashMap::new(); n];
        for w in graph.nodes() {
            let bound = closest_landmark_dist[w.0];
            if bound <= 0.0 {
                continue; // w is a landmark; nobody clusters it
            }
            let ball = dijkstra_bounded(graph, w, bound);
            for &v in ball.settled_order() {
                if v != w {
                    clusters[v.0].insert(w, ball.distance(v).unwrap());
                }
            }
        }

        // Location directory: consistent hashing of names onto landmarks.
        let hasher = NameHasher::new(cfg.seed ^ 0x54);
        let mut directory_owner = vec![NodeId(0); n];
        for v in graph.nodes() {
            let h = hasher.hash_name(&names[v.0]);
            let owner = landmarks
                .iter()
                .min_by_key(|&&lm| h.clockwise_distance(hasher.hash_u64(lm.0 as u64)))
                .copied()
                .unwrap();
            directory_owner[v.0] = owner;
        }

        S4State {
            landmarks,
            is_landmark,
            landmark_index,
            closest_landmark,
            closest_landmark_dist,
            clusters,
            landmark_dist,
            landmark_parent,
            directory_owner,
            names,
        }
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Whether `v` is a landmark.
    pub fn is_landmark(&self, v: NodeId) -> bool {
        self.is_landmark[v.0]
    }

    /// `v`'s closest landmark.
    pub fn closest_landmark(&self, v: NodeId) -> NodeId {
        self.closest_landmark[v.0]
    }

    /// `d(v, ℓ_v)`.
    pub fn closest_landmark_distance(&self, v: NodeId) -> Weight {
        self.closest_landmark_dist[v.0]
    }

    /// `v`'s cluster (destination → distance).
    pub fn cluster(&self, v: NodeId) -> &HashMap<NodeId, Weight> {
        &self.clusters[v.0]
    }

    /// Flat name of `v`.
    pub fn name_of(&self, v: NodeId) -> &FlatName {
        &self.names[v.0]
    }

    /// The directory landmark that stores `v`'s location.
    pub fn directory_owner(&self, v: NodeId) -> NodeId {
        self.directory_owner[v.0]
    }

    /// Distance from landmark `lm` to `v`.
    pub fn landmark_distance(&self, lm: NodeId, v: NodeId) -> Weight {
        self.landmark_dist[self.landmark_index[&lm]][v.0]
    }

    /// Shortest path from landmark `lm` to `v` along `lm`'s SPT.
    pub fn landmark_path(&self, lm: NodeId, v: NodeId) -> Path {
        let parent = &self.landmark_parent[self.landmark_index[&lm]];
        let mut nodes = vec![v];
        let mut cur = v;
        while cur != lm {
            let p = parent[cur.0];
            assert!(p != u32::MAX, "{v} unreachable from landmark {lm}");
            cur = NodeId(p as usize);
            nodes.push(cur);
        }
        nodes.reverse();
        Path::new(nodes)
    }

    /// Number of directory entries stored at landmark `lm`.
    pub fn directory_entries_at(&self, lm: NodeId) -> usize {
        self.directory_owner.iter().filter(|&&o| o == lm).count()
    }

    /// Data-plane routing-table entries at node `v`: landmark routes,
    /// cluster routes and (for landmarks) the directory shard.
    pub fn state_entries(&self, v: NodeId) -> usize {
        let mut total = self.landmarks.len() + self.clusters[v.0].len();
        if self.is_landmark(v) {
            total += self.directory_entries_at(v);
        }
        total
    }
}

/// Router over converged S4 state.
pub struct S4Router<'a> {
    graph: &'a Graph,
    state: &'a S4State,
    /// Per-source Dijkstra trees toward sampled destinations (for cluster
    /// path extraction and ground truth).
    trees: RefCell<HashMap<NodeId, disco_graph::ShortestPathTree>>,
}

impl<'a> S4Router<'a> {
    /// Create a router over `graph` and converged `state`.
    pub fn new(graph: &'a Graph, state: &'a S4State) -> Self {
        S4Router {
            graph,
            state,
            trees: RefCell::new(HashMap::new()),
        }
    }

    /// The converged state.
    pub fn state(&self) -> &S4State {
        self.state
    }

    /// Ground-truth shortest distance.
    pub fn true_distance(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        self.with_tree(s, |tree| tree.distance(t).expect("connected graph"))
    }

    fn with_tree<R>(&self, s: NodeId, f: impl FnOnce(&disco_graph::ShortestPathTree) -> R) -> R {
        let mut cache = self.trees.borrow_mut();
        let tree = cache.entry(s).or_insert_with(|| dijkstra(self.graph, s));
        f(tree)
    }

    fn shortest_path(&self, s: NodeId, t: NodeId) -> Path {
        if s == t {
            return Path::trivial(s);
        }
        self.with_tree(s, |tree| tree.path_to(t).expect("connected graph"))
    }

    fn path_to_landmark(&self, v: NodeId, lm: NodeId) -> Path {
        if v == lm {
            return Path::trivial(v);
        }
        self.state.landmark_path(lm, v).reversed()
    }

    /// Apply S4's To-Destination shortcutting to a node sequence.
    fn shortcut_to_destination(&self, nodes: Vec<NodeId>) -> Vec<NodeId> {
        let t = *nodes.last().unwrap();
        for (i, &u) in nodes.iter().enumerate() {
            if u == t {
                return nodes[..=i].to_vec();
            }
            if self.state.cluster(u).contains_key(&t) || self.state.is_landmark(t) {
                let tail = self.shortest_path(u, t);
                let mut out = nodes[..i].to_vec();
                out.extend_from_slice(tail.nodes());
                return out;
            }
        }
        nodes
    }

    fn finish(&self, nodes: Vec<NodeId>) -> (Vec<NodeId>, Weight) {
        let nodes = self.shortcut_to_destination(nodes);
        let len = if nodes.len() < 2 {
            0.0
        } else {
            Path::new(nodes.clone()).length(self.graph)
        };
        (nodes, len)
    }

    /// Later-packet route (the sender has cached `ℓ_t`): worst-case
    /// stretch 3. Returns (node sequence, length).
    pub fn route_later_packet(&self, s: NodeId, t: NodeId) -> (Vec<NodeId>, Weight) {
        if s == t {
            return (vec![s], 0.0);
        }
        if self.state.is_landmark(t) || self.state.cluster(s).contains_key(&t) {
            let p = self.shortest_path(s, t);
            let len = p.length(self.graph);
            return (p.nodes().to_vec(), len);
        }
        let lm = self.state.closest_landmark(t);
        let to_lm = self.path_to_landmark(s, lm);
        let tail = self.state.landmark_path(lm, t);
        let mut nodes = to_lm.nodes().to_vec();
        nodes.extend_from_slice(&tail.nodes()[1..]);
        self.finish(nodes)
    }

    /// First-packet route: the packet detours via the directory landmark
    /// that stores `t`'s location, so stretch is unbounded. Returns
    /// (node sequence, length).
    pub fn route_first_packet(&self, s: NodeId, t: NodeId) -> (Vec<NodeId>, Weight) {
        if s == t {
            return (vec![s], 0.0);
        }
        if self.state.is_landmark(t) || self.state.cluster(s).contains_key(&t) {
            return self.route_later_packet(s, t);
        }
        let dir = self.state.directory_owner(t);
        let lm = self.state.closest_landmark(t);
        let to_dir = self.path_to_landmark(s, dir);
        // Directory landmark forwards toward ℓ_t, then ℓ_t delivers.
        let dir_to_lm = self.path_to_landmark(dir, lm);
        let tail = self.state.landmark_path(lm, t);
        let mut nodes = to_dir.nodes().to_vec();
        nodes.extend_from_slice(&dir_to_lm.nodes()[1..]);
        nodes.extend_from_slice(&tail.nodes()[1..]);
        self.finish(nodes)
    }

    /// First-packet stretch for a pair.
    pub fn first_packet_stretch(&self, s: NodeId, t: NodeId) -> f64 {
        let d = self.true_distance(s, t);
        let (_, len) = self.route_first_packet(s, t);
        if d <= 0.0 {
            1.0
        } else {
            len / d
        }
    }

    /// Later-packet stretch for a pair.
    pub fn later_packet_stretch(&self, s: NodeId, t: NodeId) -> f64 {
        let d = self.true_distance(s, t);
        let (_, len) = self.route_later_packet(s, t);
        if d <= 0.0 {
            1.0
        } else {
            len / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    fn setup(n: usize, seed: u64) -> (Graph, S4State) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let st = S4State::build(&g, &DiscoConfig::seeded(seed));
        (g, st)
    }

    #[test]
    fn cluster_definition_holds() {
        let (g, st) = setup(128, 1);
        // Spot-check: w ∈ C(v) iff d(v,w) < d(w, ℓ_w).
        for v in g.nodes().step_by(11) {
            let tree = dijkstra(&g, v);
            for w in g.nodes() {
                if w == v {
                    continue;
                }
                let expected = tree.distance(w).unwrap() < st.closest_landmark_distance(w) - 1e-12;
                assert_eq!(st.cluster(v).contains_key(&w), expected, "v={v} w={w}");
            }
        }
    }

    #[test]
    fn later_packet_stretch_at_most_3() {
        let (g, st) = setup(256, 2);
        let router = S4Router::new(&g, &st);
        for s in (0..256).step_by(17) {
            for t in (0..256).step_by(23) {
                if s == t {
                    continue;
                }
                let stretch = router.later_packet_stretch(NodeId(s), NodeId(t));
                assert!(stretch <= 3.0 + 1e-9, "stretch {stretch} for {s}->{t}");
            }
        }
    }

    #[test]
    fn first_packet_can_exceed_later_packet_stretch() {
        let (g, st) = setup(256, 3);
        let router = S4Router::new(&g, &st);
        let mut any_worse = false;
        let mut max_first: f64 = 0.0;
        for s in (0..256).step_by(7) {
            for t in (0..256).step_by(13) {
                if s == t {
                    continue;
                }
                let f = router.first_packet_stretch(NodeId(s), NodeId(t));
                let l = router.later_packet_stretch(NodeId(s), NodeId(t));
                assert!(f >= 1.0 - 1e-9 && l >= 1.0 - 1e-9);
                max_first = max_first.max(f);
                if f > l + 1e-9 {
                    any_worse = true;
                }
            }
        }
        assert!(
            any_worse,
            "the directory detour should hurt some first packets"
        );
        assert!(max_first > 1.5, "max first-packet stretch {max_first}");
    }

    #[test]
    fn routes_are_valid_and_end_at_destination() {
        let (g, st) = setup(200, 4);
        let router = S4Router::new(&g, &st);
        for s in (0..200).step_by(31) {
            for t in (0..200).step_by(41) {
                for (nodes, len) in [
                    router.route_first_packet(NodeId(s), NodeId(t)),
                    router.route_later_packet(NodeId(s), NodeId(t)),
                ] {
                    assert_eq!(nodes.first(), Some(&NodeId(s)));
                    assert_eq!(nodes.last(), Some(&NodeId(t)));
                    for w in nodes.windows(2) {
                        assert!(g.has_edge(w[0], w[1]));
                    }
                    assert!(len >= router.true_distance(NodeId(s), NodeId(t)) - 1e-9);
                }
            }
        }
    }

    #[test]
    fn adversarial_tree_explodes_root_cluster() {
        // The paper's footnote-6 construction: S4's root cluster grows to
        // Θ(n) while Disco's vicinity stays at O(√(n log n)).
        let branch = 24; // n = 1 + 24 + 576 = 601
        let g = generators::s4_adversarial_tree(branch);
        let cfg = DiscoConfig::seeded(5);
        let s4 = S4State::build(&g, &cfg);
        let disco = disco_core::static_state::DiscoState::build(&g, &cfg);
        let n = g.node_count();

        let s4_root_entries = s4.state_entries(NodeId(0));
        let breakdown = disco.state_breakdown(&g, NodeId(0));
        // The S4 root stores a constant fraction of all grandchildren.
        assert!(
            s4_root_entries > n / 3,
            "S4 root has only {s4_root_entries} entries for n={n}"
        );
        // Disco's root stays within a small multiple of √(n log n).
        let bound = 8.0 * ((n as f64) * (n as f64).ln()).sqrt();
        assert!(
            (breakdown.disco_total() as f64) < bound,
            "Disco root has {} entries (bound {bound:.0})",
            breakdown.disco_total()
        );
        // Fair (name-dependent vs name-dependent) comparison: the S4 root
        // holds several times NDDisco's bounded state.
        assert!(
            s4_root_entries > 2 * breakdown.nddisco_total(),
            "S4 root {s4_root_entries} vs NDDisco root {}",
            breakdown.nddisco_total()
        );
    }

    #[test]
    fn directory_covers_every_node() {
        let (_, st) = setup(150, 6);
        let total: usize = st
            .landmarks()
            .iter()
            .map(|&lm| st.directory_entries_at(lm))
            .sum();
        assert_eq!(total, 150);
    }

    #[test]
    fn state_entries_count_components() {
        let (_, st) = setup(128, 7);
        for v in (0..128).step_by(13).map(NodeId) {
            let entries = st.state_entries(v);
            assert!(entries >= st.landmarks().len());
            if !st.is_landmark(v) {
                assert_eq!(entries, st.landmarks().len() + st.cluster(v).len());
            }
        }
    }
}
