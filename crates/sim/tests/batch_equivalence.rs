//! Batched-vs-singleton message-plane equivalence.
//!
//! The batched message plane (`Action::SendBatch` → `EventKind::DeliverBatch`,
//! `Action::Flood`) must be *observationally identical* to sending every
//! message as its own queue entry: same per-node receive logs (times,
//! senders, payloads, order), same `MessageStats` (per-message send/receive
//! counts and byte totals), same in-flight loss accounting — including a
//! batch whose link dies between send and delivery losing every message in
//! it, one drop per message — and the same end time, under churn. The only
//! permitted difference is the number of queue pops (`events_processed`):
//! a batch is one entry.
//!
//! The property drives a gossiping protocol through random topologies and
//! seeded churn twice — once recording fan-out as batches/floods, once as
//! per-message sends — and compares the full observable trace.

use disco_graph::{generators, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Context, Engine, Protocol, RunReport, TopologyEvent};
use proptest::prelude::*;
use rand::Rng;

/// `(hops-to-live, tag)` — hops drive a bounded re-flood cascade so the
/// two runs stay busy while churn events land.
type Msg = (u8, u32);

/// One receive-log entry: `(arrival time bits, sender, hops, tag)`.
type LogEntry = (u64, NodeId, u8, u32);

struct Blaster {
    batched: bool,
    log: Vec<LogEntry>,
}

impl Blaster {
    fn fan_out(&self, msg: Msg, size: usize, ctx: &mut Context<'_, Msg>) {
        if self.batched {
            ctx.flood_sized(msg, size);
        } else {
            // The pre-batching idiom: clone-and-send per neighbor, in
            // adjacency order.
            for nb in ctx.neighbors() {
                ctx.send_sized(nb, msg, size);
            }
        }
    }

    fn dump_to(&self, peer: NodeId, msgs: Vec<(Msg, usize)>, ctx: &mut Context<'_, Msg>) {
        if self.batched {
            ctx.send_batch(peer, msgs);
        } else {
            for (m, s) in msgs {
                ctx.send_sized(peer, m, s);
            }
        }
    }
}

impl Protocol for Blaster {
    type Message = Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.node_id();
        if !me.0.is_multiple_of(7) {
            return;
        }
        // A table-dump-like batch of individually-sized messages to the
        // first neighbor…
        if let Some(&peer) = ctx.neighbors().first() {
            let dump: Vec<(Msg, usize)> = (0..12u32)
                .map(|i| ((0u8, 1000 + i), 10 + i as usize))
                .collect();
            self.dump_to(peer, dump, ctx);
        }
        // …and a flood seeding the cascade.
        self.fan_out((2, me.0 as u32), 33, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        self.log.push((ctx.now().to_bits(), from, msg.0, msg.1));
        let (hops, tag) = msg;
        if hops == 0 {
            return;
        }
        // Re-flood with one hop less, and answer the sender with a small
        // batch (the link exists right now: delivery just validated it).
        self.fan_out((hops - 1, tag.wrapping_mul(31).wrapping_add(7)), 21, ctx);
        let reply: Vec<(Msg, usize)> = (0..3u32).map(|i| ((0u8, tag ^ i), 5)).collect();
        self.dump_to(from, reply, ctx);
    }
}

/// Seeded churn aimed at in-flight messages: cut the batch sender's first
/// link mid-flight (per-message loss inside a batch), bounce another link
/// down and up before delivery (edge-id mismatch), then random link cuts
/// and node departures through the cascade.
fn churn_events(g: &disco_graph::Graph, seed: u64) -> Vec<(f64, TopologyEvent)> {
    let mut ev = Vec::new();
    // Node 0 dumped a 12-message batch to its first neighbor at t=0; the
    // delivery is at 1.01 (unit weight + processing delay). Cutting the
    // link at 0.5 loses the whole batch in flight.
    let nb0 = g.neighbors(NodeId(0))[0].node;
    ev.push((
        0.5,
        TopologyEvent::LinkDown {
            u: NodeId(0),
            v: nb0,
        },
    ));
    // Node 7's first link dies and comes back before delivery: the fresh
    // edge id must not resurrect the in-flight messages.
    if g.node_count() > 7 {
        let nb7 = g.neighbors(NodeId(7))[0].node;
        ev.push((
            0.3,
            TopologyEvent::LinkDown {
                u: NodeId(7),
                v: nb7,
            },
        ));
        ev.push((
            0.6,
            TopologyEvent::LinkUp {
                u: NodeId(7),
                v: nb7,
                weight: 1.0,
            },
        ));
    }
    let mut rng = rng_for(seed, 0xba7c, 0);
    for k in 0..6u64 {
        let t = 0.2 + rng.gen::<f64>() * 6.0;
        let v = NodeId(rng.gen_range(0..g.node_count()));
        if k % 3 == 2 {
            ev.push((t, TopologyEvent::NodeLeave { node: v }));
        } else if g.degree(v) > 0 {
            let peer = g.neighbors(v)[rng.gen_range(0..g.degree(v))].node;
            ev.push((t, TopologyEvent::LinkDown { u: v, v: peer }));
        }
    }
    ev
}

fn run(seed: u64, batched: bool) -> (RunReport, Vec<Vec<LogEntry>>) {
    let n = 24 + (seed as usize % 17);
    let g = generators::gnm_connected(n, n * 3, seed);
    let mut engine = Engine::new(&g, |_| Blaster {
        batched,
        log: Vec::new(),
    });
    for (t, ev) in churn_events(&g, seed) {
        engine.schedule_topology(t, ev);
    }
    let report = engine.run();
    let logs = engine.nodes().iter().map(|b| b.log.clone()).collect();
    (report, logs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Same seed, batched vs singleton fan-out: every observable of the
    /// run must match — only the queue-pop count may differ.
    #[test]
    fn batched_run_is_observationally_identical(seed in 0u64..10_000) {
        let (single, single_logs) = run(seed, false);
        let (batched, batched_logs) = run(seed, true);
        prop_assert_eq!(&single_logs, &batched_logs, "receive logs diverged");
        prop_assert_eq!(&single.stats, &batched.stats, "MessageStats diverged");
        prop_assert_eq!(single.messages_dropped, batched.messages_dropped);
        prop_assert_eq!(single.messages_delivered, batched.messages_delivered);
        prop_assert_eq!(single.topology_events, batched.topology_events);
        prop_assert_eq!(single.end_time.to_bits(), batched.end_time.to_bits());
        prop_assert!(single.converged && batched.converged);
        // The 12-message dump was cut mid-flight: per-message loss inside
        // the batch, so both runs drop at least those 12.
        prop_assert!(batched.messages_dropped >= 12, "expected in-flight batch loss");
        // Batching must actually reduce queue entries.
        prop_assert!(
            batched.events_processed < single.events_processed,
            "batched run popped {} events vs {} — nothing was batched",
            batched.events_processed,
            single.events_processed
        );
    }
}
