//! The sharded engine's contract, property-tested: for ANY churn schedule
//! and ANY shard count, the parallel run is *byte-identical* to the
//! sequential engine — per-node upcall logs (times captured as f64 bit
//! patterns), `MessageStats`, delivered/dropped counts, topology events
//! and the simulation end time. Conservative lookahead plus logical event
//! keys make worker interleaving unobservable; this test is the lock on
//! that argument.

use disco_graph::{generators, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Context, Engine, Protocol, ShardProtocol, ShardedEngine, TopologyEvent};
use proptest::prelude::*;
use rand::Rng;

/// A deliberately chatty protocol: floods on start, re-floods on receipt
/// (bounded by hop count), fires cascading timers, and reacts to link
/// flaps — so logs cover every upcall kind the engine dispatches.
#[derive(Default)]
struct Chatter {
    /// Every upcall, logged as `(time bits, peer, tag)` — exact f64 bit
    /// patterns, so "equal" means byte-identical schedules.
    log: Vec<LogEntry>,
}

/// `(time bits, peer, tag)` — one logged upcall.
type LogEntry = (u64, usize, u32);

#[derive(Clone)]
struct Hello(u32);

impl Protocol for Chatter {
    type Message = Hello;

    fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
        ctx.set_timer(0.5 + (ctx.node_id().0 % 3) as f64 * 0.75, 0);
        ctx.broadcast(Hello(0));
    }

    fn on_message(&mut self, from: NodeId, msg: Hello, ctx: &mut Context<'_, Hello>) {
        self.log.push((ctx.now().to_bits(), from.0, msg.0));
        if msg.0 < 2 {
            ctx.broadcast(Hello(msg.0 + 1));
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Hello>) {
        self.log
            .push((ctx.now().to_bits(), usize::MAX, token as u32));
        if token < 2 {
            ctx.set_timer(1.25, token + 1);
            ctx.broadcast(Hello(2));
        }
    }

    fn on_neighbor_up(&mut self, peer: NodeId, ctx: &mut Context<'_, Hello>) {
        self.log.push((ctx.now().to_bits(), peer.0, 1000));
        ctx.send(peer, Hello(2));
    }

    fn on_neighbor_down(&mut self, peer: NodeId, ctx: &mut Context<'_, Hello>) {
        self.log.push((ctx.now().to_bits(), peer.0, 1001));
        ctx.broadcast(Hello(2));
    }
}

impl ShardProtocol for Chatter {
    type Wire = Hello;
    fn to_wire(msg: Hello) -> Hello {
        msg
    }
    fn from_wire(wire: Hello) -> Hello {
        wire
    }
}

/// A random-but-valid churn schedule: leaves keep a quorum alive, joins
/// resurrect departed nodes with fresh links to live peers. All link
/// weights equal the graph generator's (1.0), so every event clears the
/// lookahead window at any shard count.
fn random_schedule(n: usize, events: usize, seed: u64) -> Vec<(f64, TopologyEvent)> {
    let mut rng = rng_for(seed, 0x5eed, 1);
    let mut alive: Vec<bool> = vec![true; n];
    let mut departed: Vec<usize> = Vec::new();
    let mut schedule = Vec::with_capacity(events);
    let mut t = 0.0f64;
    for _ in 0..events {
        t += 0.25 + rng.gen_range(0..32u32) as f64 / 16.0;
        let alive_count = alive.iter().filter(|&&a| a).count();
        let rejoin = !departed.is_empty() && (alive_count <= n / 2 || rng.gen_range(0..3u32) == 0);
        if rejoin {
            let node = departed.swap_remove(rng.gen_range(0..departed.len()));
            let peers: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
            let a = peers[rng.gen_range(0..peers.len())];
            let b = peers[rng.gen_range(0..peers.len())];
            let mut links = vec![(NodeId(a), 1.0)];
            if b != a {
                links.push((NodeId(b), 1.0));
            }
            alive[node] = true;
            schedule.push((
                t,
                TopologyEvent::NodeJoin {
                    node: NodeId(node),
                    links,
                },
            ));
        } else {
            let live: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
            let node = live[rng.gen_range(0..live.len())];
            alive[node] = false;
            departed.push(node);
            schedule.push((t, TopologyEvent::NodeLeave { node: NodeId(node) }));
        }
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, max_shrink_iters: 0 })]

    /// Sequential vs sharded at every shard count the ISSUE names, on a
    /// fresh random churn schedule per case.
    fn sharded_is_byte_identical_to_sequential(
        seed in 0u64..100_000,
        events in 4usize..12,
    ) {
        let n = 32;
        let g = generators::gnm_connected(n, 96, seed ^ 0xface);
        let schedule = random_schedule(n, events, seed);

        let mut seq = Engine::new(&g, |_| Chatter::default());
        for (at, ev) in &schedule {
            seq.schedule_topology(*at, ev.clone());
        }
        let seq_report = seq.run();
        let seq_logs: Vec<Vec<LogEntry>> =
            seq.nodes().iter().map(|c| c.log.clone()).collect();

        for shards in [1usize, 2, 3, 8] {
            let mut sh = ShardedEngine::new(&g, shards, seed, |_| Chatter::default());
            for (at, ev) in &schedule {
                sh.schedule_topology(*at, ev.clone()).unwrap();
            }
            let report = sh.run();

            prop_assert_eq!(report.messages_delivered, seq_report.messages_delivered,
                "delivered diverged at shards={}", shards);
            prop_assert_eq!(report.messages_dropped, seq_report.messages_dropped,
                "drops diverged at shards={}", shards);
            prop_assert_eq!(report.topology_events, seq_report.topology_events);
            prop_assert_eq!(&report.stats, &seq_report.stats,
                "MessageStats diverged at shards={}", shards);
            prop_assert_eq!(report.end_time.to_bits(), seq_report.end_time.to_bits(),
                "end time diverged at shards={}", shards);

            // Per-node upcall logs, collected from each owner shard.
            let mut sh_logs: Vec<Option<Vec<LogEntry>>> = vec![None; n];
            for shard in 0..shards {
                let owned: Vec<usize> =
                    (0..n).filter(|&v| sh.owner_of(NodeId(v)) == shard).collect();
                let rows: Vec<(usize, Vec<LogEntry>)> = sh.visit(shard, move |e| {
                    let nodes = e.nodes();
                    owned.into_iter().map(|v| (v, nodes[v].log.clone())).collect()
                });
                for (v, log) in rows {
                    sh_logs[v] = Some(log);
                }
            }
            for (v, log) in sh_logs.into_iter().enumerate() {
                let log = log.expect("every node has exactly one owner shard");
                prop_assert_eq!(&log, &seq_logs[v],
                    "node {} upcall log diverged at shards={}", v, shards);
            }
        }
    }
}
