//! The timer wheel's contract: pop order identical to the reference
//! `BinaryHeap` queue — `(time, key, seq)`, logical key then FIFO on
//! full ties — on arbitrary interleavings of pushes, pops, peeks and
//! cancellations.

use disco_graph::NodeId;
use disco_sim::event::{BinaryHeapQueue, Event, EventKind, EventQueue, TimerWheel};
use disco_sim::rng::rng_for;
use proptest::prelude::*;
use rand::Rng;

fn timer(token: u64) -> EventKind<u32> {
    EventKind::Timer {
        node: NodeId((token % 7) as usize),
        token,
        epoch: 0,
    }
}

fn key(e: &Event<u32>) -> (f64, u64, u64, u64) {
    let token = match e.kind {
        EventKind::Timer { token, .. } => token,
        _ => unreachable!("stream pushes timers only"),
    };
    (e.time, e.key, e.seq, token)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, max_shrink_iters: 0 })]

    /// Drive both queues through the same random schedule and require
    /// identical observable behavior at every step.
    fn wheel_matches_heap_ordering(seed in 0u64..1_000_000) {
        let mut rng = rng_for(seed, 0x9e9e, 0);
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        let mut now = 0.0f64;
        let mut next_token = 0u64;
        // Live handles, kept in push order so cancels hit both queues'
        // view of the same event.
        let mut handles = Vec::new();
        for _ in 0..500 {
            match rng.gen_range(0..10u32) {
                // Push (with a bias): delays mix exact ties, sub-tick
                // fractions, whole ticks, and far-future overflow times.
                0..=5 => {
                    let delay = match rng.gen_range(0..5u32) {
                        0 => 0.0,
                        1 => rng.gen_range(0..1000u64) as f64 / 256.0,
                        2 => rng.gen_range(0..50u64) as f64,
                        3 => 0.01,
                        _ => 100.0 + rng.gen_range(0..100_000u64) as f64,
                    };
                    let t = next_token;
                    next_token += 1;
                    // A small logical-key space forces plenty of
                    // (time, key) ties that fall through to seq order.
                    let k = rng.gen_range(0..4u64);
                    let w = wheel.push(now + delay, k, timer(t));
                    let h = heap.push(now + delay, k, timer(t));
                    handles.push((w, h));
                }
                6 | 7 => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some((_, ea)), Some((_, eb))) => {
                            prop_assert_eq!(key(&ea), key(&eb));
                            now = ea.time;
                        }
                        (a, b) => {
                            prop_assert!(false, "pop divergence: {} vs {}", a.is_some(), b.is_some())
                        }
                    }
                }
                8 => {
                    if !handles.is_empty() {
                        let i = rng.gen_range(0..handles.len());
                        let (w, h) = handles.swap_remove(i);
                        prop_assert_eq!(wheel.cancel(w), heap.cancel(h));
                    }
                }
                _ => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain to empty: the full remaining order must agree.
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some((_, ea)), Some((_, eb))) => prop_assert_eq!(key(&ea), key(&eb)),
                (a, b) => prop_assert!(false, "drain divergence: {} vs {}", a.is_some(), b.is_some()),
            }
        }
        prop_assert_eq!(wheel.dead_refs(), 0, "drained wheel must hold no residue");
    }
}
