//! Engine determinism and quiescence guarantees: a run is a pure function
//! of `(graph, protocol, seed)`, equal-timestamp events are delivered in
//! scheduling order, and topology mutations replay identically.

use disco_graph::{generators, GraphBuilder, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Context, Engine, Protocol, RunReport, TopologyEvent};
use rand::Rng;

/// A protocol with plenty of internal nondeterminism *sources* (hash maps,
/// rng) that must still produce identical runs from the same seed: each
/// node gossips random tokens to random neighbors for a few rounds.
struct Gossip {
    seed: u64,
    rounds: u32,
    received: Vec<(NodeId, u64)>,
}

impl Gossip {
    fn new(id: NodeId, seed: u64) -> Self {
        Gossip {
            seed: disco_sim::seed_for(seed, 0x90, id.0 as u64),
            rounds: 0,
            received: Vec::new(),
        }
    }

    fn spray(&mut self, ctx: &mut Context<'_, u64>) {
        let mut rng = rng_for(self.seed, u64::from(self.rounds), 0);
        let neighbors = ctx.neighbors();
        if neighbors.is_empty() {
            return;
        }
        for _ in 0..3 {
            let to = neighbors[rng.gen_range(0..neighbors.len())];
            ctx.send(to, rng.gen());
        }
    }
}

impl Protocol for Gossip {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.spray(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
        self.received.push((from, msg));
        if self.rounds < 4 {
            self.rounds += 1;
            self.spray(ctx);
        }
    }
}

fn gossip_run(seed: u64, events: &[(f64, TopologyEvent)]) -> (RunReport, Vec<Vec<(NodeId, u64)>>) {
    let g = generators::gnm_connected(48, 192, seed);
    let mut e = Engine::new(&g, move |v| Gossip::new(v, seed));
    for (t, ev) in events {
        e.schedule_topology(*t, ev.clone());
    }
    let report = e.run();
    let logs = e.nodes().iter().map(|n| n.received.clone()).collect();
    (report, logs)
}

#[test]
fn identical_run_reports_for_same_seed() {
    let (ra, la) = gossip_run(3, &[]);
    let (rb, lb) = gossip_run(3, &[]);
    assert!(ra.converged);
    // The whole report — event counts, end time, per-node message stats —
    // must be identical, and so must every node's full receive log.
    assert_eq!(ra, rb);
    assert_eq!(la, lb);
    // A different seed must actually change the run.
    let (rc, lc) = gossip_run(4, &[]);
    assert!(ra.stats != rc.stats || la != lc);
}

#[test]
fn identical_runs_under_topology_events() {
    let events = vec![
        (5.0, TopologyEvent::NodeLeave { node: NodeId(7) }),
        (
            9.0,
            TopologyEvent::LinkDown {
                u: NodeId(1),
                v: NodeId(2),
            },
        ),
        (
            15.0,
            TopologyEvent::NodeJoin {
                node: NodeId(7),
                links: vec![(NodeId(3), 1.0), (NodeId(11), 2.0)],
            },
        ),
    ];
    let (ra, la) = gossip_run(9, &events);
    let (rb, lb) = gossip_run(9, &events);
    assert!(ra.converged);
    assert_eq!(ra.topology_events, 3);
    assert_eq!(ra, rb);
    assert_eq!(la, lb);
}

/// Equal-timestamp events must be delivered in the order they were
/// scheduled, end to end through the engine (not just inside the queue).
#[test]
fn equal_timestamp_events_deliver_in_scheduling_order() {
    struct Collector {
        tokens: Vec<u64>,
    }
    impl Protocol for Collector {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.node_id() == NodeId(0) {
                // All timers at the same instant, scheduled 5..0.
                for token in (0..6).rev() {
                    ctx.set_timer(1.0, token);
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: u64, _c: &mut Context<'_, u64>) {}
        fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, u64>) {
            self.tokens.push(token);
        }
    }
    let g = generators::line(2);
    let mut e = Engine::new(&g, |_| Collector { tokens: vec![] });
    let report = e.run();
    assert!(report.converged);
    assert_eq!(e.nodes()[0].tokens, vec![5, 4, 3, 2, 1, 0]);
}

/// Messages sent in one upcall to the same neighbor arrive in FIFO order.
#[test]
fn per_link_fifo_order() {
    struct Fifo {
        got: Vec<u64>,
    }
    impl Protocol for Fifo {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.node_id() == NodeId(0) {
                for k in 0..10 {
                    ctx.send(NodeId(1), k);
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, m: u64, _c: &mut Context<'_, u64>) {
            self.got.push(m);
        }
    }
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 2.5);
    let g = b.build();
    let mut e = Engine::new(&g, |_| Fifo { got: vec![] });
    assert!(e.run().converged);
    assert_eq!(e.nodes()[1].got, (0..10).collect::<Vec<_>>());
}

/// Quiescence detection: the report says converged exactly when the queue
/// drained, and the end time is the time of the last processed event.
#[test]
fn quiescence_and_end_time() {
    struct Chain;
    impl Protocol for Chain {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.node_id() == NodeId(0) {
                ctx.send(NodeId(1), 3);
            }
        }
        fn on_message(&mut self, from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            if hops > 0 {
                ctx.send(from, hops - 1); // bounce back and forth
            }
        }
    }
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 1.0);
    let g = b.build();
    let mut e = Engine::new(&g, |_| Chain);
    let report = e.run();
    assert!(report.converged);
    // 4 deliveries, 1.01 apart (weight + processing delay).
    assert_eq!(report.events_processed, 4);
    assert!((report.end_time - 4.04).abs() < 1e-9);
    assert_eq!(report.messages_dropped, 0);
    assert_eq!(report.topology_events, 0);
}

/// A topology event alone (no protocol traffic) still counts as activity
/// and leaves the engine quiescent afterwards.
#[test]
fn topology_only_run_quiesces() {
    struct Mute;
    impl Protocol for Mute {
        type Message = ();
        fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
    }
    let g = generators::ring(5);
    let mut e = Engine::new(&g, |_| Mute);
    e.schedule_topology(
        2.0,
        TopologyEvent::LinkDown {
            u: NodeId(0),
            v: NodeId(1),
        },
    );
    let report = e.run();
    assert!(report.converged);
    assert_eq!(report.topology_events, 1);
    assert_eq!(report.events_processed, 1);
    assert_eq!(e.graph().edge_count(), 4);
}
