//! # disco-sim
//!
//! A small, deterministic discrete-event simulation engine.
//!
//! The Disco paper evaluates its protocols with two simulators (§5.1): a
//! *custom discrete event simulator* that runs the actual distributed
//! message exchange (used for convergence/messaging results, Fig. 8), and a
//! *static simulator* that directly computes the post-convergence state
//! (used for state/stretch/congestion on large topologies). This crate is
//! the former; the static simulator lives in `disco-core::static_state` and
//! the baselines crate.
//!
//! ## Model
//!
//! * The network is an undirected weighted [`disco_graph::Graph`]; the edge
//!   weight doubles as the link propagation delay.
//! * Each node runs a [`Protocol`] instance. The engine delivers three kinds
//!   of upcalls: [`Protocol::on_start`] once at time 0, [`Protocol::on_message`]
//!   for every received message, and [`Protocol::on_timer`] for timers the
//!   node set itself.
//! * Nodes interact with the world only through the [`Context`] handed to
//!   each upcall: sending messages to direct neighbors, scheduling timers,
//!   and reading their own id / adjacency. This mirrors the paper's
//!   assumption that a node initially knows only itself and its neighbors.
//! * Events with equal timestamps are delivered in the order they were
//!   scheduled, so a run is a pure function of (graph, protocol, seed).
//!
//! The engine counts every message and its size, which is exactly the
//! measurement reported in the paper's Fig. 8 ("mean messages per node sent
//! until convergence"). Convergence is detected as quiescence: the event
//! queue containing no more message or timer events.
//!
//! ```
//! use disco_graph::{generators, NodeId};
//! use disco_sim::{Engine, Context, Protocol};
//!
//! /// A toy flooding protocol: node 0 floods a token, everyone re-floods once.
//! struct Flood { seen: bool }
//!
//! impl Protocol for Flood {
//!     type Message = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.node_id() == NodeId(0) {
//!             self.seen = true;
//!             ctx.broadcast(());
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
//!         if !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(());
//!         }
//!     }
//! }
//!
//! let g = generators::ring(16);
//! let mut engine = Engine::new(&g, |_id| Flood { seen: false });
//! let report = engine.run();
//! assert!(report.converged);
//! assert!(engine.nodes().iter().all(|n| n.seen));
//! ```

pub mod context;
pub mod engine;
pub mod event;
pub mod rng;
pub mod sharded;
pub mod stats;

pub use context::Context;
pub use engine::{Engine, RunReport};
pub use event::{BinaryHeapQueue, EventQueue, SimTime, TimerWheel, TopologyEvent};
pub use rng::seed_for;
pub use sharded::{
    LookaheadViolation, Partition, ShardEngine, ShardProtocol, ShardedEngine, ShardedRunSummary,
};
pub use stats::MessageStats;

// Re-exported so protocol crates and bench harnesses can implement
// classification and pick recorders without depending on disco-telemetry
// directly.
pub use disco_telemetry::{MergeRecorder, MessageClass, NoopRecorder, Phase, Recorder};

use disco_graph::NodeId;

/// A protocol instance running on a single node of the simulated network.
///
/// Implementations hold all per-node protocol state (routing tables,
/// pending queries, overlay links, …). The engine owns one instance per
/// node and routes upcalls to it.
pub trait Protocol {
    /// The message type exchanged between nodes. Messages are delivered
    /// reliably and in per-link FIFO order after the link's propagation
    /// delay.
    type Message: Clone;

    /// Called once for every node at simulation time 0.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}

    /// Called when a message from direct neighbor `from` arrives.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Called when a timer previously scheduled through
    /// [`Context::set_timer`] fires. `token` is the caller-chosen value.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, Self::Message>) {}

    /// Called when a link to `peer` comes up: a new link, a recovered link,
    /// or a (re)joining neighbor. The context already reflects the new
    /// adjacency. Default: ignore (static protocols need no change).
    fn on_neighbor_up(&mut self, _peer: NodeId, _ctx: &mut Context<'_, Self::Message>) {}

    /// Called when the link to `peer` goes down — link failure or the
    /// neighbor leaving the network (the two are indistinguishable locally,
    /// as in a real fail-stop network). The context already reflects the
    /// reduced adjacency. Default: ignore.
    fn on_neighbor_down(&mut self, _peer: NodeId, _ctx: &mut Context<'_, Self::Message>) {}

    /// Classify a message for telemetry. Only consulted when the engine
    /// runs with an enabled [`Recorder`]; the default lumps everything into
    /// [`MessageClass::Deliver`]. Protocols override this to split
    /// withdrawals, refreshes and gossip out of the bulk route traffic.
    fn classify(_msg: &Self::Message) -> MessageClass
    where
        Self: Sized,
    {
        MessageClass::Deliver
    }

    /// A revision counter the engine samples around each upcall to detect
    /// route-selection changes (feeding the repair-latency probe). Bump it
    /// whenever the node's selected next hops change; leave the default
    /// (constant 0) to opt out.
    fn control_revision(&self) -> u64 {
        0
    }
}
