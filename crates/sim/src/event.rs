//! Event queue of the discrete-event engine.

use disco_graph::{EdgeId, NodeId, Weight};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time, in the same unit as link weights (the paper uses
/// latencies; for unweighted graphs a hop costs 1.0).
pub type SimTime = f64;

/// A runtime change to the simulated topology (churn, failures, mobility).
///
/// Topology events are scheduled like any other event (through
/// [`crate::Engine::schedule_topology`] or a `disco-dynamics` schedule) and
/// applied by the engine when their timestamp fires: the engine mutates its
/// graph, then notifies the affected protocol instances through
/// [`crate::Protocol::on_neighbor_up`] / [`crate::Protocol::on_neighbor_down`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyEvent {
    /// `node` (re)joins the network, attaching to the given neighbors.
    /// Joining a brand-new id grows the graph; rejoining a departed id
    /// resets that node's protocol state to a fresh instance. Links whose
    /// peer is absent at fire time are skipped.
    NodeJoin {
        /// The joining node.
        node: NodeId,
        /// Attachment links `(peer, weight)`.
        links: Vec<(NodeId, Weight)>,
    },
    /// `node` leaves abruptly (fail-stop): all its links drop and its
    /// pending timers and in-flight messages are discarded. Neighbors
    /// observe the loss; the departed node itself gets no upcall.
    NodeLeave {
        /// The departing node.
        node: NodeId,
    },
    /// A link between two present nodes comes up (new or recovered).
    LinkUp {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Link weight (propagation delay).
        weight: Weight,
    },
    /// The link `{u, v}` fails. Messages already in flight on it are lost.
    LinkDown {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// Deliver a message to `to`, sent by `from` over the link that was
    /// `edge` at send time. Edge ids are retired on removal and freshly
    /// minted on (re-)insertion, so an id mismatch at delivery time means
    /// the link the message was riding failed while it was in flight —
    /// even if a link between the same endpoints has since come back.
    Deliver {
        from: NodeId,
        to: NodeId,
        edge: EdgeId,
        msg: M,
    },
    /// Fire a timer at `node` with the caller-chosen `token`. `epoch` is the
    /// node's incarnation when the timer was set; timers from a previous
    /// incarnation (before a leave/rejoin) are discarded on delivery.
    Timer {
        node: NodeId,
        token: u64,
        epoch: u32,
    },
    /// Apply a topology mutation.
    Topology(TopologyEvent),
}

/// An event scheduled to fire at `time`. The sequence number makes ordering
/// total and deterministic for equal timestamps.
#[derive(Debug, Clone)]
pub struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the earliest (time, seq) first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of events.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `kind` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            3.0,
            EventKind::Timer {
                node: NodeId(0),
                token: 3,
                epoch: 0,
            },
        );
        q.push(
            1.0,
            EventKind::Timer {
                node: NodeId(0),
                token: 1,
                epoch: 0,
            },
        );
        q.push(
            2.0,
            EventKind::Timer {
                node: NodeId(0),
                token: 2,
                epoch: 0,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fifo_by_sequence() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for token in 0..10 {
            q.push(
                5.0,
                EventKind::Timer {
                    node: NodeId(0),
                    token,
                    epoch: 0,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            0.0,
            EventKind::Timer {
                node: NodeId(1),
                token: 0,
                epoch: 0,
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
