//! Events and event queues of the discrete-event engine.
//!
//! The engine schedules events through the [`EventQueue`] trait. Two
//! implementations exist:
//!
//! * [`TimerWheel`] — the default: a calendar-queue / timer-wheel hybrid
//!   with O(1) amortized push/pop independent of queue size, and O(1)
//!   cancellation of pending events (used to reclaim the timers of departed
//!   nodes eagerly instead of letting them sit in the queue until popped).
//! * [`BinaryHeapQueue`] — the original `BinaryHeap` scheduler, kept as the
//!   reference implementation: the wheel's pop order is defined as *exactly*
//!   this queue's `(time, key, seq)` order, which the property tests in
//!   `disco-sim` verify on random event streams.
//!
//! Both queues order events by `(time, key, seq)`: the caller-supplied
//! *logical key* breaks timestamp ties, and the insertion sequence number
//! is only the final tie-break. The engine derives keys from the event's
//! logical origin — `(source node, per-source action counter)` for
//! protocol actions, a world counter for externally scheduled events — so
//! the pop order is a pure function of the simulated causality and does
//! **not** depend on the order pushes were interleaved. That is what lets
//! the sharded engine run one queue per shard and still reproduce the
//! single-queue schedule byte-for-byte for any shard count.

use disco_graph::{EdgeId, NodeId, Weight};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

/// Simulation time, in the same unit as link weights (the paper uses
/// latencies; for unweighted graphs a hop costs 1.0).
pub type SimTime = f64;

/// A runtime change to the simulated topology (churn, failures, mobility).
///
/// Topology events are scheduled like any other event (through
/// [`crate::Engine::schedule_topology`] or a `disco-dynamics` schedule) and
/// applied by the engine when their timestamp fires: the engine mutates its
/// graph, then notifies the affected protocol instances through
/// [`crate::Protocol::on_neighbor_up`] / [`crate::Protocol::on_neighbor_down`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyEvent {
    /// `node` (re)joins the network, attaching to the given neighbors.
    /// Joining a brand-new id grows the graph; rejoining a departed id
    /// resets that node's protocol state to a fresh instance. Links whose
    /// peer is absent at fire time are skipped.
    NodeJoin {
        /// The joining node.
        node: NodeId,
        /// Attachment links `(peer, weight)`.
        links: Vec<(NodeId, Weight)>,
    },
    /// `node` leaves abruptly (fail-stop): all its links drop and its
    /// pending timers and in-flight messages are discarded. Neighbors
    /// observe the loss; the departed node itself gets no upcall.
    NodeLeave {
        /// The departing node.
        node: NodeId,
    },
    /// A link between two present nodes comes up (new or recovered).
    LinkUp {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Link weight (propagation delay).
        weight: Weight,
    },
    /// The link `{u, v}` fails. Messages already in flight on it are lost.
    LinkDown {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// Deliver a message to `to`, sent by `from` over the link that was
    /// `edge` at send time. Edge ids are retired on removal and freshly
    /// minted on (re-)insertion, so an id mismatch at delivery time means
    /// the link the message was riding failed while it was in flight —
    /// even if a link between the same endpoints has since come back.
    Deliver {
        from: NodeId,
        to: NodeId,
        edge: EdgeId,
        msg: M,
        /// Accounted wire size of the message, captured at send time so
        /// delivery can credit the receiver's byte counters.
        size_bytes: usize,
    },
    /// Deliver a whole batch of messages from `from` to `to` over the link
    /// that was `edge` at send time, as **one** queue entry: the engine
    /// pops the batch once and processes the messages in order, exactly as
    /// if each had been a separate [`EventKind::Deliver`] scheduled
    /// back-to-back (same deliver time, consecutive sequence numbers).
    /// Each message carries its accounted wire size, recorded per message
    /// at send time; if the link fails (or the receiver departs) while the
    /// batch is in flight, *every* message in it counts as dropped —
    /// identical loss accounting to per-message delivery, because the
    /// whole batch rides one edge and the engine's liveness checks cannot
    /// change between consecutive same-time pops.
    DeliverBatch {
        from: NodeId,
        to: NodeId,
        edge: EdgeId,
        msgs: Box<[(M, usize)]>,
    },
    /// Deliver one message from `from` to *every* listed target over the
    /// edges captured at send time, as **one** queue entry — the in-queue
    /// form of a flood over uniform-latency links (the engine falls back
    /// to per-neighbor [`EventKind::Deliver`] entries when link weights
    /// differ, where arrivals spread over distinct times). All targets
    /// share one timestamp, and a flood's per-neighbor sends carry
    /// consecutive sequence numbers today, so popping the entry once and
    /// walking the targets in adjacency order reproduces the singleton
    /// pop order exactly; liveness is checked per target at pop time, so
    /// losses stay per-message.
    DeliverFlood {
        from: NodeId,
        msg: M,
        /// `(receiver, edge at send time)`, in adjacency order at send
        /// time.
        targets: Box<[(NodeId, EdgeId)]>,
        /// Accounted wire size of one flood copy (every target receives the
        /// same message).
        size_bytes: usize,
    },
    /// Fire a timer at `node` with the caller-chosen `token`. `epoch` is the
    /// node's incarnation when the timer was set; timers from a previous
    /// incarnation (before a leave/rejoin) are discarded on delivery.
    Timer {
        node: NodeId,
        token: u64,
        epoch: u32,
    },
    /// Apply a topology mutation.
    Topology(TopologyEvent),
}

/// An event scheduled to fire at `time`. Equal timestamps are ordered by
/// the logical `key` the scheduler supplied at push time; the insertion
/// sequence number makes ordering total when both coincide (which the
/// engine's key scheme never produces for distinct events).
#[derive(Debug, Clone)]
pub struct Event<M> {
    pub time: SimTime,
    pub key: u64,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the earliest (time, key, seq)
        // first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of simulation events.
///
/// Implementations must pop events in strict `(time, key, seq)` order,
/// where `key` is the caller-supplied logical key and `seq` the push
/// sequence number — i.e. key order for equal timestamps, FIFO only as the
/// final tie-break. `peek_time` takes `&mut self` because the wheel
/// advances lazily.
pub trait EventQueue<M> {
    /// Handle to a pending event, usable for O(1) cancellation. Handles are
    /// generation-checked: a handle to an event that already fired (or was
    /// cancelled) is stale and `cancel` returns `false` for it.
    type Id: Copy + Eq + std::fmt::Debug;

    /// Schedule `kind` to fire at absolute time `time` under the logical
    /// key `key`; returns the cancellation handle.
    fn push(&mut self, time: SimTime, key: u64, kind: EventKind<M>) -> Self::Id;

    /// Cancel a pending event, dropping its payload immediately. Returns
    /// `true` if the event was still pending (and is now reclaimed), `false`
    /// if the handle was stale. O(1).
    fn cancel(&mut self, id: Self::Id) -> bool;

    /// Pop the earliest pending event together with its (now spent) handle.
    fn pop(&mut self) -> Option<(Self::Id, Event<M>)>;

    /// Timestamp of the earliest pending event, if any.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of pending (live, non-cancelled) events.
    fn len(&self) -> usize;

    /// Whether there are no pending events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bookkeeping residue left behind by cancellations: slots still
    /// referenced from internal structures whose payload has already been
    /// reclaimed. The timer wheel skips these lazily; the count exists so
    /// tests can verify cancelled events do not accumulate as live state.
    fn dead_refs(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// BinaryHeapQueue — the original heap scheduler (reference implementation)
// ---------------------------------------------------------------------------

/// The original `BinaryHeap`-backed queue. O(log n) push/pop; cancellation
/// is a tombstone (the payload stays queued until popped), which is exactly
/// the lazy-reclamation behavior the timer wheel was introduced to fix.
/// Kept as the ordering reference and as the `exp_scale --queue heap`
/// baseline.
#[derive(Debug)]
pub struct BinaryHeapQueue<M> {
    heap: BinaryHeap<Event<M>>,
    /// Seqs currently queued and not cancelled.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<M> Default for BinaryHeapQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> BinaryHeapQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> for BinaryHeapQueue<M> {
    type Id = u64;

    fn push(&mut self, time: SimTime, key: u64, kind: EventKind<M>) -> u64 {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            key,
            seq,
            kind,
        });
        self.pending.insert(seq);
        seq
    }

    fn cancel(&mut self, id: u64) -> bool {
        // The payload cannot be extracted from the middle of a heap; unmark
        // the seq and skip the husk on pop (lazy reclamation — exactly the
        // leak the timer wheel fixes).
        self.pending.remove(&id)
    }

    fn pop(&mut self) -> Option<(u64, Event<M>)> {
        while let Some(ev) = self.heap.pop() {
            if !self.pending.remove(&ev.seq) {
                continue; // cancelled husk
            }
            return Some((ev.seq, ev));
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if !self.pending.contains(&ev.seq) {
                self.heap.pop();
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn dead_refs(&self) -> usize {
        self.heap.len() - self.pending.len()
    }
}

// ---------------------------------------------------------------------------
// TimerWheel — the default calendar-queue scheduler
// ---------------------------------------------------------------------------

/// Ticks per simulation time unit. A power of two, so `time * TICK_RATE` is
/// an exact float scaling and tick extraction preserves time ordering.
const TICK_RATE: f64 = 64.0;
/// Buckets in the wheel window (must be a power of two). At 64 ticks per
/// unit this spans 128 simulated time units — enough for every delay the
/// protocols schedule; rarer far-future events go to the sorted overflow.
const WHEEL_SLOTS: usize = 8192;
const WORDS: usize = WHEEL_SLOTS / 64;

/// Generation-checked handle to a cancellable wheel event. Events that the
/// engine never cancels (message deliveries, topology mutations) are stored
/// inline in the wheel's buckets and get the sentinel (non-cancellable)
/// handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelId {
    slot: u32,
    gen: u32,
}

impl WheelId {
    const NONE: WheelId = WheelId {
        slot: u32::MAX,
        gen: u32::MAX,
    };
}

/// Slab cell holding a cancellable event's payload out-of-line.
#[derive(Debug)]
struct Slab<M> {
    gen: u32,
    kind: Option<EventKind<M>>,
}

#[derive(Debug)]
enum Payload<M> {
    /// Payload stored inline (not cancellable).
    Inline(EventKind<M>),
    /// Payload parked in the slab under a generation-checked slot
    /// (cancellable: timers).
    Parked(WheelId),
}

/// One queued event as stored in a bucket.
#[derive(Debug)]
struct Entry<M> {
    time: SimTime,
    key: u64,
    seq: u64,
    payload: Payload<M>,
}

impl<M> Entry<M> {
    #[inline]
    fn sort_key(&self) -> (SimTime, u64, u64) {
        (self.time, self.key, self.seq)
    }
}

/// A calendar-queue timer wheel: a window of `WHEEL_SLOTS` one-tick buckets
/// starting at `base_tick`, a sorted overflow map for events beyond the
/// window, and the bucket currently being drained, sorted once on drain.
///
/// * `push` is O(1): an append to the target bucket (or an overflow insert,
///   rare — the window spans 128 simulated time units).
/// * `pop` is amortized O(log k) with `k` = events in the popped event's
///   tick (the once-per-bucket sort), plus an amortized-O(1) bitmap scan to
///   find the next occupied bucket. Unlike a binary heap, cost never grows
///   with *total* queue size — the property that makes million-node churn
///   runs feasible.
/// * `cancel` is O(1): cancellable events (timers) park their payload in a
///   slab; cancelling drops the payload and bumps the slot generation, and
///   the residual 24-byte bucket entry is skipped (and counted down) when
///   its tick drains.
///
/// Pop order is exactly [`BinaryHeapQueue`]'s `(time, key, seq)` order: ticks
/// a monotone function of time, and each drained bucket is sorted by the
/// full `(time, key, seq)` key before its events are released.
#[derive(Debug)]
pub struct TimerWheel<M> {
    slab: Vec<Slab<M>>,
    free: Vec<u32>,
    /// Live (pending, non-cancelled) events.
    live: usize,
    /// Cancelled-but-still-referenced bucket entries.
    dead: usize,
    next_seq: u64,
    /// Wheel window: bucket `i` holds events of tick `base_tick + i`.
    buckets: Vec<Vec<Entry<M>>>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty).
    occ: [u64; WORDS],
    base_tick: u64,
    /// Frontier offset into the window: buckets `< cursor` are drained.
    cursor: usize,
    /// The tick currently being drained (`u64::MAX` before the first pop).
    /// New pushes landing on this tick merge into `current` so a tick is
    /// never split between the drained buffer and its bucket.
    active_tick: u64,
    /// Events of `active_tick`, sorted by `(time, key, seq)` DESCENDING so pops
    /// come off the tail in O(1).
    current: Vec<Entry<M>>,
    /// Events beyond the window, keyed by tick.
    overflow: BTreeMap<u64, Vec<Entry<M>>>,
}

fn tick_of(time: SimTime) -> u64 {
    debug_assert!(time >= 0.0 && time.is_finite(), "bad event time {time}");
    (time * TICK_RATE) as u64
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> TimerWheel<M> {
    /// An empty wheel positioned at time 0.
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            dead: 0,
            next_seq: 0,
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
            base_tick: 0,
            cursor: 0,
            active_tick: u64::MAX,
            current: Vec::new(),
            overflow: BTreeMap::new(),
        }
    }

    fn park(&mut self, kind: EventKind<M>) -> WheelId {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slab[slot as usize];
            debug_assert!(s.kind.is_none());
            s.kind = Some(kind);
            WheelId { slot, gen: s.gen }
        } else {
            let slot = self.slab.len() as u32;
            self.slab.push(Slab {
                gen: 0,
                kind: Some(kind),
            });
            WheelId { slot, gen: 0 }
        }
    }

    /// Resolve an entry's payload, retiring its slab slot if parked.
    /// Returns `None` for the residue of a cancelled event.
    fn unpark(&mut self, e: Entry<M>) -> Option<(WheelId, Event<M>)> {
        let (id, kind) = match e.payload {
            Payload::Inline(kind) => (WheelId::NONE, kind),
            Payload::Parked(id) => {
                let s = &mut self.slab[id.slot as usize];
                if s.gen != id.gen || s.kind.is_none() {
                    self.dead -= 1;
                    return None;
                }
                let kind = s.kind.take().expect("checked above");
                s.gen = s.gen.wrapping_add(1);
                self.free.push(id.slot);
                (id, kind)
            }
        };
        self.live -= 1;
        Some((
            id,
            Event {
                time: e.time,
                key: e.key,
                seq: e.seq,
                kind,
            },
        ))
    }

    /// Whether an entry still carries a live payload.
    fn entry_live(&self, e: &Entry<M>) -> bool {
        match &e.payload {
            Payload::Inline(_) => true,
            Payload::Parked(id) => {
                let s = &self.slab[id.slot as usize];
                s.gen == id.gen && s.kind.is_some()
            }
        }
    }

    fn set_occ(&mut self, idx: usize) {
        self.occ[idx / 64] |= 1u64 << (idx % 64);
    }

    fn clear_occ(&mut self, idx: usize) {
        self.occ[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Index of the first occupied bucket at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= WHEEL_SLOTS {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// File an entry under its tick: current buffer, window bucket, or
    /// overflow.
    fn file(&mut self, tick: u64, entry: Entry<M>) {
        if (self.active_tick != u64::MAX && tick <= self.active_tick) || tick < self.base_tick {
            // Same tick as the one being drained — or earlier than the
            // window base (possible after a rebase performed by a peek that
            // then didn't pop): merge into the sorted current buffer, which
            // always pops before any bucket. Rare (most events land at
            // least one tick ahead), so the O(k) insert is fine.
            let pos = self
                .current
                .partition_point(|e| e.sort_key() > entry.sort_key());
            self.current.insert(pos, entry);
        } else if tick < self.base_tick + WHEEL_SLOTS as u64 {
            let idx = (tick - self.base_tick) as usize;
            self.buckets[idx].push(entry);
            self.set_occ(idx);
        } else {
            self.overflow.entry(tick).or_default().push(entry);
        }
    }

    /// Move the next occupied bucket's events into `current`, advancing the
    /// window (and rebasing onto the overflow) as needed. Returns false if
    /// no pending events remain anywhere.
    fn refill_current(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            if let Some(idx) = self.next_occupied(self.cursor) {
                self.drain_bucket(idx);
                return true;
            }
            // Window exhausted: rebase onto the earliest overflow tick.
            let Some((&tick, _)) = self.overflow.iter().next() else {
                return false;
            };
            self.base_tick = tick;
            self.cursor = 0;
            // Pull every overflow tick now inside the window.
            let end = self.base_tick + WHEEL_SLOTS as u64;
            let inside: Vec<u64> = self.overflow.range(..end).map(|(&t, _)| t).collect();
            for t in inside {
                let entries = self.overflow.remove(&t).unwrap();
                let idx = (t - self.base_tick) as usize;
                self.buckets[idx].extend(entries);
                if !self.buckets[idx].is_empty() {
                    self.set_occ(idx);
                }
            }
        }
    }

    fn drain_bucket(&mut self, idx: usize) {
        self.clear_occ(idx);
        self.cursor = idx + 1;
        self.active_tick = self.base_tick + idx as u64;
        let mut entries = std::mem::take(&mut self.buckets[idx]);
        // Sort once per bucket, descending so pops take from the tail.
        // Within a bucket most keys share the timestamp, where the sort
        // degrades gracefully to ordering by seq.
        entries.sort_unstable_by(|a, b| b.sort_key().partial_cmp(&a.sort_key()).unwrap());
        self.current = entries;
    }
}

impl<M> EventQueue<M> for TimerWheel<M> {
    type Id = WheelId;

    fn push(&mut self, time: SimTime, key: u64, kind: EventKind<M>) -> WheelId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tick = tick_of(time);
        // Only timers are cancellable (the engine reclaims them when their
        // node departs); everything else keeps its payload inline.
        let (id, payload) = if matches!(kind, EventKind::Timer { .. }) {
            let id = self.park(kind);
            (id, Payload::Parked(id))
        } else {
            (WheelId::NONE, Payload::Inline(kind))
        };
        self.live += 1;
        self.file(
            tick,
            Entry {
                time,
                key,
                seq,
                payload,
            },
        );
        id
    }

    fn cancel(&mut self, id: WheelId) -> bool {
        if id == WheelId::NONE {
            return false;
        }
        let Some(s) = self.slab.get_mut(id.slot as usize) else {
            return false;
        };
        if s.gen != id.gen || s.kind.is_none() {
            return false;
        }
        // Reclaim payload and slot now; the generation bump makes the
        // residual bucket entry recognizably dead, so the slot can be
        // handed out again immediately without the stale entry ever
        // resurrecting it.
        s.kind = None;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        self.dead += 1;
        true
    }

    fn pop(&mut self) -> Option<(WheelId, Event<M>)> {
        loop {
            while let Some(e) = self.current.pop() {
                if let Some(out) = self.unpark(e) {
                    return Some(out);
                }
            }
            if !self.refill_current() {
                return None;
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            while let Some(e) = self.current.last() {
                if self.entry_live(e) {
                    return Some(e.time);
                }
                self.current.pop();
                self.dead -= 1;
            }
            if !self.refill_current() {
                return None;
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn dead_refs(&self) -> usize {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> EventKind<u32> {
        EventKind::Timer {
            node: NodeId(0),
            token,
            epoch: 0,
        }
    }

    fn drain_tokens<Q: EventQueue<u32>>(q: &mut Q) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            q.push(3.0, 0, timer(3));
            q.push(1.0, 0, timer(1));
            q.push(2.0, 0, timer(2));
            assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn equal_times_fifo_by_sequence() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            for token in 0..10 {
                q.push(5.0, 0, timer(token));
            }
            assert_eq!(drain_tokens(&mut q), (0..10).collect::<Vec<_>>());
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn len_and_empty() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            assert!(q.is_empty());
            q.push(0.0, 0, timer(0));
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(0.0));
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            q.push(1.0, 0, timer(1));
            q.push(10.0, 0, timer(10));
            let (_, e) = q.pop().unwrap();
            assert_eq!(e.time, 1.0);
            // Push between the popped time and the remaining event — and
            // one at exactly the popped time (same tick as the active one).
            q.push(5.0, 0, timer(5));
            q.push(1.0, 0, timer(2));
            assert_eq!(drain_tokens(&mut q), vec![2, 5, 10]);
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn cancel_reclaims_pending_events() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            let a = q.push(1.0, 0, timer(1));
            let b = q.push(2.0, 0, timer(2));
            let _c = q.push(3.0, 0, timer(3));
            assert_eq!(q.len(), 3);
            assert!(q.cancel(b));
            assert!(!q.cancel(b), "double cancel must be a no-op");
            assert_eq!(q.len(), 2);
            let (popped_a, e) = q.pop().unwrap();
            assert_eq!(e.time, 1.0);
            assert_eq!(popped_a, a);
            assert!(!q.cancel(a), "cancelling a fired event must fail");
            assert_eq!(drain_tokens(&mut q), vec![3]);
            assert_eq!(q.dead_refs(), 0, "drain must reclaim residue");
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn wheel_slot_not_reused_while_reference_pending() {
        let mut q: TimerWheel<u32> = TimerWheel::new();
        let a = q.push(5.0, 0, timer(1));
        assert!(q.cancel(a));
        assert_eq!(q.dead_refs(), 1);
        // New pushes must not resurrect the cancelled slot.
        for i in 0..4 {
            q.push(6.0 + i as f64, 0, timer(10 + i));
        }
        assert_eq!(drain_tokens(&mut q), vec![10, 11, 12, 13]);
        assert_eq!(q.dead_refs(), 0);
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut q: TimerWheel<u32> = TimerWheel::new();
        // Far beyond the 128-time-unit window, out of order.
        q.push(5000.0, 0, timer(3));
        q.push(0.5, 0, timer(1));
        q.push(1000.0, 0, timer(2));
        q.push(100_000.0, 0, timer(4));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3, 4]);
    }

    #[test]
    fn equal_times_order_by_key_before_sequence() {
        fn check<Q: EventQueue<u32> + Default>() {
            let mut q = Q::default();
            // Push keys in descending order: pops must follow key order,
            // not push order.
            for token in 0..8u64 {
                q.push(5.0, 100 - token, timer(token));
            }
            // A later push with a smaller key at the same time wins.
            q.push(5.0, 1, timer(99));
            assert_eq!(drain_tokens(&mut q), vec![99, 7, 6, 5, 4, 3, 2, 1, 0]);
        }
        check::<BinaryHeapQueue<u32>>();
        check::<TimerWheel<u32>>();
    }

    #[test]
    fn overflow_ties_stay_fifo() {
        let mut q: TimerWheel<u32> = TimerWheel::new();
        for token in 0..8 {
            q.push(9999.25, 0, timer(token));
        }
        q.push(9999.25 - 500.0, 0, timer(100));
        let order = drain_tokens(&mut q);
        assert_eq!(order, vec![100, 0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
