//! The discrete-event simulation engine.
//!
//! Since the dynamics subsystem landed, the engine *owns* its graph (a clone
//! of the one passed to [`Engine::new`]) and can mutate it at runtime by
//! processing [`TopologyEvent`]s: node churn, link failure/recovery and
//! mobility re-attachment. Protocols observe adjacency changes through the
//! [`Protocol::on_neighbor_up`] / [`Protocol::on_neighbor_down`] upcalls.

use crate::context::{Action, Context};
use crate::event::{EventKind, EventQueue, SimTime, TimerWheel, TopologyEvent};
use crate::sharded::{Outbound, OutboundKind, ShardBinding, ShardProtocol, WireBody, WireEvent};
use crate::stats::MessageStats;
use crate::Protocol;
use disco_graph::{EdgeId, Graph, NodeId, Weight};
use disco_telemetry::{MessageClass, NoopRecorder, Recorder};

/// Logical event key of the `ctr`-th action taken by `node`: orders events
/// with equal timestamps by `(source node, per-source action counter)`
/// instead of by global push order, making the schedule independent of how
/// pushes interleave across shards. World events (externally scheduled
/// topology mutations and injections) use a bare counter, which sorts
/// below every node key.
#[inline]
pub(crate) fn node_event_key(node: NodeId, ctr: u32) -> u64 {
    ((node.0 as u64 + 1) << 32) | ctr as u64
}

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Whether the simulation reached quiescence (no events left) before
    /// hitting the event or time limit.
    pub converged: bool,
    /// Simulation time of the last processed event.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events_processed: u64,
    /// Topology-mutation events applied.
    pub topology_events: u64,
    /// Messages lost in flight (link failed or receiver left before
    /// delivery) plus stale-incarnation timers discarded.
    pub messages_dropped: u64,
    /// Messages delivered to `on_message` upcalls. Counts every message —
    /// a delivered batch contributes its full length — so it measures
    /// protocol work independently of how deliveries are packed into
    /// queue entries (an event can carry a whole table dump).
    pub messages_delivered: u64,
    /// Epoch-dead timers that slipped past eager cancellation and were only
    /// discarded at pop time (0 when eager reclamation is airtight; see
    /// [`Engine::stale_timer_pops`]).
    pub stale_timer_pops: u64,
    /// Live (pending) event-queue entries at report time.
    pub queue_live: usize,
    /// Cancelled-but-still-referenced queue residue at report time.
    pub queue_dead: usize,
    /// Message statistics collected during the run.
    pub stats: MessageStats,
}

/// Discrete-event simulator running one [`Protocol`] instance per node of a
/// graph.
///
/// The engine clones the construction graph and owns it for the lifetime of
/// the run so that topology events can mutate it; [`Engine::graph`] exposes
/// the *current* topology. The `'f` lifetime bounds the node factory, which
/// is retained to build fresh protocol instances for nodes that join (or
/// rejoin) at runtime.
///
/// The `R` parameter is the telemetry [`Recorder`]. The default,
/// [`NoopRecorder`], has `Recorder::ENABLED == false`, and every
/// instrumentation site below is guarded by `if R::ENABLED { … }` on that
/// associated constant — monomorphization folds the guards away, so the
/// default engine compiles to exactly the un-instrumented code (the
/// byte-identical churn goldens lock this in).
pub struct Engine<
    'f,
    P: Protocol,
    Q: EventQueue<P::Message> = TimerWheel<<P as Protocol>::Message>,
    R: Recorder = NoopRecorder,
> {
    graph: Graph,
    nodes: Vec<P>,
    factory: Box<dyn FnMut(NodeId) -> P + 'f>,
    /// Whether each node is currently part of the network.
    active: Vec<bool>,
    /// Incarnation counter per node; bumped on rejoin so stale timers from a
    /// previous life are discarded.
    epoch: Vec<u32>,
    queue: Q,
    /// Cancellation handles of each node's pending timers; drained (and the
    /// timers reclaimed from the queue) the moment the node leaves, instead
    /// of letting epoch-dead timers sit in the queue until popped.
    pending_timers: Vec<Vec<Q::Id>>,
    stats: MessageStats,
    /// Recycled action buffer handed to every upcall's [`Context`] and
    /// drained in place afterwards — the zero-allocation upcall path (the
    /// buffer's capacity survives across upcalls).
    action_scratch: Vec<Action<P::Message>>,
    /// Per-node action counters backing the logical event keys (see
    /// [`node_event_key`]); never reset, so keys stay unique across
    /// leave/rejoin cycles.
    push_ctr: Vec<u32>,
    /// Counter keying externally scheduled (world) events: topology
    /// mutations and injected messages.
    world_ctr: u64,
    /// When this engine is one shard of a
    /// [`ShardedEngine`](crate::ShardedEngine): the seeded partition, this
    /// shard's index, and the outbox of cross-shard sends accumulated
    /// during the current window. `None` for the plain sequential engine.
    shard: Option<ShardBinding<P::Message>>,
    now: SimTime,
    started: bool,
    events_processed: u64,
    topology_events: u64,
    messages_dropped: u64,
    messages_delivered: u64,
    /// Timers that reached their pop time while their node was inactive or
    /// from a previous incarnation — i.e. epoch-dead timers that the eager
    /// cancellation missed. The reclamation regression tests assert this
    /// stays 0 under churn: every dead timer should instead be cancelled
    /// the moment its node leaves, which counts it into the queue's
    /// dead-entry gauge ([`EventQueue::dead_refs`]) while it waits for its
    /// bucket to drain.
    stale_timer_pops: u64,
    /// Safety valve: stop after this many events (default 200 million).
    pub max_events: u64,
    /// Safety valve: stop once simulation time exceeds this (default ∞).
    pub max_time: SimTime,
    /// Default byte size accounted for messages sent via `Context::send`.
    pub default_msg_size: usize,
    /// Fixed per-hop processing delay added to every message in addition to
    /// the link weight; keeps zero-weight pathologies out of the queue.
    pub processing_delay: SimTime,
    /// Telemetry recorder (a zero-sized no-op by default).
    recorder: R,
}

impl<'f, P: Protocol> Engine<'f, P> {
    /// Create an engine over a clone of `graph`, building each node's
    /// protocol instance with `factory`. The factory is kept for the
    /// engine's lifetime so joining nodes can be instantiated later.
    /// Events are scheduled on the default [`TimerWheel`] queue.
    pub fn new(graph: &Graph, factory: impl FnMut(NodeId) -> P + 'f) -> Self {
        Engine::with_queue(graph, factory, TimerWheel::new())
    }
}

impl<'f, P: Protocol, Q: EventQueue<P::Message>> Engine<'f, P, Q> {
    /// Like [`Engine::new`], but scheduling events on a caller-supplied
    /// queue implementation (e.g. [`crate::event::BinaryHeapQueue`] for the
    /// `exp_scale` heap-baseline comparison). Both queues pop in the same
    /// deterministic `(time, key, seq)` order, so runs are byte-identical
    /// across queue implementations.
    pub fn with_queue(graph: &Graph, factory: impl FnMut(NodeId) -> P + 'f, queue: Q) -> Self {
        Engine::with_recorder(graph, factory, queue, NoopRecorder)
    }
}

impl<'f, P: Protocol, Q: EventQueue<P::Message>, R: Recorder> Engine<'f, P, Q, R> {
    /// Like [`Engine::with_queue`], but additionally attaching a telemetry
    /// [`Recorder`]. The engine reports into it from every hot-path site;
    /// retrieve it afterwards with [`Engine::recorder`] /
    /// [`Engine::into_recorder`].
    pub fn with_recorder(
        graph: &Graph,
        factory: impl FnMut(NodeId) -> P + 'f,
        queue: Q,
        recorder: R,
    ) -> Self {
        let mut factory: Box<dyn FnMut(NodeId) -> P + 'f> = Box::new(factory);
        let nodes: Vec<P> = graph.nodes().map(&mut factory).collect();
        let n = graph.node_count();
        Engine {
            graph: graph.clone(),
            nodes,
            factory,
            active: vec![true; n],
            epoch: vec![0; n],
            queue,
            pending_timers: (0..n).map(|_| Vec::new()).collect(),
            stats: MessageStats::new(n),
            action_scratch: Vec::new(),
            push_ctr: vec![0; n],
            world_ctr: 0,
            shard: None,
            now: 0.0,
            started: false,
            events_processed: 0,
            topology_events: 0,
            messages_dropped: 0,
            messages_delivered: 0,
            stale_timer_pops: 0,
            max_events: 200_000_000,
            max_time: f64::INFINITY,
            default_msg_size: 64,
            processing_delay: 0.01,
            recorder,
        }
    }

    /// The attached telemetry recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the telemetry recorder (e.g. to mark experiment
    /// phases from the harness driving the engine).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consume the engine and hand back its recorder (for exporting a
    /// trace after the run).
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Immutable access to the per-node protocol instances (indexed by node
    /// id) — used to inspect converged state after a run. Instances of
    /// departed nodes retain their state at departure.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the per-node protocol instances.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// The simulated graph in its *current* state (reflects all topology
    /// events applied so far).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether `v` is currently part of the network. Nodes beyond the
    /// original graph that have not joined yet report `false`.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active.get(v.0).copied().unwrap_or(false)
    }

    /// Ids of the currently active nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| NodeId(i))
    }

    /// Number of currently active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Message statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages (and stale timers) dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Messages delivered to `on_message` upcalls so far (batch members
    /// counted individually — see [`RunReport::messages_delivered`]).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Epoch-dead timers that slipped past eager cancellation and were
    /// only discarded when popped (see the field docs; 0 when eager
    /// reclamation is airtight).
    pub fn stale_timer_pops(&self) -> u64 {
        self.stale_timer_pops
    }

    /// Topology events applied so far.
    pub fn topology_events(&self) -> u64 {
        self.topology_events
    }

    /// Events (queue pops) processed so far. A batched delivery counts
    /// once however many messages it carries; see
    /// [`Engine::messages_delivered`] for the per-message count.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Next logical event key for an action of `node` (see
    /// [`node_event_key`]).
    #[inline]
    fn node_key(&mut self, node: NodeId) -> u64 {
        let c = &mut self.push_ctr[node.0];
        *c += 1;
        node_event_key(node, *c)
    }

    /// Whether this engine runs `v`'s protocol instance. Always true for
    /// the sequential engine; under sharding, true exactly when the seeded
    /// partition assigns `v` to this shard.
    #[inline]
    fn owns(&self, v: NodeId) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.partition.shard_of(v) == s.me,
        }
    }

    /// Attach this engine to a sharded run as shard `me` of `partition`:
    /// only owned nodes receive upcalls, and sends whose receiver lives on
    /// another shard are diverted to the outbox instead of the local queue.
    pub(crate) fn bind_shard(&mut self, partition: crate::sharded::Partition, me: usize) {
        self.shard = Some(ShardBinding {
            partition,
            me,
            outbox: Vec::new(),
        });
    }

    /// Schedule a topology mutation at absolute simulation time `at`
    /// (must not be in the past).
    pub fn schedule_topology(&mut self, at: SimTime, event: TopologyEvent) {
        let key = self.world_ctr;
        self.world_ctr += 1;
        self.schedule_topology_keyed(at, key, event);
    }

    /// [`Engine::schedule_topology`] with a caller-supplied world key — the
    /// sharded coordinator assigns keys centrally so every shard files the
    /// same event under the same `(time, key)`.
    pub(crate) fn schedule_topology_keyed(&mut self, at: SimTime, key: u64, event: TopologyEvent) {
        assert!(
            at >= self.now,
            "topology event scheduled in the past ({at} < {})",
            self.now
        );
        let _ = self.queue.push(at, key, EventKind::Topology(event));
    }

    /// `(live, dead)` entry counts of the event queue: pending events and
    /// cancelled-but-still-referenced bookkeeping residue. Exposed for the
    /// timer-reclamation regression tests.
    pub fn queue_stats(&self) -> (usize, usize) {
        (self.queue.len(), self.queue.dead_refs())
    }

    /// Whether an in-flight message riding `edge` toward `to` was lost:
    /// the link failed or the receiver departed while it was on the wire.
    /// Edge ids are retired permanently on removal and a departing node
    /// loses all incident edges, so one O(1) liveness-bit read replaces
    /// the former O(degree) `find_edge` scan per delivery: a *live* edge
    /// id still connects the endpoints it was minted for, and a link that
    /// failed and was re-established mid-flight (or a receiver that
    /// rejoined on the same anchor) carries a fresh id, leaving the
    /// message's own edge dead.
    #[inline]
    fn link_died_in_flight(&self, to: NodeId, edge: EdgeId) -> bool {
        !self.is_active(to) || !self.graph.edge_is_live(edge)
    }

    /// Cancel every pending timer of `node`, reclaiming the queue entries
    /// eagerly. Each cancelled timer counts as dropped, exactly as it would
    /// have when popped lazily under the old scheme.
    fn cancel_node_timers(&mut self, node: NodeId) {
        for id in std::mem::take(&mut self.pending_timers[node.0]) {
            if self.queue.cancel(id) {
                self.messages_dropped += 1;
                if R::ENABLED {
                    self.recorder
                        .message_dropped(self.now, MessageClass::Timer, 1);
                }
            }
        }
    }

    /// Turn the actions one upcall recorded into scheduled events,
    /// draining the buffer in place (its capacity is recycled). Sends are
    /// already edge-resolved by the [`Context`], so no per-send adjacency
    /// scan happens here; floods walk the adjacency list exactly once.
    /// Under sharding, sends whose receiver lives on another shard go to
    /// the outbox (carrying the same `(time, key)` they would have been
    /// queued under locally) instead of the local queue.
    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P::Message>>) {
        for a in actions.drain(..) {
            match a {
                Action::Send {
                    to,
                    msg,
                    size_bytes,
                } => {
                    self.stats.record_send(node, size_bytes);
                    if R::ENABLED {
                        self.recorder.message_sent(
                            self.now,
                            P::classify(&msg),
                            1,
                            size_bytes as u64,
                        );
                    }
                    let time = self.now + to.weight + self.processing_delay;
                    let key = self.node_key(node);
                    if self.owns(to.node) {
                        let _ = self.queue.push(
                            time,
                            key,
                            EventKind::Deliver {
                                from: node,
                                to: to.node,
                                edge: to.edge,
                                msg,
                                size_bytes,
                            },
                        );
                    } else {
                        self.outbox().push(Outbound {
                            time,
                            key,
                            from: node,
                            kind: OutboundKind::Msg {
                                to: to.node,
                                edge: to.edge,
                                msg,
                                size_bytes,
                            },
                        });
                    }
                }
                Action::SendBatch { to, msgs } => {
                    for (msg, size_bytes) in msgs.iter() {
                        self.stats.record_send(node, *size_bytes);
                        if R::ENABLED {
                            let class = MessageClass::shaped(P::classify(msg), MessageClass::Batch);
                            self.recorder
                                .message_sent(self.now, class, 1, *size_bytes as u64);
                        }
                    }
                    let time = self.now + to.weight + self.processing_delay;
                    let key = self.node_key(node);
                    if self.owns(to.node) {
                        let _ = self.queue.push(
                            time,
                            key,
                            EventKind::DeliverBatch {
                                from: node,
                                to: to.node,
                                edge: to.edge,
                                msgs,
                            },
                        );
                    } else {
                        self.outbox().push(Outbound {
                            time,
                            key,
                            from: node,
                            kind: OutboundKind::Batch {
                                to: to.node,
                                edge: to.edge,
                                msgs,
                            },
                        });
                    }
                }
                Action::Flood { msg, size_bytes } => {
                    // Split borrows: walk the graph's adjacency while
                    // pushing to the queue and counting into the stats.
                    let (now, delay) = (self.now, self.processing_delay);
                    let key = self.node_key(node);
                    let Engine {
                        graph,
                        queue,
                        stats,
                        recorder,
                        shard,
                        ..
                    } = self;
                    let nbrs = graph.neighbors(node);
                    if nbrs.is_empty() {
                        continue; // no neighbors, nothing to send
                    }
                    if R::ENABLED {
                        let class = MessageClass::shaped(P::classify(&msg), MessageClass::Flood);
                        recorder.message_sent(
                            now,
                            class,
                            nbrs.len() as u64,
                            (size_bytes * nbrs.len()) as u64,
                        );
                    }
                    // Group the copies by link weight: every distinct
                    // latency is one arrival instant, so each group is ONE
                    // queue entry carrying the payload once, replicated at
                    // the pop — uniform-weight graphs collapse to a single
                    // entry (the common case), and geometric topologies get
                    // one entry per distinct latency instead of one per
                    // neighbor. Under sharding, each group additionally
                    // splits off its remote targets into one outbound flood.
                    type FloodGroup = (Weight, Vec<(NodeId, EdgeId)>, Vec<(NodeId, EdgeId)>);
                    let mut groups: Vec<FloodGroup> = Vec::new();
                    for nb in nbrs {
                        stats.record_send(node, size_bytes);
                        let local = match shard {
                            None => true,
                            Some(s) => s.partition.shard_of(nb.node) == s.me,
                        };
                        let g = match groups.iter_mut().find(|g| g.0 == nb.weight) {
                            Some(g) => g,
                            None => {
                                groups.push((nb.weight, Vec::new(), Vec::new()));
                                groups.last_mut().expect("just pushed")
                            }
                        };
                        if local {
                            g.1.push((nb.node, nb.edge));
                        } else {
                            g.2.push((nb.node, nb.edge));
                        }
                    }
                    // All copies of one flood share the flood's key; they
                    // differ in time (per weight) or destination shard, so
                    // no two events of one queue collide on (time, key).
                    // The payload moves into the last entry, cloning only
                    // for the extra groups.
                    let mut left: usize = groups
                        .iter()
                        .map(|g| usize::from(!g.1.is_empty()) + usize::from(!g.2.is_empty()))
                        .sum();
                    let mut msg = Some(msg);
                    for (w, local_t, remote_t) in groups {
                        let time = now + w + delay;
                        if !local_t.is_empty() {
                            left -= 1;
                            let m = match left {
                                0 => msg.take().expect("one payload per push"),
                                _ => msg.as_ref().expect("payload still owned").clone(),
                            };
                            let _ = queue.push(
                                time,
                                key,
                                EventKind::DeliverFlood {
                                    from: node,
                                    msg: m,
                                    targets: local_t.into_boxed_slice(),
                                    size_bytes,
                                },
                            );
                        }
                        if !remote_t.is_empty() {
                            left -= 1;
                            let m = match left {
                                0 => msg.take().expect("one payload per push"),
                                _ => msg.as_ref().expect("payload still owned").clone(),
                            };
                            shard
                                .as_mut()
                                .expect("remote flood targets require a shard binding")
                                .outbox
                                .push(Outbound {
                                    time,
                                    key,
                                    from: node,
                                    kind: OutboundKind::Flood {
                                        targets: remote_t,
                                        msg: m,
                                        size_bytes,
                                    },
                                });
                        }
                    }
                }
                Action::Timer { delay, token } => {
                    let key = self.node_key(node);
                    let id = self.queue.push(
                        self.now + delay,
                        key,
                        EventKind::Timer {
                            node,
                            token,
                            epoch: self.epoch[node.0],
                        },
                    );
                    self.pending_timers[node.0].push(id);
                }
            }
        }
    }

    /// The cross-shard outbox (must only be reached with a shard binding:
    /// the sequential engine owns every node, so nothing diverts here).
    #[inline]
    fn outbox(&mut self) -> &mut Vec<Outbound<P::Message>> {
        &mut self
            .shard
            .as_mut()
            .expect("cross-shard send requires a shard binding")
            .outbox
    }

    /// Run `upcall` on node `v` with a context over the engine's recycled
    /// action buffer and apply the actions it records. No allocation after
    /// the buffer's capacity warms up.
    fn upcall(&mut self, v: NodeId, upcall: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        self.upcall_via(v, None, upcall);
    }

    /// [`Self::upcall`] with the arrival link pre-resolved (message
    /// deliveries): the context answers `link_weight(sender)` and reply
    /// resolution in O(1) instead of re-scanning the adjacency list.
    fn upcall_via(
        &mut self,
        v: NodeId,
        via: Option<disco_graph::Neighbor>,
        upcall: impl FnOnce(&mut P, &mut Context<'_, P::Message>),
    ) {
        // Sample the node's selection revision around the upcall: a change
        // means its selected next hops moved, which feeds the repair-latency
        // probe. Folded away entirely under the no-op recorder.
        let rev = if R::ENABLED {
            self.nodes[v.0].control_revision()
        } else {
            0
        };
        let buffer = std::mem::take(&mut self.action_scratch);
        let mut ctx = Context::with_buffer(v, self.now, &self.graph, self.default_msg_size, buffer);
        ctx.set_via(via);
        upcall(&mut self.nodes[v.0], &mut ctx);
        let mut actions = ctx.into_buffer();
        self.apply_actions(v, &mut actions);
        self.action_scratch = actions;
        if R::ENABLED && self.nodes[v.0].control_revision() != rev {
            self.recorder.selection_changed(self.now, v.0 as u32);
        }
    }

    /// The resolved arrival link for a delivery that just passed the
    /// liveness check: the edge is live, so its record still describes
    /// the current link between sender and receiver.
    #[inline]
    fn via_of(&self, from: NodeId, edge: EdgeId) -> disco_graph::Neighbor {
        disco_graph::Neighbor {
            node: from,
            edge,
            weight: self.graph.edge(edge).weight,
        }
    }

    /// Apply one topology mutation and deliver the resulting neighbor
    /// up/down upcalls.
    fn apply_topology(&mut self, event: TopologyEvent) {
        self.topology_events += 1;
        if R::ENABLED {
            let (kind, node) = match &event {
                TopologyEvent::NodeJoin { node, .. } => ("join", node.0),
                TopologyEvent::NodeLeave { node } => ("leave", node.0),
                TopologyEvent::LinkUp { u, .. } => ("link_up", u.0),
                TopologyEvent::LinkDown { u, .. } => ("link_down", u.0),
            };
            self.recorder.topology_changed(self.now, kind, node as u32);
        }
        match event {
            TopologyEvent::LinkUp { u, v, weight } => {
                if !self.is_active(u) || !self.is_active(v) {
                    return;
                }
                if self.graph.insert_edge(u, v, weight).is_some() {
                    if self.owns(u) {
                        self.upcall(u, |p, ctx| p.on_neighbor_up(v, ctx));
                    }
                    if self.owns(v) {
                        self.upcall(v, |p, ctx| p.on_neighbor_up(u, ctx));
                    }
                }
            }
            TopologyEvent::LinkDown { u, v } => {
                if self.graph.remove_edge(u, v).is_some() {
                    if self.is_active(u) && self.owns(u) {
                        self.upcall(u, |p, ctx| p.on_neighbor_down(v, ctx));
                    }
                    if self.is_active(v) && self.owns(v) {
                        self.upcall(v, |p, ctx| p.on_neighbor_down(u, ctx));
                    }
                }
            }
            TopologyEvent::NodeLeave { node } => {
                if !self.is_active(node) {
                    return;
                }
                self.active[node.0] = false;
                // The departed incarnation's timers are dead; reclaim them
                // from the queue now instead of dropping them one by one as
                // they pop. (Under sharding only the owner holds handles,
                // so replicas drop nothing here.)
                self.cancel_node_timers(node);
                let former = self.graph.detach_node(node);
                for (peer, _) in former {
                    if self.is_active(peer) && self.owns(peer) {
                        self.upcall(peer, |p, ctx| p.on_neighbor_down(node, ctx));
                    }
                }
            }
            TopologyEvent::NodeJoin { node, links } => {
                // Grow the id space if the joiner is brand new.
                while node.0 >= self.graph.node_count() {
                    let id = self.graph.add_node();
                    self.nodes.push((self.factory)(id));
                    self.active.push(false);
                    self.epoch.push(0);
                    self.pending_timers.push(Vec::new());
                    self.push_ctr.push(0);
                }
                self.stats.grow_to(self.graph.node_count());
                if self.active[node.0] {
                    return; // already present; treat as no-op
                }
                if self.graph.degree(node) > 0 {
                    // A departed node keeps no links; a fresh id starts with
                    // none. Anything else is an engine invariant violation.
                    panic!("joining node {node} already has edges");
                }
                // Rejoining: fresh protocol state, new incarnation. Any
                // timer handle of the previous life that somehow survived
                // the leave-time sweep would become epoch-dead here —
                // cancel it now so it is reclaimed eagerly (and counted in
                // the queue's dead gauge) instead of lingering as a live
                // queue entry until its pop time.
                self.cancel_node_timers(node);
                self.epoch[node.0] += 1;
                self.nodes[node.0] = (self.factory)(node);
                self.active[node.0] = true;
                let mut attached = Vec::new();
                for (peer, weight) in links {
                    if peer.0 < self.graph.node_count()
                        && self.active[peer.0]
                        && self.graph.insert_edge(node, peer, weight).is_some()
                    {
                        attached.push(peer);
                    }
                }
                // The joiner boots first (it sees its links in the context),
                // then both sides observe the new adjacency.
                if self.owns(node) {
                    self.upcall(node, |p, ctx| p.on_start(ctx));
                }
                for peer in attached {
                    if self.owns(node) {
                        self.upcall(node, |p, ctx| p.on_neighbor_up(peer, ctx));
                    }
                    if self.owns(peer) {
                        self.upcall(peer, |p, ctx| p.on_neighbor_up(node, ctx));
                    }
                }
            }
        }
    }

    /// Deliver `on_start` to every node (in id order) at time 0. Called
    /// automatically by [`Engine::run`]; exposed separately so callers can
    /// interleave manual event injection (runs like [`Engine::run_until`]
    /// skip it, preserving full control over the initial events).
    pub fn start(&mut self) {
        self.started = true;
        for id in 0..self.nodes.len() {
            let node = NodeId(id);
            if self.active[id] && self.owns(node) {
                self.upcall(node, |p, ctx| p.on_start(ctx));
            }
        }
    }

    /// Process events until quiescence or a safety limit; returns the run
    /// report. Calls [`Engine::start`] first unless it already ran (so
    /// pre-scheduled topology events don't suppress the boot); call
    /// [`Engine::start`] and [`Engine::run_until`] yourself for full
    /// control over the initial events.
    pub fn run(&mut self) -> RunReport {
        if !self.started && self.events_processed == 0 {
            self.start();
        }
        let converged = self.run_until(|_| false);
        self.report(converged)
    }

    /// The report for the run so far.
    pub fn report(&self, converged: bool) -> RunReport {
        RunReport {
            converged,
            end_time: self.now,
            events_processed: self.events_processed,
            topology_events: self.topology_events,
            messages_dropped: self.messages_dropped,
            messages_delivered: self.messages_delivered,
            stale_timer_pops: self.stale_timer_pops,
            queue_live: self.queue.len(),
            queue_dead: self.queue.dead_refs(),
            stats: self.stats.clone(),
        }
    }

    /// Process all events with timestamps `<= t`, then advance the clock to
    /// `t`. Returns true if the queue is empty afterwards. Useful for
    /// interleaving probes with a running simulation at fixed times.
    pub fn run_to(&mut self, t: SimTime) -> bool {
        if !self.started && self.events_processed == 0 {
            self.start();
        }
        while self.queue.peek_time().is_some_and(|pt| pt <= t) {
            if !self.step() {
                break;
            }
        }
        self.now = self.now.max(t);
        self.queue.is_empty()
    }

    /// Process a single event. Returns false if the queue was empty or a
    /// safety limit tripped.
    fn step(&mut self) -> bool {
        let Some((id, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.events_processed += 1;
        // Wall-clock the event only when a recorder is attached; under the
        // no-op recorder the timer, the per-arm class and the final
        // `event_done` upcall all fold away.
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let ev_class = match ev.kind {
            EventKind::Deliver {
                from,
                to,
                edge,
                msg,
                size_bytes,
            } => {
                let class = if R::ENABLED {
                    P::classify(&msg)
                } else {
                    MessageClass::Deliver
                };
                if self.link_died_in_flight(to, edge) {
                    self.messages_dropped += 1;
                    if R::ENABLED {
                        self.recorder.message_dropped(self.now, class, 1);
                    }
                } else {
                    self.stats.record_receive(to, size_bytes);
                    self.messages_delivered += 1;
                    if R::ENABLED {
                        self.recorder.message_delivered(
                            self.now,
                            class,
                            from.0 as u32,
                            to.0 as u32,
                        );
                    }
                    let via = self.via_of(from, edge);
                    self.upcall_via(to, Some(via), |p, ctx| p.on_message(from, msg, ctx));
                }
                class
            }
            EventKind::DeliverBatch {
                from,
                to,
                edge,
                msgs,
            } => {
                // One liveness check covers the whole batch: its messages
                // would have popped back-to-back (consecutive seqs at one
                // timestamp), so no topology event can interleave — the
                // per-message checks of singleton delivery are provably
                // equal. A lost batch loses every message in it.
                if self.link_died_in_flight(to, edge) {
                    self.messages_dropped += msgs.len() as u64;
                    if R::ENABLED {
                        for (msg, _) in msgs.iter() {
                            let class = MessageClass::shaped(P::classify(msg), MessageClass::Batch);
                            self.recorder.message_dropped(self.now, class, 1);
                        }
                    }
                } else {
                    let via = self.via_of(from, edge);
                    for (msg, size_bytes) in msgs.into_vec() {
                        self.stats.record_receive(to, size_bytes);
                        self.messages_delivered += 1;
                        if R::ENABLED {
                            let class =
                                MessageClass::shaped(P::classify(&msg), MessageClass::Batch);
                            self.recorder.message_delivered(
                                self.now,
                                class,
                                from.0 as u32,
                                to.0 as u32,
                            );
                        }
                        self.upcall_via(to, Some(via), |p, ctx| p.on_message(from, msg, ctx));
                    }
                }
                MessageClass::Batch
            }
            EventKind::DeliverFlood {
                from,
                msg,
                targets,
                size_bytes,
            } => {
                // Replicate at the fan-out point: one payload, one clone
                // (refcount bump for interned payloads) per live target,
                // in adjacency order at send time — the order the
                // per-neighbor entries popped in before packing. Liveness
                // stays per target: a single failed link loses only that
                // copy.
                let class = if R::ENABLED {
                    MessageClass::shaped(P::classify(&msg), MessageClass::Flood)
                } else {
                    MessageClass::Flood
                };
                for (to, edge) in targets.into_vec() {
                    if self.link_died_in_flight(to, edge) {
                        self.messages_dropped += 1;
                        if R::ENABLED {
                            self.recorder.message_dropped(self.now, class, 1);
                        }
                    } else {
                        self.stats.record_receive(to, size_bytes);
                        self.messages_delivered += 1;
                        if R::ENABLED {
                            self.recorder.message_delivered(
                                self.now,
                                class,
                                from.0 as u32,
                                to.0 as u32,
                            );
                        }
                        let m = msg.clone();
                        let via = self.via_of(from, edge);
                        self.upcall_via(to, Some(via), |p, ctx| p.on_message(from, m, ctx));
                    }
                }
                class
            }
            EventKind::Timer { node, token, epoch } => {
                // This timer fired, so its handle is spent.
                let handles = &mut self.pending_timers[node.0];
                if let Some(pos) = handles.iter().position(|&h| h == id) {
                    handles.swap_remove(pos);
                }
                // Timers of departed nodes and of previous incarnations are
                // discarded (defense in depth: eager cancellation on leave
                // and rejoin should already have reclaimed them — the
                // counter tracks any that slip through).
                if !self.is_active(node) || self.epoch[node.0] != epoch {
                    self.messages_dropped += 1;
                    self.stale_timer_pops += 1;
                    if R::ENABLED {
                        self.recorder
                            .message_dropped(self.now, MessageClass::Timer, 1);
                    }
                } else {
                    if R::ENABLED {
                        self.recorder.message_delivered(
                            self.now,
                            MessageClass::Timer,
                            node.0 as u32,
                            node.0 as u32,
                        );
                    }
                    self.upcall(node, |p, ctx| p.on_timer(token, ctx));
                }
                MessageClass::Timer
            }
            EventKind::Topology(event) => {
                self.apply_topology(event);
                MessageClass::Topology
            }
        };
        if let Some(t0) = wall {
            self.recorder
                .event_done(ev_class, t0.elapsed().as_nanos() as u64);
        }
        self.events_processed < self.max_events && self.now <= self.max_time
    }

    /// Process events until quiescence, a safety limit, or `stop` returns
    /// true for the engine's current state (checked after each event).
    /// Returns true if the queue drained (quiescence).
    pub fn run_until(&mut self, mut stop: impl FnMut(&Self) -> bool) -> bool {
        while !self.queue.is_empty() {
            if !self.step() || stop(self) {
                return false;
            }
        }
        true
    }

    /// Inject a message delivery from outside the protocol (e.g. a test
    /// injecting the first data packet); `from` must currently be a
    /// neighbor of `to` (the message rides the current link and is lost if
    /// that link fails before delivery).
    pub fn inject_message(&mut self, from: NodeId, to: NodeId, msg: P::Message, delay: SimTime) {
        let edge = self
            .graph
            .find_edge(from, to)
            .expect("inject_message requires an existing link");
        let key = self.world_ctr;
        self.world_ctr += 1;
        let _ = self.queue.push(
            self.now + delay,
            key,
            EventKind::Deliver {
                from,
                to,
                edge,
                msg,
                size_bytes: self.default_msg_size,
            },
        );
    }

    /// Process every event strictly before `end` (at or before, when
    /// `inclusive`) — one conservative-lookahead window of a sharded run.
    /// Does not auto-start and does not advance the clock past the last
    /// processed event.
    pub(crate) fn run_window(&mut self, end: SimTime, inclusive: bool) {
        while let Some(pt) = self.queue.peek_time() {
            let within = if inclusive { pt <= end } else { pt < end };
            if !within || !self.step() {
                break;
            }
        }
    }

    /// Timestamp of the earliest pending local event, if any.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

impl<P: ShardProtocol, Q: EventQueue<P::Message>, R: Recorder> Engine<'_, P, Q, R> {
    /// Drain the outbox into wire form, resolving each event's destination
    /// shard. Flood groups split per destination shard here (preserving
    /// adjacency order within each), so one cross-shard flood stays one
    /// wire event per receiving shard.
    pub(crate) fn flush_outbox(&mut self) -> Vec<(usize, WireEvent<P::Wire>)> {
        let Some(shard) = &mut self.shard else {
            return Vec::new();
        };
        let partition = shard.partition;
        let mut out = Vec::new();
        for ob in shard.outbox.drain(..) {
            match ob.kind {
                OutboundKind::Msg {
                    to,
                    edge,
                    msg,
                    size_bytes,
                } => out.push((
                    partition.shard_of(to),
                    WireEvent {
                        time: ob.time,
                        key: ob.key,
                        from: ob.from,
                        body: WireBody::Msg {
                            to,
                            edge,
                            wire: P::to_wire(msg),
                            size_bytes,
                        },
                    },
                )),
                OutboundKind::Batch { to, edge, msgs } => out.push((
                    partition.shard_of(to),
                    WireEvent {
                        time: ob.time,
                        key: ob.key,
                        from: ob.from,
                        body: WireBody::Batch {
                            to,
                            edge,
                            msgs: msgs
                                .into_vec()
                                .into_iter()
                                .map(|(m, s)| (P::to_wire(m), s))
                                .collect(),
                        },
                    },
                )),
                OutboundKind::Flood {
                    targets,
                    msg,
                    size_bytes,
                } => {
                    let mut by_shard: Vec<(usize, Vec<(NodeId, EdgeId)>)> = Vec::new();
                    for (to, edge) in targets {
                        let dest = partition.shard_of(to);
                        match by_shard.iter_mut().find(|(s, _)| *s == dest) {
                            Some((_, v)) => v.push((to, edge)),
                            None => by_shard.push((dest, vec![(to, edge)])),
                        }
                    }
                    for (dest, targets) in by_shard {
                        out.push((
                            dest,
                            WireEvent {
                                time: ob.time,
                                key: ob.key,
                                from: ob.from,
                                body: WireBody::Flood {
                                    targets,
                                    wire: P::to_wire(msg.clone()),
                                    size_bytes,
                                },
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    /// File one cross-shard arrival into the local queue under the
    /// `(time, key)` its sender assigned.
    pub(crate) fn ingest_wire(&mut self, ev: WireEvent<P::Wire>) {
        let kind = match ev.body {
            WireBody::Msg {
                to,
                edge,
                wire,
                size_bytes,
            } => EventKind::Deliver {
                from: ev.from,
                to,
                edge,
                msg: P::from_wire(wire),
                size_bytes,
            },
            WireBody::Batch { to, edge, msgs } => EventKind::DeliverBatch {
                from: ev.from,
                to,
                edge,
                msgs: msgs
                    .into_iter()
                    .map(|(w, s)| (P::from_wire(w), s))
                    .collect(),
            },
            WireBody::Flood {
                targets,
                wire,
                size_bytes,
            } => EventKind::DeliverFlood {
                from: ev.from,
                msg: P::from_wire(wire),
                targets: targets.into_boxed_slice(),
                size_bytes,
            },
        };
        let _ = self.queue.push(ev.time, ev.key, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    /// Simple echo protocol: node 0 pings all neighbors; every node replies
    /// to pings once.
    #[derive(Default)]
    struct PingPong {
        pings_received: u32,
        pongs_received: u32,
    }

    #[derive(Clone)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Message = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.node_id() == NodeId(0) {
                ctx.broadcast(Msg::Ping);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => {
                    self.pongs_received += 1;
                }
            }
        }
    }

    #[test]
    fn ping_pong_converges() {
        let g = generators::star(9); // hub 0 with 8 leaves
        let mut e = Engine::new(&g, |_| PingPong::default());
        let report = e.run();
        assert!(report.converged);
        // 8 pings + 8 pongs.
        assert_eq!(report.stats.total_sent(), 16);
        assert_eq!(e.nodes()[0].pongs_received, 8);
        for leaf in 1..9 {
            assert_eq!(e.nodes()[leaf].pings_received, 1);
        }
    }

    #[test]
    fn latency_orders_deliveries() {
        // Line 0-1 (w=1) and 0-2 via builder weights: use geometric-like weights.
        use disco_graph::GraphBuilder;
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        let g = b.build();

        struct Recorder {
            arrival: Option<f64>,
        }
        impl Protocol for Recorder {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
                self.arrival = Some(ctx.now());
            }
        }

        let mut e = Engine::new(&g, |_| Recorder { arrival: None });
        e.run();
        let t1 = e.nodes()[1].arrival.unwrap();
        let t2 = e.nodes()[2].arrival.unwrap();
        assert!(t2 < t1, "closer neighbor must hear first ({t2} vs {t1})");
    }

    #[test]
    fn timer_fires() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Protocol for TimerNode {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(3.0, 42);
                ctx.set_timer(1.0, 7);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, ()>) {
                self.fired.push(token);
            }
        }
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| TimerNode { fired: vec![] });
        let report = e.run();
        assert!(report.converged);
        assert_eq!(e.nodes()[0].fired, vec![7, 42]);
        assert!((report.end_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_safety_valve() {
        // A protocol that ping-pongs forever between two nodes.
        struct Forever;
        impl Protocol for Forever {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| Forever);
        e.max_events = 1000;
        let report = e.run();
        assert!(!report.converged);
        assert_eq!(report.events_processed, 1000);
    }

    #[test]
    fn deterministic_runs() {
        let g = generators::gnm_connected(64, 256, 3);
        let run = |_: ()| {
            let mut e = Engine::new(&g, |_| PingPong::default());
            e.run().stats.total_sent()
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn inject_message_delivers() {
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| PingPong::default());
        // Suppress normal start: directly inject a ping from 1 to 0.
        e.inject_message(NodeId(1), NodeId(0), Msg::Ping, 0.5);
        let converged = e.run_until(|_| false);
        assert!(converged);
        assert_eq!(e.nodes()[0].pings_received, 1);
    }

    /// A protocol that records every neighbor-up/down observation.
    #[derive(Default)]
    struct AdjacencyWatcher {
        ups: Vec<NodeId>,
        downs: Vec<NodeId>,
        started: u32,
    }

    impl Protocol for AdjacencyWatcher {
        type Message = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {
            self.started += 1;
        }
        fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
        fn on_neighbor_up(&mut self, peer: NodeId, _ctx: &mut Context<'_, ()>) {
            self.ups.push(peer);
        }
        fn on_neighbor_down(&mut self, peer: NodeId, _ctx: &mut Context<'_, ()>) {
            self.downs.push(peer);
        }
    }

    #[test]
    fn link_down_and_up_notify_both_endpoints() {
        let g = generators::ring(4);
        let mut e = Engine::new(&g, |_| AdjacencyWatcher::default());
        e.schedule_topology(
            1.0,
            TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            },
        );
        e.schedule_topology(
            2.0,
            TopologyEvent::LinkUp {
                u: NodeId(0),
                v: NodeId(1),
                weight: 2.0,
            },
        );
        let report = e.run();
        assert!(report.converged);
        assert_eq!(report.topology_events, 2);
        assert_eq!(e.nodes()[0].downs, vec![NodeId(1)]);
        assert_eq!(e.nodes()[1].downs, vec![NodeId(0)]);
        assert_eq!(e.nodes()[0].ups, vec![NodeId(1)]);
        assert_eq!(e.nodes()[1].ups, vec![NodeId(0)]);
        assert_eq!(e.graph().edge_weight(NodeId(0), NodeId(1)), Some(2.0));
    }

    #[test]
    fn node_leave_detaches_and_notifies_neighbors() {
        let g = generators::star(5); // hub 0, leaves 1..4
        let mut e = Engine::new(&g, |_| AdjacencyWatcher::default());
        e.schedule_topology(1.0, TopologyEvent::NodeLeave { node: NodeId(0) });
        let report = e.run();
        assert!(report.converged);
        assert!(!e.is_active(NodeId(0)));
        assert_eq!(e.active_count(), 4);
        assert_eq!(e.graph().edge_count(), 0);
        for leaf in 1..5 {
            assert_eq!(e.nodes()[leaf].downs, vec![NodeId(0)]);
        }
        // The departed node itself received no upcall.
        assert!(e.nodes()[0].downs.is_empty());
    }

    /// Regression test for the lazy-cancellation leak: epoch-dead timers
    /// used to sit in the queue (payload and all) until their pop time;
    /// they must now be reclaimed the moment the node leaves.
    #[test]
    fn node_leave_reclaims_pending_timers_eagerly() {
        struct ManyTimers;
        impl Protocol for ManyTimers {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                // The doomed node's timers all fire strictly before the
                // survivors' last one, so every reclaimed queue slot is
                // provably swept by the end of the run.
                let (base, step) = if ctx.node_id() == NodeId(2) {
                    (100.1, 0.5)
                } else {
                    (100.0, 1.0)
                };
                for i in 0..10 {
                    ctx.set_timer(base + i as f64 * step, i);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
        }
        let g = generators::line(3);
        let mut e = Engine::new(&g, |_| ManyTimers);
        e.schedule_topology(2.0, TopologyEvent::NodeLeave { node: NodeId(2) });
        e.run_to(3.0);
        // The departed node's 10 timers are gone from the queue *now* —
        // not at t≈100 when they would have popped — and were accounted
        // as dropped. The survivors' 20 timers remain live; the 10 dead
        // bucket references carry no payload.
        let (live, dead) = e.queue_stats();
        assert_eq!(live, 20, "20 live timers of the two remaining nodes");
        assert_eq!(dead, 10, "10 reclaimed entries awaiting bucket drain");
        assert_eq!(e.messages_dropped(), 10);
        let report = e.run();
        assert!(report.converged);
        assert_eq!(report.messages_dropped, 10);
        assert_eq!(e.queue_stats(), (0, 0), "drain clears all residue");
    }

    /// High-churn regression for the dead-entry gauge: across many
    /// leave/rejoin cycles of timer-heavy nodes, every epoch-dead timer
    /// must be reclaimed *eagerly* (visible in the dead gauge, counted as
    /// dropped) — none may survive to its pop time as a live queue entry.
    #[test]
    fn high_churn_reclaims_all_epoch_dead_timers_eagerly() {
        struct TimerSpammer;
        impl Protocol for TimerSpammer {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                // Long-lived timers that outlive several churn cycles.
                for i in 0..8 {
                    ctx.set_timer(500.0 + i as f64, i);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
            fn on_neighbor_up(&mut self, _p: NodeId, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(400.0, 99);
            }
            fn on_neighbor_down(&mut self, _p: NodeId, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(400.0, 98);
            }
        }
        let g = generators::ring(8);
        let mut e = Engine::new(&g, |_| TimerSpammer);
        // 30 churn cycles: each node repeatedly leaves and rejoins, every
        // incarnation spawning fresh long timers.
        let mut t = 1.0;
        for round in 0..30 {
            let v = NodeId(round % 8);
            e.schedule_topology(t, TopologyEvent::NodeLeave { node: v });
            e.schedule_topology(
                t + 1.0,
                TopologyEvent::NodeJoin {
                    node: v,
                    links: vec![(NodeId((v.0 + 1) % 8), 1.0), (NodeId((v.0 + 7) % 8), 1.0)],
                },
            );
            t += 2.0;
        }
        e.run_to(t + 1.0);
        // Mid-run: plenty of eager cancellations happened; every one of
        // them is accounted in the dead gauge or already swept — and no
        // epoch-dead timer ever reached its pop time.
        assert_eq!(e.stale_timer_pops(), 0, "epoch-dead timer popped live");
        assert!(
            e.messages_dropped() >= 30 * 8,
            "expected >=240 eagerly reclaimed timers, got {}",
            e.messages_dropped()
        );
        let report = e.run();
        assert!(report.converged);
        assert_eq!(e.stale_timer_pops(), 0);
        assert_eq!(
            e.queue_stats(),
            (0, 0),
            "all residue must drain by quiescence"
        );
    }

    #[test]
    fn rejoin_resets_protocol_state_and_discards_stale_timers() {
        struct Rejoiner {
            fired: u32,
            started: u32,
        }
        impl Protocol for Rejoiner {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                self.started += 1;
                ctx.set_timer(10.0, 1); // will outlive the first incarnation
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
            fn on_timer(&mut self, _t: u64, _ctx: &mut Context<'_, ()>) {
                self.fired += 1;
            }
        }
        let g = generators::line(3);
        let mut e = Engine::new(&g, |_| Rejoiner {
            fired: 0,
            started: 0,
        });
        e.schedule_topology(1.0, TopologyEvent::NodeLeave { node: NodeId(2) });
        e.schedule_topology(
            5.0,
            TopologyEvent::NodeJoin {
                node: NodeId(2),
                links: vec![(NodeId(0), 1.0)],
            },
        );
        let report = e.run();
        assert!(report.converged);
        // Fresh instance: started once in the new life.
        assert_eq!(e.nodes()[2].started, 1);
        // The timer set at t=0 (old incarnation) was discarded; only the one
        // set on rejoin fired.
        assert_eq!(e.nodes()[2].fired, 1);
        assert!(report.messages_dropped >= 1);
        // Mobility: the node re-attached elsewhere.
        assert!(e.graph().has_edge(NodeId(0), NodeId(2)));
        assert!(!e.graph().has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn join_grows_network_with_new_node() {
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| AdjacencyWatcher::default());
        e.schedule_topology(
            1.0,
            TopologyEvent::NodeJoin {
                node: NodeId(2),
                links: vec![(NodeId(0), 1.0), (NodeId(1), 2.0)],
            },
        );
        let report = e.run();
        assert!(report.converged);
        assert_eq!(e.graph().node_count(), 3);
        assert_eq!(e.active_count(), 3);
        assert_eq!(e.nodes()[2].started, 1);
        assert_eq!(e.nodes()[2].ups, vec![NodeId(0), NodeId(1)]);
        assert_eq!(e.nodes()[0].ups, vec![NodeId(2)]);
        assert_eq!(e.nodes()[1].ups, vec![NodeId(2)]);
    }

    /// Accounting audit: a batched send must record exactly the same
    /// per-message counts and byte sizes in [`MessageStats`] as the same
    /// messages sent one by one — the churn goldens' `msgs/node` lines
    /// depend on it.
    #[test]
    fn batched_sends_record_identical_per_message_stats() {
        struct Sender {
            batched: bool,
        }
        impl Protocol for Sender {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.node_id() != NodeId(0) {
                    return;
                }
                let msgs = vec![(1u8, 10), (2u8, 25), (3u8, 100)];
                if self.batched {
                    ctx.send_batch(NodeId(1), msgs);
                    ctx.flood_sized(9, 7);
                } else {
                    for (m, s) in msgs {
                        ctx.send_sized(NodeId(1), m, s);
                    }
                    for nb in ctx.neighbors() {
                        ctx.send_sized(nb, 9, 7);
                    }
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: u8, _c: &mut Context<'_, u8>) {}
        }
        let g = generators::star(4); // hub 0, leaves 1..3
        let run = |batched| {
            let mut e = Engine::new(&g, move |_| Sender { batched });
            e.run()
        };
        let single = run(false);
        let batch = run(true);
        assert_eq!(single.stats, batch.stats);
        assert_eq!(batch.stats.sent_by(NodeId(0)), 6); // 3 batched + 3 flooded
        assert_eq!(batch.stats.bytes_sent_by(NodeId(0)), 10 + 25 + 100 + 3 * 7);
        assert_eq!(batch.stats.received_by(NodeId(1)), 4);
        assert_eq!(batch.stats.received_by(NodeId(2)), 1);
        assert_eq!(single.messages_delivered, batch.messages_delivered);
        assert_eq!(batch.messages_delivered, 6);
        // The whole point: the batched run needed fewer queue entries.
        assert!(batch.events_processed < single.events_processed);
    }

    /// A batch whose link dies while it is on the wire loses *every*
    /// message in it — one drop per message, like singleton deliveries.
    #[test]
    fn in_flight_batch_loss_counts_every_message() {
        use disco_graph::GraphBuilder;
        struct BatchSender;
        impl Protocol for BatchSender {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.send_batch(NodeId(1), (0..5).map(|i| (i, 8)).collect());
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: u8, _c: &mut Context<'_, u8>) {
                panic!("batch should have been lost with the link");
            }
        }
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 10.0); // slow link: batch in flight
        let g = b.build();
        let mut e = Engine::new(&g, |_| BatchSender);
        e.schedule_topology(
            1.0,
            TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            },
        );
        let report = e.run();
        assert!(report.converged);
        assert_eq!(report.stats.total_sent(), 5, "sends recorded per message");
        assert_eq!(report.messages_dropped, 5, "losses counted per message");
        assert_eq!(report.messages_delivered, 0);
    }

    #[test]
    fn in_flight_messages_lost_on_link_failure() {
        // Node 0 sends to 1 over a slow link; the link fails while the
        // message is in flight.
        use disco_graph::GraphBuilder;
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 10.0);
        let g = b.build();

        struct Sender;
        impl Protocol for Sender {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {
                panic!("message should have been lost with the link");
            }
        }
        let mut e = Engine::new(&g, |_| Sender);
        e.schedule_topology(
            1.0,
            TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            },
        );
        let report = e.run();
        assert!(report.converged);
        assert_eq!(report.messages_dropped, 1);
        assert_eq!(report.stats.total_sent(), 1);
        assert_eq!(report.stats.received_by(NodeId(1)), 0);
    }

    #[test]
    fn run_to_advances_clock_between_events() {
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| AdjacencyWatcher::default());
        e.schedule_topology(
            5.0,
            TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            },
        );
        e.run_to(2.0);
        assert!((e.now() - 2.0).abs() < 1e-12);
        assert_eq!(e.graph().edge_count(), 1);
        e.run_to(6.0);
        assert_eq!(e.graph().edge_count(), 0);
        assert!((e.now() - 6.0).abs() < 1e-12);
    }
}
