//! The discrete-event simulation engine.

use crate::context::{Action, Context};
use crate::event::{EventKind, EventQueue, SimTime};
use crate::stats::MessageStats;
use crate::Protocol;
use disco_graph::{Graph, NodeId};

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether the simulation reached quiescence (no events left) before
    /// hitting the event or time limit.
    pub converged: bool,
    /// Simulation time of the last processed event.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events_processed: u64,
    /// Message statistics collected during the run.
    pub stats: MessageStats,
}

/// Discrete-event simulator running one [`Protocol`] instance per node of a
/// graph.
pub struct Engine<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    queue: EventQueue<P::Message>,
    stats: MessageStats,
    now: SimTime,
    events_processed: u64,
    /// Safety valve: stop after this many events (default 200 million).
    pub max_events: u64,
    /// Safety valve: stop once simulation time exceeds this (default ∞).
    pub max_time: SimTime,
    /// Default byte size accounted for messages sent via `Context::send`.
    pub default_msg_size: usize,
    /// Fixed per-hop processing delay added to every message in addition to
    /// the link weight; keeps zero-weight pathologies out of the queue.
    pub processing_delay: SimTime,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Create an engine over `graph`, building each node's protocol
    /// instance with `factory`.
    pub fn new(graph: &'g Graph, mut factory: impl FnMut(NodeId) -> P) -> Self {
        let nodes: Vec<P> = graph.nodes().map(&mut factory).collect();
        Engine {
            graph,
            nodes,
            queue: EventQueue::new(),
            stats: MessageStats::new(graph.node_count()),
            now: 0.0,
            events_processed: 0,
            max_events: 200_000_000,
            max_time: f64::INFINITY,
            default_msg_size: 64,
            processing_delay: 0.01,
        }
    }

    /// Immutable access to the per-node protocol instances (indexed by node
    /// id) — used to inspect converged state after a run.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the per-node protocol instances.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Message statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<P::Message>>) {
        for a in actions {
            match a {
                Action::Send {
                    to,
                    msg,
                    size_bytes,
                } => {
                    let weight = self
                        .graph
                        .edge_weight(node, to)
                        .expect("context already validated neighbor");
                    self.stats.record_send(node, size_bytes);
                    self.queue.push(
                        self.now + weight + self.processing_delay,
                        EventKind::Deliver {
                            from: node,
                            to,
                            msg,
                        },
                    );
                }
                Action::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, EventKind::Timer { node, token });
                }
            }
        }
    }

    /// Deliver `on_start` to every node (in id order) at time 0. Called
    /// automatically by [`Engine::run`]; exposed separately so callers can
    /// interleave manual event injection.
    pub fn start(&mut self) {
        for id in 0..self.nodes.len() {
            let node = NodeId(id);
            let mut ctx = Context::new(node, self.now, self.graph, self.default_msg_size);
            self.nodes[id].on_start(&mut ctx);
            let actions = std::mem::take(&mut ctx.actions);
            self.apply_actions(node, actions);
        }
    }

    /// Process events until quiescence or a safety limit; returns the run
    /// report. Calls [`Engine::start`] first if no event has been processed
    /// yet and the queue is empty.
    pub fn run(&mut self) -> RunReport {
        if self.events_processed == 0 && self.queue.is_empty() {
            self.start();
        }
        let converged = self.run_until(|_| false);
        RunReport {
            converged,
            end_time: self.now,
            events_processed: self.events_processed,
            stats: self.stats.clone(),
        }
    }

    /// Process events until quiescence, a safety limit, or `stop` returns
    /// true for the engine's current state (checked after each event).
    /// Returns true if the queue drained (quiescence).
    pub fn run_until(&mut self, mut stop: impl FnMut(&Self) -> bool) -> bool {
        while let Some(ev) = self.queue.pop() {
            self.now = ev.time;
            self.events_processed += 1;
            match ev.kind {
                EventKind::Deliver { from, to, msg } => {
                    self.stats.record_receive(to);
                    let mut ctx = Context::new(to, self.now, self.graph, self.default_msg_size);
                    self.nodes[to.0].on_message(from, msg, &mut ctx);
                    let actions = std::mem::take(&mut ctx.actions);
                    self.apply_actions(to, actions);
                }
                EventKind::Timer { node, token } => {
                    let mut ctx = Context::new(node, self.now, self.graph, self.default_msg_size);
                    self.nodes[node.0].on_timer(token, &mut ctx);
                    let actions = std::mem::take(&mut ctx.actions);
                    self.apply_actions(node, actions);
                }
            }
            if self.events_processed >= self.max_events || self.now > self.max_time {
                return false;
            }
            if stop(self) {
                return false;
            }
        }
        true
    }

    /// Inject a message delivery from outside the protocol (e.g. a test
    /// injecting the first data packet); `from` must be a neighbor of `to`.
    pub fn inject_message(&mut self, from: NodeId, to: NodeId, msg: P::Message, delay: SimTime) {
        self.queue
            .push(self.now + delay, EventKind::Deliver { from, to, msg });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    /// Simple echo protocol: node 0 pings all neighbors; every node replies
    /// to pings once.
    #[derive(Default)]
    struct PingPong {
        pings_received: u32,
        pongs_received: u32,
    }

    #[derive(Clone)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Message = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.node_id() == NodeId(0) {
                ctx.broadcast(Msg::Ping);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => {
                    self.pongs_received += 1;
                }
            }
        }
    }

    #[test]
    fn ping_pong_converges() {
        let g = generators::star(9); // hub 0 with 8 leaves
        let mut e = Engine::new(&g, |_| PingPong::default());
        let report = e.run();
        assert!(report.converged);
        // 8 pings + 8 pongs.
        assert_eq!(report.stats.total_sent(), 16);
        assert_eq!(e.nodes()[0].pongs_received, 8);
        for leaf in 1..9 {
            assert_eq!(e.nodes()[leaf].pings_received, 1);
        }
    }

    #[test]
    fn latency_orders_deliveries() {
        // Line 0-1 (w=1) and 0-2 via builder weights: use geometric-like weights.
        use disco_graph::GraphBuilder;
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        let g = b.build();

        struct Recorder {
            arrival: Option<f64>,
        }
        impl Protocol for Recorder {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
                self.arrival = Some(ctx.now());
            }
        }

        let mut e = Engine::new(&g, |_| Recorder { arrival: None });
        e.run();
        let t1 = e.nodes()[1].arrival.unwrap();
        let t2 = e.nodes()[2].arrival.unwrap();
        assert!(t2 < t1, "closer neighbor must hear first ({t2} vs {t1})");
    }

    #[test]
    fn timer_fires() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Protocol for TimerNode {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(3.0, 42);
                ctx.set_timer(1.0, 7);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, ()>) {
                self.fired.push(token);
            }
        }
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| TimerNode { fired: vec![] });
        let report = e.run();
        assert!(report.converged);
        assert_eq!(e.nodes()[0].fired, vec![7, 42]);
        assert!((report.end_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_safety_valve() {
        // A protocol that ping-pongs forever between two nodes.
        struct Forever;
        impl Protocol for Forever {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| Forever);
        e.max_events = 1000;
        let report = e.run();
        assert!(!report.converged);
        assert_eq!(report.events_processed, 1000);
    }

    #[test]
    fn deterministic_runs() {
        let g = generators::gnm_connected(64, 256, 3);
        let run = |_: ()| {
            let mut e = Engine::new(&g, |_| PingPong::default());
            e.run().stats.total_sent()
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn inject_message_delivers() {
        let g = generators::line(2);
        let mut e = Engine::new(&g, |_| PingPong::default());
        // Suppress normal start: directly inject a ping from 1 to 0.
        e.inject_message(NodeId(1), NodeId(0), Msg::Ping, 0.5);
        let converged = e.run_until(|_| false);
        assert!(converged);
        assert_eq!(e.nodes()[0].pings_received, 1);
    }
}
