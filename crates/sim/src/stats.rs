//! Message accounting.
//!
//! The paper's Fig. 8 reports "mean messages per node sent until
//! convergence"; this module collects exactly that, plus byte counts and
//! per-node breakdowns so the distribution (not just the mean) can be
//! inspected.

use disco_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Per-run message statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    sent: Vec<u64>,
    received: Vec<u64>,
    bytes_sent: Vec<u64>,
    bytes_received: Vec<u64>,
}

impl MessageStats {
    /// Statistics for a network of `n` nodes with all counters zero.
    pub fn new(n: usize) -> Self {
        MessageStats {
            sent: vec![0; n],
            received: vec![0; n],
            bytes_sent: vec![0; n],
            bytes_received: vec![0; n],
        }
    }

    /// Extend the per-node counters to cover `n` nodes (newly joined nodes
    /// start at zero). Counters never shrink.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.sent.len() {
            self.sent.resize(n, 0);
            self.received.resize(n, 0);
            self.bytes_sent.resize(n, 0);
            self.bytes_received.resize(n, 0);
        }
    }

    /// Record one message of `size_bytes` sent by `from` (and eventually
    /// received by `to`).
    pub fn record_send(&mut self, from: NodeId, size_bytes: usize) {
        self.sent[from.0] += 1;
        self.bytes_sent[from.0] += size_bytes as u64;
    }

    /// Record delivery of a message of `size_bytes` at `to`.
    pub fn record_receive(&mut self, to: NodeId, size_bytes: usize) {
        self.received[to.0] += 1;
        self.bytes_received[to.0] += size_bytes as u64;
    }

    /// Messages sent by `v`.
    pub fn sent_by(&self, v: NodeId) -> u64 {
        self.sent[v.0]
    }

    /// Messages received by `v`.
    pub fn received_by(&self, v: NodeId) -> u64 {
        self.received[v.0]
    }

    /// Bytes sent by `v`.
    pub fn bytes_sent_by(&self, v: NodeId) -> u64 {
        self.bytes_sent[v.0]
    }

    /// Bytes received by `v`. Sent and received totals differ exactly by
    /// the bytes lost in flight to link failures and departures.
    pub fn bytes_received_by(&self, v: NodeId) -> u64 {
        self.bytes_received[v.0]
    }

    /// Total bytes received across all nodes.
    pub fn total_bytes_received(&self) -> u64 {
        self.bytes_received.iter().sum()
    }

    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// Mean messages sent per node — the metric of the paper's Fig. 8.
    pub fn mean_sent_per_node(&self) -> f64 {
        if self.sent.is_empty() {
            0.0
        } else {
            self.total_sent() as f64 / self.sent.len() as f64
        }
    }

    /// Maximum messages sent by any single node.
    pub fn max_sent_per_node(&self) -> u64 {
        self.sent.iter().copied().max().unwrap_or(0)
    }

    /// Per-node sent counts (indexable by `NodeId.0`).
    pub fn sent_per_node(&self) -> &[u64] {
        &self.sent
    }

    /// Merge another table into this one by elementwise addition, growing
    /// to cover the larger node space. A sharded run's per-shard tables
    /// are row-disjoint (a node's sends *and* receives are both recorded
    /// on its owner shard), so summing them reassembles exactly the
    /// sequential run's table.
    pub fn absorb(&mut self, other: &MessageStats) {
        self.grow_to(other.sent.len());
        for (a, b) in self.sent.iter_mut().zip(&other.sent) {
            *a += b;
        }
        for (a, b) in self.received.iter_mut().zip(&other.received) {
            *a += b;
        }
        for (a, b) in self.bytes_sent.iter_mut().zip(&other.bytes_sent) {
            *a += b;
        }
        for (a, b) in self.bytes_received.iter_mut().zip(&other.bytes_received) {
            *a += b;
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.sent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut s = MessageStats::new(3);
        s.record_send(NodeId(0), 100);
        s.record_send(NodeId(0), 50);
        s.record_send(NodeId(2), 10);
        s.record_receive(NodeId(1), 100);
        assert_eq!(s.sent_by(NodeId(0)), 2);
        assert_eq!(s.sent_by(NodeId(1)), 0);
        assert_eq!(s.received_by(NodeId(1)), 1);
        assert_eq!(s.bytes_received_by(NodeId(1)), 100);
        assert_eq!(s.total_bytes_received(), 100);
        assert_eq!(s.bytes_sent_by(NodeId(0)), 150);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_bytes(), 160);
        assert!((s.mean_sent_per_node() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_sent_per_node(), 2);
        assert_eq!(s.node_count(), 3);
    }

    #[test]
    fn empty_stats() {
        let s = MessageStats::new(0);
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.mean_sent_per_node(), 0.0);
        assert_eq!(s.max_sent_per_node(), 0);
    }
}
