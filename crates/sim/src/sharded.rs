//! Conservative-lookahead sharded simulation: partition the graph across
//! worker shards and run them in parallel without giving up determinism.
//!
//! ## Model
//!
//! A [`ShardedEngine`] owns `k` worker threads, each running a full
//! [`Engine`] over its own clone of the graph. The seeded [`Partition`]
//! assigns every node to exactly one shard; a shard's engine replays *all*
//! topology events (so its graph replica stays exact) but delivers upcalls
//! only to the nodes it owns. Sends whose receiver lives on another shard
//! are diverted to a per-shard outbox and exchanged at window barriers.
//!
//! ## The lookahead invariant
//!
//! Every message occupies its link for at least the link weight, and link
//! weights never go below the *minimum weight of the initial graph* `W`
//! ([`ShardedEngine::schedule_topology`] rejects lighter late links). So an
//! event executing at time `s` can only cause another shard's state at
//! `s + W` or later: `W` is a conservative lookahead. The coordinator
//! repeatedly finds the globally earliest pending event `t_min`, lets every
//! shard run `[.., t_min + W)` in parallel, then exchanges the cross-shard
//! sends generated — which all carry timestamps `>= t_min + W`, i.e. never
//! in any shard's past.
//!
//! ## Why any shard count produces byte-identical runs
//!
//! Events order by `(time, key, seq)` where `key` is the logical key from
//! [`crate::engine::node_event_key`] — `(source node, per-source counter)`
//! for node actions, a centrally assigned world counter for scheduled
//! topology. Two facts make the run independent of `k`:
//!
//! 1. No two events in one shard's queue share `(time, key)`: a key is
//!    unique per send (per-source counters never repeat) and a flood's
//!    copies that share its key differ in time or destination shard. The
//!    arrival `seq` — the only push-order-dependent tiebreak — therefore
//!    never decides between two cross-shard arrivals.
//! 2. The window boundary `t_min + W` is derived from the global minimum
//!    and the *initial* graph's minimum weight, both `k`-independent, so
//!    every shard count executes the same event set in the same windows.
//!
//! The barrier merge routes outboxes in shard-id order (then outbox push
//! order), which is deterministic too — though by fact 1 the ingestion
//! order cannot matter. `k = 1` runs the exact same code path with an
//! always-empty exchange; the `exp_churn` goldens lock in that single-shard
//! and sequential runs agree byte-for-byte.

use crate::engine::{Engine, RunReport};
use crate::event::{SimTime, TimerWheel, TopologyEvent};
use crate::rng::splitmix64;
use crate::stats::MessageStats;
use crate::Protocol;
use disco_graph::{EdgeId, Graph, NodeId, PathArena, Weight};
use disco_telemetry::{MergeRecorder, NoopRecorder, Recorder};
use scoped_threadpool::plumbing::WorkerHandle;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Lookahead used when the initial graph has no edges at all: no message
/// can ever cross shards (there are no links), so any positive window
/// works; 1.0 matches the default link weight of the generators.
const EMPTY_GRAPH_LOOKAHEAD: Weight = 1.0;

/// A protocol that can run under the [`ShardedEngine`]: its messages have
/// a thread-portable wire form. Protocols whose messages are `Send`
/// already can use themselves as the wire form; protocols with
/// thread-affine payloads (e.g. paths interned in a thread-local arena)
/// detach them into owned data here and re-intern on the receiving shard.
///
/// `from_wire(to_wire(m))` must be semantically identity: the receiving
/// node must behave exactly as if `m` had been delivered locally.
pub trait ShardProtocol: Protocol {
    /// The thread-portable form of [`Protocol::Message`].
    type Wire: Send + 'static;

    /// Detach a message into its wire form (sender shard).
    fn to_wire(msg: Self::Message) -> Self::Wire;

    /// Reattach a wire message (receiver shard).
    fn from_wire(wire: Self::Wire) -> Self::Message;
}

/// The seeded, fixed node→shard assignment. Hash-based so it covers nodes
/// that join beyond the initial id space without any resizing, and `Copy`
/// so every shard can resolve destinations locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    seed: u64,
    shards: usize,
}

impl Partition {
    /// A partition of the node space into `shards` parts (min 1), keyed by
    /// `seed`.
    pub fn new(seed: u64, shards: usize) -> Self {
        Partition {
            seed,
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        (splitmix64(self.seed ^ (v.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            % self.shards as u64) as usize
    }
}

/// Attachment making an [`Engine`] one shard of a sharded run: the
/// partition, this shard's index, and the outbox collecting cross-shard
/// sends of the current window.
pub(crate) struct ShardBinding<M> {
    pub(crate) partition: Partition,
    pub(crate) me: usize,
    pub(crate) outbox: Vec<Outbound<M>>,
}

/// One cross-shard send, still carrying the in-memory message (converted
/// to wire form when the outbox is flushed at the barrier). `time` and
/// `key` are exactly what the event would have been queued under locally.
pub(crate) struct Outbound<M> {
    pub(crate) time: SimTime,
    pub(crate) key: u64,
    pub(crate) from: NodeId,
    pub(crate) kind: OutboundKind<M>,
}

pub(crate) enum OutboundKind<M> {
    Msg {
        to: NodeId,
        edge: EdgeId,
        msg: M,
        size_bytes: usize,
    },
    Batch {
        to: NodeId,
        edge: EdgeId,
        msgs: Box<[(M, usize)]>,
    },
    Flood {
        targets: Vec<(NodeId, EdgeId)>,
        msg: M,
        size_bytes: usize,
    },
}

/// A cross-shard event in wire form, as exchanged at window barriers.
pub(crate) struct WireEvent<W> {
    pub(crate) time: SimTime,
    pub(crate) key: u64,
    pub(crate) from: NodeId,
    pub(crate) body: WireBody<W>,
}

pub(crate) enum WireBody<W> {
    Msg {
        to: NodeId,
        edge: EdgeId,
        wire: W,
        size_bytes: usize,
    },
    Batch {
        to: NodeId,
        edge: EdgeId,
        msgs: Vec<(W, usize)>,
    },
    Flood {
        targets: Vec<(NodeId, EdgeId)>,
        wire: W,
        size_bytes: usize,
    },
}

/// The engine type each worker thread owns (always on the default
/// [`TimerWheel`] queue — each shard has its own wheel).
pub type ShardEngine<P, R = NoopRecorder> =
    Engine<'static, P, TimerWheel<<P as Protocol>::Message>, R>;

/// A boxed closure shipped to a worker by [`ShardedEngine::visit`].
type VisitFn<P, R> = Box<dyn FnOnce(&mut ShardEngine<P, R>) + Send>;

/// Commands the coordinator sends to a worker (processed strictly in
/// order; only `Window`, `Visit` and `Finish` reply).
enum Cmd<P: ShardProtocol + 'static, R: Recorder + Send + 'static> {
    /// Deliver `on_start` to every owned node.
    Start,
    /// Schedule a topology event under the coordinator-assigned world key.
    Topology {
        at: SimTime,
        key: u64,
        ev: TopologyEvent,
    },
    /// File cross-shard arrivals from the last barrier.
    Ingest(Vec<WireEvent<P::Wire>>),
    /// Run one lookahead window, then flush the outbox and report.
    Window { end: SimTime, inclusive: bool },
    /// Run a closure against the shard's engine (probes, stats reads).
    Visit(VisitFn<P, R>),
    /// Finish the recorder at `now` and hand everything back.
    Finish { now: SimTime },
}

/// Cumulative per-shard counters, refreshed at every window barrier.
#[derive(Debug, Clone, Copy, Default)]
struct ShardCounters {
    events: u64,
    delivered: u64,
    dropped: u64,
    stale: u64,
    queue_live: usize,
    queue_dead: usize,
}

/// A worker's report at a window barrier.
struct WindowReport<W> {
    /// The shard's clock (time of its last processed event).
    now: SimTime,
    /// Timestamp of its earliest still-pending local event.
    next: Option<SimTime>,
    counters: ShardCounters,
    /// Cross-shard sends generated this window, `(dest shard, event)`, in
    /// outbox push order.
    outbound: Vec<(usize, WireEvent<W>)>,
}

struct FinishReport<R> {
    stats: MessageStats,
    recorder: R,
    queue_live: usize,
    queue_dead: usize,
    arena_reclaimed_cells: usize,
}

enum Reply<W, R> {
    Window(WindowReport<W>),
    VisitDone,
    Finished(Box<FinishReport<R>>),
}

/// Error returned by [`ShardedEngine::schedule_topology`] for a link
/// lighter than the conservative-lookahead window.
#[derive(Debug, Clone, PartialEq)]
pub struct LookaheadViolation {
    /// The offending link weight.
    pub weight: Weight,
    /// The minimum link weight of the initial graph (= the lookahead).
    pub lookahead: Weight,
}

impl fmt::Display for LookaheadViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot add a link of weight {} to a sharded run: the conservative lookahead \
             window is {} (the minimum link weight of the initial graph), and a lighter \
             link could deliver a cross-shard message into an already-executed window; \
             start from a graph whose minimum weight covers every link you will add",
            self.weight, self.lookahead
        )
    }
}

impl std::error::Error for LookaheadViolation {}

/// Merged result of a sharded run, from [`ShardedEngine::finish`].
pub struct ShardedRunSummary<R> {
    /// Per-node message statistics (the shards' tables are row-disjoint,
    /// so their sum is exactly the sequential run's table).
    pub stats: MessageStats,
    /// The merged telemetry recorder.
    pub recorder: R,
    /// Live queue entries left across all shards.
    pub queue_live: usize,
    /// Dead (cancelled) queue residue left across all shards.
    pub queue_dead: usize,
    /// Path-arena capacity cells released across all shards by the
    /// end-of-run [`PathArena::shrink`] (each worker drops its engine —
    /// freeing that shard's routing state — then compacts its
    /// thread-local arena; without this, a sharded run's workers would
    /// exit still pinning `live ≈ peak` arena capacity).
    pub arena_reclaimed_cells: usize,
}

/// Deterministic parallel simulation coordinator: the sharded counterpart
/// of [`Engine`], driving `k` shard workers through conservative-lookahead
/// windows. See the module docs for the synchronization model and the
/// determinism argument.
///
/// The coordinator mirrors the graph and the active set (applying the same
/// topology events the shards apply, at the same barriers), so topology
/// accessors ([`ShardedEngine::graph`], [`ShardedEngine::is_active`], …)
/// answer without crossing threads. Protocol state lives only on the
/// workers; reach it with [`ShardedEngine::visit`].
pub struct ShardedEngine<P: ShardProtocol + 'static, R: Recorder + Send + 'static = NoopRecorder> {
    workers: Vec<WorkerHandle<Cmd<P, R>>>,
    replies: Vec<Receiver<Reply<P::Wire, R>>>,
    partition: Partition,
    /// The conservative lookahead: minimum link weight of the initial
    /// graph (see module docs).
    lookahead: Weight,
    /// Coordinator mirror of the simulated graph.
    graph: Graph,
    /// Coordinator mirror of the active set.
    active: Vec<bool>,
    /// Scheduled topology events not yet applied to the mirror, sorted by
    /// `(time, key)`; the same events are already queued on every worker.
    pending_topo: Vec<(SimTime, u64, TopologyEvent)>,
    /// Topology events applied to the mirror (equals every shard's count
    /// at barriers — all shards replay all topology).
    applied_topology: u64,
    /// Key counter for world events, mirroring the sequential engine's.
    world_ctr: u64,
    /// Latest per-shard counters (refreshed at barriers).
    counters: Vec<ShardCounters>,
    /// Latest per-shard earliest-pending-event times.
    nexts: Vec<Option<SimTime>>,
    /// Earliest arrival routed at the last barrier (its receiving shard
    /// reports it in `nexts` only from the next barrier on).
    routed_min: Option<SimTime>,
    now: SimTime,
    started: bool,
    /// Safety valve: stop at a barrier once the shards' summed event count
    /// exceeds this (default 200 million, like the sequential engine; the
    /// sum counts a replayed topology event once per shard).
    pub max_events: u64,
}

impl<P: ShardProtocol + 'static> ShardedEngine<P, NoopRecorder> {
    /// A sharded engine over a clone of `graph` with `shards` workers and
    /// a `seed`-keyed partition. `factory` builds each node's protocol
    /// instance *on its owner's thread* (it is cloned into every worker),
    /// so thread-affine protocol state works naturally.
    pub fn new<F>(graph: &Graph, shards: usize, seed: u64, factory: F) -> Self
    where
        F: Fn(NodeId) -> P + Send + Clone + 'static,
    {
        Self::with_recorder(graph, shards, seed, factory, |_| NoopRecorder)
    }
}

impl<P: ShardProtocol + 'static, R: Recorder + Send + 'static> ShardedEngine<P, R> {
    /// Like [`ShardedEngine::new`] with one telemetry recorder per shard
    /// (`recorders(shard_index)`), merged at [`ShardedEngine::finish`].
    pub fn with_recorder<F, G>(
        graph: &Graph,
        shards: usize,
        seed: u64,
        factory: F,
        mut recorders: G,
    ) -> Self
    where
        F: Fn(NodeId) -> P + Send + Clone + 'static,
        G: FnMut(usize) -> R,
    {
        let shards = shards.max(1);
        let partition = Partition::new(seed, shards);
        let lookahead = graph
            .edges()
            .map(|(_, e)| e.weight)
            .fold(f64::INFINITY, f64::min);
        let lookahead = if lookahead.is_finite() {
            lookahead
        } else {
            EMPTY_GRAPH_LOOKAHEAD
        };
        assert!(
            lookahead > 0.0,
            "sharded runs need positive link weights (minimum weight {lookahead} \
             leaves no safe lookahead window)"
        );
        let mut workers = Vec::with_capacity(shards);
        let mut replies = Vec::with_capacity(shards);
        for me in 0..shards {
            let (tx, rx) = channel();
            let g = graph.clone();
            let f = factory.clone();
            let rec = recorders(me);
            workers.push(WorkerHandle::spawn(
                format!("disco-shard-{me}"),
                move |cmds| {
                    worker_loop::<P, R>(cmds, tx, &g, f, rec, partition, me);
                },
            ));
            replies.push(rx);
        }
        ShardedEngine {
            workers,
            replies,
            partition,
            lookahead,
            graph: graph.clone(),
            active: vec![true; graph.node_count()],
            pending_topo: Vec::new(),
            applied_topology: 0,
            world_ctr: 0,
            counters: vec![ShardCounters::default(); shards],
            nexts: vec![None; shards],
            routed_min: None,
            now: 0.0,
            started: false,
            max_events: 200_000_000,
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The shard owning node `v` (where [`ShardedEngine::visit`] finds its
    /// protocol instance).
    pub fn owner_of(&self, v: NodeId) -> usize {
        self.partition.shard_of(v)
    }

    /// The conservative lookahead window: the minimum link weight of the
    /// initial graph.
    pub fn lookahead(&self) -> Weight {
        self.lookahead
    }

    /// The coordinator's mirror of the simulated graph in its current
    /// state (kept in lockstep with the shards' replicas at barriers).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether `v` is currently part of the network.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active.get(v.0).copied().unwrap_or(false)
    }

    /// Ids of the currently active nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| NodeId(i))
    }

    /// Number of currently active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Current simulation time (the latest shard clock, refreshed at
    /// barriers; [`ShardedEngine::run_to`] advances it to the target).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed, summed over shards. Unlike every other counter
    /// here this is *not* shard-count-invariant: replayed topology events
    /// count once per shard and a flood fans out into one queue entry per
    /// involved shard. Compare runs on delivered/dropped counts, stats and
    /// end time instead.
    pub fn events_processed(&self) -> u64 {
        self.counters.iter().map(|c| c.events).sum()
    }

    /// Messages delivered to `on_message` upcalls (shard-count-invariant).
    pub fn messages_delivered(&self) -> u64 {
        self.counters.iter().map(|c| c.delivered).sum()
    }

    /// Messages (and cancelled timers) dropped (shard-count-invariant).
    pub fn messages_dropped(&self) -> u64 {
        self.counters.iter().map(|c| c.dropped).sum()
    }

    /// Epoch-dead timers that slipped past eager cancellation, summed.
    pub fn stale_timer_pops(&self) -> u64 {
        self.counters.iter().map(|c| c.stale).sum()
    }

    /// Topology events applied so far (each counted once, as in the
    /// sequential engine — every shard replays the same sequence).
    pub fn topology_events(&self) -> u64 {
        self.applied_topology
    }

    /// `(live, dead)` queue entry counts summed over the shards.
    pub fn queue_stats(&self) -> (usize, usize) {
        self.counters
            .iter()
            .fold((0, 0), |(l, d), c| (l + c.queue_live, d + c.queue_dead))
    }

    /// Schedule a topology mutation at absolute time `at` on every shard.
    /// Fails if the event would add a link lighter than the lookahead
    /// window (see [`LookaheadViolation`]); the check applies to every
    /// shard count including 1, so accepted schedules behave identically
    /// across counts.
    pub fn schedule_topology(
        &mut self,
        at: SimTime,
        event: TopologyEvent,
    ) -> Result<(), LookaheadViolation> {
        let lightest = match &event {
            TopologyEvent::LinkUp { weight, .. } => Some(*weight),
            TopologyEvent::NodeJoin { links, .. } => links
                .iter()
                .map(|&(_, w)| w)
                .fold(None, |m: Option<Weight>, w| Some(m.map_or(w, |m| m.min(w)))),
            _ => None,
        };
        if let Some(w) = lightest {
            if w < self.lookahead {
                return Err(LookaheadViolation {
                    weight: w,
                    lookahead: self.lookahead,
                });
            }
        }
        assert!(
            at >= self.now,
            "topology event scheduled in the past ({at} < {})",
            self.now
        );
        let key = self.world_ctr;
        self.world_ctr += 1;
        for w in &self.workers {
            w.send(Cmd::Topology {
                at,
                key,
                ev: event.clone(),
            });
        }
        let pos = self
            .pending_topo
            .partition_point(|&(t, k, _)| t < at || (t == at && k < key));
        self.pending_topo.insert(pos, (at, key, event));
        Ok(())
    }

    /// Deliver `on_start` to every node (each on its owner shard) and
    /// exchange any cross-shard sends it produced. Called automatically by
    /// [`ShardedEngine::run`] / [`ShardedEngine::run_to`] on first use.
    pub fn start(&mut self) {
        self.started = true;
        for w in &self.workers {
            w.send(Cmd::Start);
        }
        // A zero-length window: processes nothing (on_start sends all have
        // positive delay), but flushes the outboxes and primes the
        // per-shard next-event times.
        self.exchange_window(0.0, false);
    }

    /// Run one lookahead window on every shard and merge the barrier:
    /// refresh the per-shard counters/clocks, then route every cross-shard
    /// send to its destination shard — walking the replies in shard-id
    /// order and each outbox in push order, so the merge is deterministic.
    fn exchange_window(&mut self, end: SimTime, inclusive: bool) {
        self.apply_pending_topology(end, inclusive);
        for w in &self.workers {
            w.send(Cmd::Window { end, inclusive });
        }
        let mut routed: Vec<Vec<WireEvent<P::Wire>>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut routed_min: Option<SimTime> = None;
        let mut max_now = self.now;
        for (i, rx) in self.replies.iter().enumerate() {
            let reply = rx.recv().expect("shard worker hung up");
            let Reply::Window(rep) = reply else {
                panic!("unexpected reply at window barrier");
            };
            self.counters[i] = rep.counters;
            self.nexts[i] = rep.next;
            max_now = max_now.max(rep.now);
            for (dest, ev) in rep.outbound {
                routed_min = Some(routed_min.map_or(ev.time, |m: SimTime| m.min(ev.time)));
                routed[dest].push(ev);
            }
        }
        self.routed_min = routed_min;
        self.now = max_now;
        for (dest, evs) in routed.into_iter().enumerate() {
            if !evs.is_empty() {
                self.workers[dest].send(Cmd::Ingest(evs));
            }
        }
    }

    /// Apply scheduled topology up to `end` to the coordinator's mirror —
    /// the same prefix every shard applies within the window that is about
    /// to run, so mirror and replicas agree at every barrier.
    fn apply_pending_topology(&mut self, end: SimTime, inclusive: bool) {
        while let Some(&(at, _, _)) = self.pending_topo.first() {
            let within = if inclusive { at <= end } else { at < end };
            if !within {
                break;
            }
            let (_, _, ev) = self.pending_topo.remove(0);
            self.apply_topology_mirror(ev);
        }
    }

    /// The graph/active-set half of [`Engine`]'s topology application
    /// (no upcalls, timers or epochs here — those live on the shards).
    fn apply_topology_mirror(&mut self, event: TopologyEvent) {
        self.applied_topology += 1;
        match event {
            TopologyEvent::LinkUp { u, v, weight } => {
                if self.is_active(u) && self.is_active(v) {
                    let _ = self.graph.insert_edge(u, v, weight);
                }
            }
            TopologyEvent::LinkDown { u, v } => {
                let _ = self.graph.remove_edge(u, v);
            }
            TopologyEvent::NodeLeave { node } => {
                if self.is_active(node) {
                    self.active[node.0] = false;
                    let _ = self.graph.detach_node(node);
                }
            }
            TopologyEvent::NodeJoin { node, links } => {
                while node.0 >= self.graph.node_count() {
                    self.graph.add_node();
                    self.active.push(false);
                }
                if self.active[node.0] {
                    return;
                }
                self.active[node.0] = true;
                for (peer, weight) in links {
                    if peer.0 < self.graph.node_count() && self.active[peer.0] {
                        let _ = self.graph.insert_edge(node, peer, weight);
                    }
                }
            }
        }
    }

    /// Timestamp of the globally earliest pending event: the minimum over
    /// every shard's reported next event, arrivals routed at the last
    /// barrier (their receiver reports them only from the next barrier
    /// on), and scheduled topology not yet inside any window.
    fn global_next(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            next = Some(match next {
                Some(n) if n <= t => n,
                _ => t,
            })
        };
        for t in self.nexts.iter().flatten() {
            fold(*t);
        }
        if let Some(t) = self.routed_min {
            fold(t);
        }
        if let Some(&(t, _, _)) = self.pending_topo.first() {
            fold(t);
        }
        next
    }

    /// Process events until quiescence or the event valve; returns the run
    /// report. Calls [`ShardedEngine::start`] first unless it already ran.
    pub fn run(&mut self) -> RunReport {
        if !self.started && self.events_processed() == 0 {
            self.start();
        }
        let converged = self.run_until(|_| false);
        self.report(converged)
    }

    /// Process events window by window until quiescence, the event valve,
    /// or `stop` returns true. Unlike the sequential engine's per-event
    /// check, `stop` is evaluated at window barriers — the natural
    /// granularity of a parallel run. Returns true on quiescence.
    pub fn run_until(&mut self, mut stop: impl FnMut(&Self) -> bool) -> bool {
        loop {
            if self.events_processed() >= self.max_events {
                return false;
            }
            let Some(next) = self.global_next() else {
                return true;
            };
            self.exchange_window(next + self.lookahead, false);
            if stop(self) {
                return false;
            }
        }
    }

    /// Process all events with timestamps `<= t`, then advance the clock
    /// to `t`; returns true if no events remain. The final batch *at*
    /// exactly `t` runs as one inclusive window — safe because anything an
    /// event at `t` causes lands strictly after `t`.
    pub fn run_to(&mut self, t: SimTime) -> bool {
        if !self.started && self.events_processed() == 0 {
            self.start();
        }
        while let Some(next) = self.global_next() {
            if next >= t || self.events_processed() >= self.max_events {
                break;
            }
            self.exchange_window((next + self.lookahead).min(t), false);
        }
        self.exchange_window(t, true);
        self.now = self.now.max(t);
        self.global_next().is_none()
    }

    /// The run report so far. Gathers the shards' message statistics, so
    /// it costs one barrier round-trip.
    pub fn report(&mut self, converged: bool) -> RunReport {
        let (queue_live, queue_dead) = self.queue_stats();
        RunReport {
            converged,
            end_time: self.now,
            events_processed: self.events_processed(),
            topology_events: self.applied_topology,
            messages_dropped: self.messages_dropped(),
            messages_delivered: self.messages_delivered(),
            stale_timer_pops: self.stale_timer_pops(),
            queue_live,
            queue_dead,
            stats: self.merged_stats(),
        }
    }

    /// The shards' message statistics merged into one table (row-disjoint
    /// by construction: each node's counters live on its owner shard).
    pub fn merged_stats(&mut self) -> MessageStats {
        let mut total = MessageStats::new(self.graph.node_count());
        for shard in 0..self.workers.len() {
            let part = self.visit(shard, |e| e.stats().clone());
            total.absorb(&part);
        }
        total
    }

    /// Run `f` against `shard`'s engine on its worker thread and return
    /// the result. This is the one way to reach protocol instances (e.g.
    /// for probes): node `v` lives on shard [`ShardedEngine::owner_of`]`(v)`.
    pub fn visit<T, F>(&mut self, shard: usize, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&mut ShardEngine<P, R>) -> T + Send + 'static,
    {
        let (tx, rx): (Sender<T>, Receiver<T>) = channel();
        self.workers[shard].send(Cmd::Visit(Box::new(move |e| {
            let _ = tx.send(f(e));
        })));
        match self.replies[shard].recv().expect("shard worker hung up") {
            Reply::VisitDone => {}
            _ => panic!("unexpected reply to visit"),
        }
        rx.recv().expect("visit closure dropped its result")
    }

    /// Shut the shards down and merge their final state: summed message
    /// statistics, merged telemetry recorders (shard-id order), and the
    /// leftover queue gauges. Each shard's recorder receives
    /// `finish(now)` before merging.
    pub fn finish(mut self) -> ShardedRunSummary<R>
    where
        R: MergeRecorder,
    {
        let now = self.now;
        for w in &self.workers {
            w.send(Cmd::Finish { now });
        }
        let mut stats = MessageStats::new(self.graph.node_count());
        let mut recorder: Option<R> = None;
        let (mut queue_live, mut queue_dead) = (0, 0);
        let mut arena_reclaimed_cells = 0;
        for rx in &self.replies {
            let Ok(Reply::Finished(fin)) = rx.recv() else {
                panic!("shard worker hung up before finishing");
            };
            let fin = *fin;
            stats.absorb(&fin.stats);
            queue_live += fin.queue_live;
            queue_dead += fin.queue_dead;
            arena_reclaimed_cells += fin.arena_reclaimed_cells;
            match &mut recorder {
                None => recorder = Some(fin.recorder),
                Some(r) => r.absorb(fin.recorder),
            }
        }
        // Workers have exited their loops; dropping the handles joins them.
        self.workers.clear();
        ShardedRunSummary {
            stats,
            recorder: recorder.expect("at least one shard"),
            queue_live,
            queue_dead,
            arena_reclaimed_cells,
        }
    }
}

/// The worker thread: owns one shard's [`Engine`] for the whole run and
/// processes coordinator commands in order.
fn worker_loop<P, R>(
    cmds: Receiver<Cmd<P, R>>,
    replies: Sender<Reply<P::Wire, R>>,
    graph: &Graph,
    factory: impl FnMut(NodeId) -> P + 'static,
    recorder: R,
    partition: Partition,
    me: usize,
) where
    P: ShardProtocol + 'static,
    R: Recorder + Send + 'static,
{
    let mut engine: ShardEngine<P, R> =
        Engine::with_recorder(graph, factory, TimerWheel::new(), recorder);
    engine.bind_shard(partition, me);
    // The coordinator enforces the event valve globally at barriers; a
    // per-shard valve would stall one shard silently and deadlock the
    // window protocol.
    engine.max_events = u64::MAX;
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            Cmd::Start => engine.start(),
            Cmd::Topology { at, key, ev } => engine.schedule_topology_keyed(at, key, ev),
            Cmd::Ingest(evs) => {
                for ev in evs {
                    engine.ingest_wire(ev);
                }
            }
            Cmd::Window { end, inclusive } => {
                engine.run_window(end, inclusive);
                let outbound = engine.flush_outbox();
                let (queue_live, queue_dead) = engine.queue_stats();
                let report = WindowReport {
                    now: engine.now(),
                    next: engine.peek_time(),
                    counters: ShardCounters {
                        events: engine.events_processed(),
                        delivered: engine.messages_delivered(),
                        dropped: engine.messages_dropped(),
                        stale: engine.stale_timer_pops(),
                        queue_live,
                        queue_dead,
                    },
                    outbound,
                };
                if replies.send(Reply::Window(report)).is_err() {
                    break;
                }
            }
            Cmd::Visit(f) => {
                f(&mut engine);
                if replies.send(Reply::VisitDone).is_err() {
                    break;
                }
            }
            Cmd::Finish { now } => {
                engine.recorder_mut().finish(now);
                let (queue_live, queue_dead) = engine.queue_stats();
                let stats = engine.stats().clone();
                let recorder = engine.into_recorder();
                // `into_recorder` consumed the engine and dropped this
                // shard's nodes — their interned paths are dead now, so
                // compact the worker's thread-local arena before the
                // thread parks (otherwise the run exits with
                // `live ≈ peak` capacity still pinned per worker).
                let arena_reclaimed_cells = PathArena::shrink();
                let _ = replies.send(Reply::Finished(Box::new(FinishReport {
                    stats,
                    recorder,
                    queue_live,
                    queue_dead,
                    arena_reclaimed_cells,
                })));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;
    use disco_graph::generators;

    /// Ping-pong with plain `Send` messages: the wire form is the message
    /// itself.
    #[derive(Default)]
    struct PingPong {
        pongs: u32,
    }

    #[derive(Clone)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Message = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.node_id() == NodeId(0) {
                ctx.broadcast(Msg::Ping);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => self.pongs += 1,
            }
        }
    }

    impl ShardProtocol for PingPong {
        type Wire = Msg;
        fn to_wire(msg: Msg) -> Msg {
            msg
        }
        fn from_wire(wire: Msg) -> Msg {
            wire
        }
    }

    #[test]
    fn partition_is_seeded_and_total() {
        let p = Partition::new(7, 3);
        let q = Partition::new(7, 3);
        for v in 0..1000 {
            assert_eq!(p.shard_of(NodeId(v)), q.shard_of(NodeId(v)));
            assert!(p.shard_of(NodeId(v)) < 3);
        }
        // All shards actually used (splitmix spreads even tiny id ranges).
        let mut used = [false; 3];
        for v in 0..64 {
            used[p.shard_of(NodeId(v))] = true;
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    fn sharded_matches_sequential_ping_pong() {
        let g = generators::gnm_connected(48, 128, 11);
        let mut seq = Engine::new(&g, |_| PingPong::default());
        let seq_report = seq.run();
        for shards in [1, 2, 3, 8] {
            let mut sh = ShardedEngine::new(&g, shards, 42, |_| PingPong::default());
            let report = sh.run();
            assert!(report.converged);
            assert_eq!(report.messages_delivered, seq_report.messages_delivered);
            assert_eq!(report.stats, seq_report.stats, "shards={shards}");
            assert_eq!(report.end_time, seq_report.end_time, "shards={shards}");
            let total_pongs: u32 = (0..shards)
                .map(|s| sh.visit(s, |e| e.nodes().iter().map(|n| n.pongs).sum::<u32>()))
                .sum();
            assert_eq!(total_pongs, g.degree(NodeId(0)) as u32);
        }
    }

    #[test]
    fn lookahead_rejects_lighter_late_links() {
        let g = generators::ring(8); // all weights 1.0
        let mut sh = ShardedEngine::new(&g, 2, 1, |_| PingPong::default());
        assert_eq!(sh.lookahead(), 1.0);
        let err = sh
            .schedule_topology(
                1.0,
                TopologyEvent::LinkUp {
                    u: NodeId(0),
                    v: NodeId(4),
                    weight: 0.25,
                },
            )
            .unwrap_err();
        assert_eq!(err.weight, 0.25);
        assert_eq!(err.lookahead, 1.0);
        let msg = err.to_string();
        assert!(msg.contains("lookahead"), "{msg}");
        assert!(msg.contains("0.25"), "{msg}");
        // A joining node bringing a light link is rejected the same way…
        assert!(sh
            .schedule_topology(
                1.0,
                TopologyEvent::NodeJoin {
                    node: NodeId(8),
                    links: vec![(NodeId(0), 1.0), (NodeId(1), 0.5)],
                },
            )
            .is_err());
        // …while weights at or above the window pass.
        assert!(sh
            .schedule_topology(
                1.0,
                TopologyEvent::LinkUp {
                    u: NodeId(0),
                    v: NodeId(4),
                    weight: 1.0,
                },
            )
            .is_ok());
        let report = sh.run();
        assert!(report.converged);
    }

    #[test]
    fn churn_under_sharding_matches_sequential() {
        let g = generators::gnm_connected(32, 96, 5);
        let schedule = vec![
            (0.5, TopologyEvent::NodeLeave { node: NodeId(3) }),
            (
                1.5,
                TopologyEvent::LinkDown {
                    u: NodeId(0),
                    v: g.neighbors(NodeId(0))[0].node,
                },
            ),
            (
                4.0,
                TopologyEvent::NodeJoin {
                    node: NodeId(3),
                    links: vec![(NodeId(1), 1.0), (NodeId(7), 1.0)],
                },
            ),
        ];
        let mut seq = Engine::new(&g, |_| PingPong::default());
        for (at, ev) in &schedule {
            seq.schedule_topology(*at, ev.clone());
        }
        let seq_report = seq.run();
        for shards in [1, 2, 3] {
            let mut sh = ShardedEngine::new(&g, shards, 9, |_| PingPong::default());
            for (at, ev) in &schedule {
                sh.schedule_topology(*at, ev.clone()).unwrap();
            }
            let report = sh.run();
            assert_eq!(report.topology_events, seq_report.topology_events);
            assert_eq!(report.messages_delivered, seq_report.messages_delivered);
            assert_eq!(report.messages_dropped, seq_report.messages_dropped);
            assert_eq!(report.stats, seq_report.stats, "shards={shards}");
            assert_eq!(report.end_time, seq_report.end_time, "shards={shards}");
            assert_eq!(sh.active_count(), seq.active_count());
            assert_eq!(sh.graph().edge_count(), seq.graph().edge_count());
        }
    }

    #[test]
    fn run_to_interleaves_with_probes() {
        let g = generators::ring(12);
        let mut sh = ShardedEngine::new(&g, 3, 2, |_| PingPong::default());
        sh.schedule_topology(5.0, TopologyEvent::NodeLeave { node: NodeId(6) })
            .unwrap();
        sh.run_to(2.0);
        assert_eq!(sh.now(), 2.0);
        assert_eq!(sh.active_count(), 12, "leave at t=5 not applied yet");
        sh.run_to(6.0);
        assert_eq!(sh.active_count(), 11);
        assert!(!sh.is_active(NodeId(6)));
        let owner = sh.owner_of(NodeId(6));
        let inactive_on_shard = sh.visit(owner, |e| e.is_active(NodeId(6)));
        assert!(!inactive_on_shard, "mirror and shard replica agree");
    }
}
