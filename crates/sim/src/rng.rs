//! Deterministic per-node random number generation helpers.
//!
//! Every stochastic decision in the reproduction (landmark election, finger
//! selection, sampling) must be a pure function of the experiment seed so
//! that runs are replayable. This module derives independent per-purpose
//! seeds from a master seed with a splitmix64 step, the standard way to
//! decorrelate seeds that differ in a single bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of splitmix64: a cheap, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derive a sub-seed for (`master`, `stream`, `index`), e.g. the RNG of node
/// `index` in purpose-stream `stream`.
pub fn seed_for(master: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(master ^ stream.wrapping_mul(0xd1342543de82ef95)) ^ index)
}

/// A seeded [`StdRng`] for (`master`, `stream`, `index`).
pub fn rng_for(master: u64, stream: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for(master, stream, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_changes_value() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(seed_for(7, 1, 2), seed_for(7, 1, 2));
        assert_ne!(seed_for(7, 1, 2), seed_for(7, 1, 3));
        assert_ne!(seed_for(7, 1, 2), seed_for(7, 2, 2));
        assert_ne!(seed_for(7, 1, 2), seed_for(8, 1, 2));
    }

    #[test]
    fn rngs_reproduce_streams() {
        let mut a = rng_for(42, 0, 5);
        let mut b = rng_for(42, 0, 5);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn adjacent_indices_decorrelated() {
        // Crude check: first draws from adjacent node rngs should differ.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let mut r = rng_for(1, 0, i);
            assert!(seen.insert(r.gen::<u64>()));
        }
    }
}
