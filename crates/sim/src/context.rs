//! The per-upcall handle a protocol uses to interact with the simulated
//! world.

use crate::event::SimTime;
use disco_graph::{Graph, NodeId, Weight};

/// An outgoing action recorded by a [`Context`] during one upcall; the
/// engine turns these into events after the upcall returns.
///
/// The type is public so protocols can *compose*: an outer protocol can run
/// an embedded sub-protocol in a fresh `Context`, drain its actions with
/// [`Context::take_actions`], and re-wrap the messages in its own message
/// type (see `disco-core`'s `DiscoProtocol`, which embeds the path-vector
/// protocol this way).
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Send `msg` (accounted as `size_bytes`) to the direct neighbor `to`.
    Send {
        /// Receiving neighbor.
        to: NodeId,
        /// The message.
        msg: M,
        /// Accounted wire size.
        size_bytes: usize,
    },
    /// Fire a timer on this node after `delay` with the given token.
    Timer {
        /// Relative delay.
        delay: SimTime,
        /// Caller-chosen token passed back to `on_timer`.
        token: u64,
    },
}

/// Handle passed to every protocol upcall.
///
/// A protocol can only observe its own node id, its direct neighborhood
/// (ids and link weights) and the current simulation time; it can only act
/// by sending messages to direct neighbors and by scheduling timers on
/// itself. This enforces the paper's locality assumption (§4.1: "each node
/// knows its own name and its neighbors' names, but nothing else").
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    graph: &'a Graph,
    pub(crate) actions: Vec<Action<M>>,
    /// Default per-message size used by [`Context::send`]; protocols that
    /// care about byte accounting use [`Context::send_sized`].
    pub(crate) default_msg_size: usize,
}

impl<'a, M> Context<'a, M> {
    /// Create a context for `node` at time `now` over `graph`. Mostly used
    /// by the engine, but public so protocols can run embedded
    /// sub-protocols (see [`Action`]).
    pub fn new(node: NodeId, now: SimTime, graph: &'a Graph, default_msg_size: usize) -> Self {
        Context {
            node,
            now,
            graph,
            actions: Vec::new(),
            default_msg_size,
        }
    }

    /// The graph this context operates over (exposed so an outer protocol
    /// can construct a sub-context for an embedded protocol).
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Drain the actions recorded so far (used when relaying an embedded
    /// protocol's actions into an outer protocol's context).
    pub fn take_actions(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }

    /// Id of the node this upcall runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ids of this node's direct neighbors.
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.graph
            .neighbors(self.node)
            .iter()
            .map(|nb| nb.node)
            .collect()
    }

    /// Number of direct neighbors.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Weight (latency) of the link to direct neighbor `to`, if it exists.
    pub fn link_weight(&self, to: NodeId) -> Option<Weight> {
        self.graph.edge_weight(self.node, to)
    }

    /// Total number of nodes in the network. Protocols that honour the
    /// paper's model should *not* rely on this except to emulate the
    /// synopsis-diffusion estimate of `n` (§4.1); it is exposed for
    /// convenience and for test assertions.
    pub fn network_size(&self) -> usize {
        self.graph.node_count()
    }

    /// Send `msg` to the direct neighbor `to`, with the default message
    /// size. Panics if `to` is not a neighbor.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let size = self.default_msg_size;
        self.send_sized(to, msg, size);
    }

    /// Send `msg` to neighbor `to`, accounting `size_bytes` for it.
    pub fn send_sized(&mut self, to: NodeId, msg: M, size_bytes: usize) {
        assert!(
            self.graph.edge_weight(self.node, to).is_some(),
            "{} tried to send to non-neighbor {to}",
            self.node
        );
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
        });
    }

    /// Send a clone of `msg` to every direct neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let neighbors = self.neighbors();
        for to in neighbors {
            self.send(to, msg.clone());
        }
    }

    /// Schedule a timer to fire on this node after `delay` time units; the
    /// protocol's `on_timer` will be invoked with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        assert!(delay >= 0.0, "timer delay must be non-negative");
        self.actions.push(Action::Timer { delay, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    #[test]
    fn context_exposes_neighborhood() {
        let g = generators::ring(5);
        let ctx: Context<'_, ()> = Context::new(NodeId(0), 1.5, &g, 64);
        assert_eq!(ctx.node_id(), NodeId(0));
        assert_eq!(ctx.now(), 1.5);
        assert_eq!(ctx.degree(), 2);
        let mut nbrs = ctx.neighbors();
        nbrs.sort();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(4)]);
        assert_eq!(ctx.link_weight(NodeId(1)), Some(1.0));
        assert_eq!(ctx.link_weight(NodeId(2)), None);
        assert_eq!(ctx.network_size(), 5);
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let g = generators::ring(5);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.send(NodeId(2), 7);
    }

    #[test]
    fn broadcast_records_one_send_per_neighbor() {
        let g = generators::star(6);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.broadcast(9);
        assert_eq!(ctx.actions.len(), 5);
    }
}
