//! The per-upcall handle a protocol uses to interact with the simulated
//! world.

use crate::event::SimTime;
use disco_graph::{Graph, Neighbor, NodeId, Weight};

/// An outgoing action recorded by a [`Context`] during one upcall; the
/// engine turns these into events after the upcall returns.
///
/// The type is public so protocols can *compose*: an outer protocol can run
/// an embedded sub-protocol in a fresh `Context`, drain its actions with
/// [`Context::take_actions`], and re-wrap the messages in its own message
/// type (see `disco-core`'s `DiscoProtocol`, which embeds the path-vector
/// protocol this way).
///
/// Sends are *edge-resolved*: the context looks the neighbor up once when
/// the action is recorded and the engine schedules the delivery straight
/// off the resolved [`Neighbor`] handle (node, edge id, link weight) —
/// the engine never re-scans the adjacency list per send. Fan-out has two
/// dedicated shapes: [`Action::Flood`] carries the payload once and lets
/// the engine replicate it at the adjacency walk (one refcount bump per
/// edge for interned payloads), and [`Action::SendBatch`] carries a whole
/// table dump to one peer as a single scheduled delivery.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Send `msg` (accounted as `size_bytes`) to the direct neighbor `to`
    /// (already resolved to its adjacency entry).
    Send {
        /// Receiving neighbor, resolved at send time.
        to: Neighbor,
        /// The message.
        msg: M,
        /// Accounted wire size.
        size_bytes: usize,
    },
    /// Send a batch of individually-sized messages to the one neighbor
    /// `to` as a *single* scheduled delivery. The engine pops the batch as
    /// one event and processes the messages in order, exactly as if they
    /// had been sent back-to-back (consecutive sequence numbers, equal
    /// deliver time); per-message send/receive statistics are recorded
    /// identically, and a batch lost in flight counts every message
    /// dropped.
    SendBatch {
        /// Receiving neighbor, resolved at send time.
        to: Neighbor,
        /// The messages with their accounted wire sizes, in send order.
        msgs: Box<[(M, usize)]>,
    },
    /// Send a copy of `msg` (accounted as `size_bytes` each) to *every*
    /// direct neighbor. The engine performs the adjacency walk itself, in
    /// neighbor order — identical delivery schedule to a manual
    /// clone-and-send loop, without the per-send neighbor lookups.
    Flood {
        /// The message (cloned per neighbor by the engine).
        msg: M,
        /// Accounted wire size per copy.
        size_bytes: usize,
    },
    /// Fire a timer on this node after `delay` with the given token.
    Timer {
        /// Relative delay.
        delay: SimTime,
        /// Caller-chosen token passed back to `on_timer`.
        token: u64,
    },
}

/// Handle passed to every protocol upcall.
///
/// A protocol can only observe its own node id, its direct neighborhood
/// (ids and link weights) and the current simulation time; it can only act
/// by sending messages to direct neighbors and by scheduling timers on
/// itself. This enforces the paper's locality assumption (§4.1: "each node
/// knows its own name and its neighbors' names, but nothing else").
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    graph: &'a Graph,
    pub(crate) actions: Vec<Action<M>>,
    /// Default per-message size used by [`Context::send`]; protocols that
    /// care about byte accounting use [`Context::send_sized`].
    pub(crate) default_msg_size: usize,
    /// For `on_message` upcalls: the link the message arrived over,
    /// already resolved by the engine (it validated liveness at pop time).
    /// Lets `link_weight(sender)` and replies skip the adjacency scan.
    pub(crate) via: Option<Neighbor>,
}

impl<'a, M> Context<'a, M> {
    /// Create a context for `node` at time `now` over `graph`. Mostly used
    /// by the engine, but public so protocols can run embedded
    /// sub-protocols (see [`Action`]).
    pub fn new(node: NodeId, now: SimTime, graph: &'a Graph, default_msg_size: usize) -> Self {
        Context::with_buffer(node, now, graph, default_msg_size, Vec::new())
    }

    /// Like [`Context::new`], but recording actions into a caller-supplied
    /// (typically recycled) buffer — the zero-allocation upcall path: the
    /// engine and composite protocols keep one scratch `Vec` alive and
    /// round-trip it through every upcall instead of allocating a fresh
    /// action list each time. Reclaim the buffer with
    /// [`Context::into_buffer`].
    pub fn with_buffer(
        node: NodeId,
        now: SimTime,
        graph: &'a Graph,
        default_msg_size: usize,
        buffer: Vec<Action<M>>,
    ) -> Self {
        debug_assert!(buffer.is_empty(), "scratch buffer must start drained");
        Context {
            node,
            now,
            graph,
            actions: buffer,
            default_msg_size,
            via: None,
        }
    }

    /// The resolved link the message being processed arrived over
    /// (`on_message` upcalls only; `None` elsewhere). The engine validated
    /// this link's liveness when it delivered the message, so within the
    /// upcall it is a valid send target.
    pub fn via(&self) -> Option<Neighbor> {
        self.via
    }

    /// Record the arrival link (engine and composite protocols relaying a
    /// delivery into an embedded protocol's context).
    pub fn set_via(&mut self, via: Option<Neighbor>) {
        self.via = via;
    }

    /// Consume the context, returning the action buffer (recorded actions
    /// plus its reusable capacity).
    pub fn into_buffer(self) -> Vec<Action<M>> {
        self.actions
    }

    /// The graph this context operates over (exposed so an outer protocol
    /// can construct a sub-context for an embedded protocol).
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Drain the actions recorded so far (used when relaying an embedded
    /// protocol's actions into an outer protocol's context).
    pub fn take_actions(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }

    /// Id of the node this upcall runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ids of this node's direct neighbors.
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.graph
            .neighbors(self.node)
            .iter()
            .map(|nb| nb.node)
            .collect()
    }

    /// Number of direct neighbors.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Resolve the adjacency entry for direct neighbor `to`, if the link
    /// exists: the handle a protocol can hold for repeated
    /// [`Context::send_resolved`] calls without re-scanning the adjacency
    /// list. O(1) for the arrival link of the message being processed;
    /// one O(degree) lookup otherwise.
    pub fn neighbor(&self, to: NodeId) -> Option<Neighbor> {
        if let Some(via) = self.via {
            if via.node == to {
                return Some(via);
            }
        }
        self.graph
            .neighbors(self.node)
            .iter()
            .find(|nb| nb.node == to)
            .copied()
    }

    /// Weight (latency) of the link to direct neighbor `to`, if it exists.
    /// O(1) for the arrival link of the message being processed.
    pub fn link_weight(&self, to: NodeId) -> Option<Weight> {
        if let Some(via) = self.via {
            if via.node == to {
                return Some(via.weight);
            }
        }
        self.graph.edge_weight(self.node, to)
    }

    /// Total number of nodes in the network. Protocols that honour the
    /// paper's model should *not* rely on this except to emulate the
    /// synopsis-diffusion estimate of `n` (§4.1); it is exposed for
    /// convenience and for test assertions.
    pub fn network_size(&self) -> usize {
        self.graph.node_count()
    }

    /// Resolve `to` or panic with the send-validation message.
    fn resolve(&self, to: NodeId) -> Neighbor {
        self.neighbor(to)
            .unwrap_or_else(|| panic!("{} tried to send to non-neighbor {to}", self.node))
    }

    /// Send `msg` to the direct neighbor `to`, with the default message
    /// size. Panics if `to` is not a neighbor.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let size = self.default_msg_size;
        self.send_sized(to, msg, size);
    }

    /// Send `msg` to neighbor `to`, accounting `size_bytes` for it. The
    /// neighbor is resolved (validated) here, once; the engine schedules
    /// the delivery straight off the resolved edge.
    pub fn send_sized(&mut self, to: NodeId, msg: M, size_bytes: usize) {
        let to = self.resolve(to);
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
        });
    }

    /// Send `msg` to an already-resolved neighbor (obtained from
    /// [`Context::neighbor`], or relayed from an embedded protocol's
    /// [`Action::Send`] over the same graph snapshot), skipping the
    /// per-send adjacency scan.
    pub fn send_resolved(&mut self, to: Neighbor, msg: M, size_bytes: usize) {
        debug_assert_eq!(
            self.graph.find_edge(self.node, to.node),
            Some(to.edge),
            "stale neighbor handle"
        );
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
        });
    }

    /// Send a batch of `(message, size_bytes)` pairs to neighbor `to` as a
    /// single scheduled delivery (see [`Action::SendBatch`]). Equivalent —
    /// message for message, byte for byte, in order — to calling
    /// [`Context::send_sized`] for each pair, but the whole dump occupies
    /// one queue entry. Empty batches are dropped. Panics if `to` is not a
    /// neighbor.
    pub fn send_batch(&mut self, to: NodeId, msgs: Vec<(M, usize)>) {
        let to = self.resolve(to);
        self.send_batch_resolved(to, msgs);
    }

    /// [`Context::send_batch`] for an already-resolved neighbor.
    pub fn send_batch_resolved(&mut self, to: Neighbor, msgs: Vec<(M, usize)>) {
        if msgs.is_empty() {
            return;
        }
        self.actions.push(Action::SendBatch {
            to,
            msgs: msgs.into_boxed_slice(),
        });
    }

    /// Send a copy of `msg` (accounted as `size_bytes` each) to every
    /// direct neighbor, as one [`Action::Flood`]: the engine walks the
    /// adjacency list once and replicates at the fan-out point. Identical
    /// delivery schedule and statistics to a manual
    /// clone-per-neighbor loop.
    pub fn flood_sized(&mut self, msg: M, size_bytes: usize) {
        self.actions.push(Action::Flood { msg, size_bytes });
    }

    /// Send a clone of `msg` to every direct neighbor (default message
    /// size).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let size = self.default_msg_size;
        self.flood_sized(msg, size);
    }

    /// Schedule a timer to fire on this node after `delay` time units; the
    /// protocol's `on_timer` will be invoked with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        assert!(delay >= 0.0, "timer delay must be non-negative");
        self.actions.push(Action::Timer { delay, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    #[test]
    fn context_exposes_neighborhood() {
        let g = generators::ring(5);
        let ctx: Context<'_, ()> = Context::new(NodeId(0), 1.5, &g, 64);
        assert_eq!(ctx.node_id(), NodeId(0));
        assert_eq!(ctx.now(), 1.5);
        assert_eq!(ctx.degree(), 2);
        let mut nbrs = ctx.neighbors();
        nbrs.sort();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(4)]);
        assert_eq!(ctx.link_weight(NodeId(1)), Some(1.0));
        assert_eq!(ctx.link_weight(NodeId(2)), None);
        assert_eq!(ctx.network_size(), 5);
    }

    #[test]
    fn neighbor_resolves_adjacency_entries() {
        let g = generators::ring(5);
        let ctx: Context<'_, ()> = Context::new(NodeId(0), 0.0, &g, 64);
        let nb = ctx.neighbor(NodeId(1)).expect("direct neighbor");
        assert_eq!(nb.node, NodeId(1));
        assert_eq!(nb.weight, 1.0);
        assert_eq!(g.find_edge(NodeId(0), NodeId(1)), Some(nb.edge));
        assert!(ctx.neighbor(NodeId(2)).is_none());
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let g = generators::ring(5);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.send(NodeId(2), 7);
    }

    #[test]
    fn sends_are_edge_resolved_at_record_time() {
        let g = generators::star(4);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.send(NodeId(2), 9);
        match &ctx.actions[0] {
            Action::Send { to, msg, .. } => {
                assert_eq!(to.node, NodeId(2));
                assert_eq!(g.find_edge(NodeId(0), NodeId(2)), Some(to.edge));
                assert_eq!(*msg, 9);
            }
            other => panic!("expected resolved send, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_records_one_flood_action() {
        let g = generators::star(6);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.broadcast(9);
        assert_eq!(ctx.actions.len(), 1);
        assert!(matches!(
            ctx.actions[0],
            Action::Flood {
                msg: 9,
                size_bytes: 64
            }
        ));
    }

    #[test]
    fn send_batch_keeps_order_and_drops_empty() {
        let g = generators::star(3);
        let mut ctx: Context<'_, u8> = Context::new(NodeId(0), 0.0, &g, 64);
        ctx.send_batch(NodeId(1), Vec::new());
        assert!(ctx.actions.is_empty(), "empty batch must record nothing");
        ctx.send_batch(NodeId(1), vec![(1, 10), (2, 20), (3, 30)]);
        match &ctx.actions[0] {
            Action::SendBatch { to, msgs } => {
                assert_eq!(to.node, NodeId(1));
                assert_eq!(msgs.as_ref(), &[(1, 10), (2, 20), (3, 30)]);
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn buffer_round_trips_through_context() {
        let g = generators::star(3);
        let mut buf: Vec<Action<u8>> = Vec::with_capacity(16);
        let cap = buf.capacity();
        let mut ctx = Context::with_buffer(NodeId(0), 0.0, &g, 64, std::mem::take(&mut buf));
        ctx.send(NodeId(1), 5);
        let mut back = ctx.into_buffer();
        assert_eq!(back.len(), 1);
        back.clear();
        assert!(back.capacity() >= cap, "capacity must survive the trip");
    }
}
