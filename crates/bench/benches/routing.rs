//! Criterion benches: per-packet routing cost over converged state for
//! Disco (first and later packets), S4 and VRR.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_baselines::{S4Router, S4State, VrrRouter, VrrState};
use disco_core::routing::DiscoRouter;
use disco_core::{DiscoConfig, DiscoState};
use disco_graph::NodeId;
use disco_metrics::{sample_pairs, Topology};

fn routing(c: &mut Criterion) {
    let n = 1024;
    let g = Topology::Gnm.build(n, 3);
    let cfg = DiscoConfig::seeded(3);
    let disco = DiscoState::build(&g, &cfg);
    let s4 = S4State::build(&g, &cfg);
    let vrr = VrrState::build(&g, &cfg);
    let pairs: Vec<(NodeId, NodeId)> = sample_pairs(n, 64, 3);

    let mut group = c.benchmark_group("routing_1024");
    group.bench_function("disco_first_packet", |b| {
        let router = DiscoRouter::new(&g, &disco);
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| router.route_first_packet(s, t).length)
                .sum::<f64>()
        })
    });
    group.bench_function("disco_later_packet", |b| {
        let router = DiscoRouter::new(&g, &disco);
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| router.route_later_packet(s, t).length)
                .sum::<f64>()
        })
    });
    group.bench_function("s4_later_packet", |b| {
        let router = S4Router::new(&g, &s4);
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| router.route_later_packet(s, t).1)
                .sum::<f64>()
        })
    });
    group.bench_function("vrr_greedy", |b| {
        let router = VrrRouter::new(&g, &vrr);
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| router.route(s, t).1)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, routing);
criterion_main!(benches);
