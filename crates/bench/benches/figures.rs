//! Criterion benches wrapping the figure pipelines at reduced scale, so
//! `cargo bench` exercises every experiment end to end (the full-scale
//! regeneration is done by the `fig*` binaries; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use disco_metrics::experiment::{
    address_size_experiment, congestion_comparison, messaging_point, scaling_point, shortcut_sweep,
    state_bytes_table, state_comparison, static_accuracy_experiment, stretch_comparison,
    ExperimentParams,
};
use disco_metrics::Topology;

fn small_params(n: usize) -> ExperimentParams {
    ExperimentParams {
        nodes: n,
        seed: 7,
        state_samples: usize::MAX,
        stretch_sources: 10,
        stretch_dests_per_source: 8,
    }
}

fn figure_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines_small");
    group.sample_size(10);
    group.bench_function("fig02_state", |b| {
        b.iter(|| state_comparison(Topology::RouterLevel, &small_params(512), false))
    });
    group.bench_function("fig03_stretch", |b| {
        b.iter(|| stretch_comparison(Topology::Geometric, &small_params(512), false))
    });
    group.bench_function("fig04_with_vrr", |b| {
        b.iter(|| state_comparison(Topology::Gnm, &small_params(256), true))
    });
    group.bench_function("fig06_shortcutting", |b| {
        b.iter(|| shortcut_sweep(Topology::Gnm, &small_params(256)))
    });
    group.bench_function("fig07_bytes", |b| {
        b.iter(|| state_bytes_table(Topology::RouterLevel, &small_params(256)))
    });
    group.bench_function("fig08_messaging", |b| b.iter(|| messaging_point(128, 7)));
    group.bench_function("fig09_scaling_point", |b| b.iter(|| scaling_point(512, 7)));
    group.bench_function("fig10_congestion", |b| {
        b.iter(|| congestion_comparison(Topology::AsLevel, &small_params(512), false))
    });
    group.bench_function("exp_address_size", |b| {
        b.iter(|| address_size_experiment(Topology::RouterLevel, &small_params(1024)))
    });
    group.bench_function("exp_static_accuracy", |b| {
        b.iter(|| static_accuracy_experiment(&small_params(256)))
    });
    group.finish();
}

criterion_group!(benches, figure_pipelines);
criterion_main!(benches);
