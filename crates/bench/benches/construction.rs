//! Criterion benches: cost of building each protocol's converged state
//! (the static simulator) and of generating the evaluation topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_baselines::{S4State, VrrState};
use disco_core::{DiscoConfig, DiscoState};
use disco_metrics::Topology;

fn topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    for topo in Topology::ALL {
        group.bench_with_input(
            BenchmarkId::new("n=2048", topo.label()),
            &topo,
            |b, &topo| b.iter(|| topo.build(2048, 7)),
        );
    }
    group.finish();
}

fn state_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_construction");
    group.sample_size(10);
    let g = Topology::Gnm.build(1024, 7);
    let cfg = DiscoConfig::seeded(7);
    group.bench_function("disco_1024", |b| b.iter(|| DiscoState::build(&g, &cfg)));
    group.bench_function("s4_1024", |b| b.iter(|| S4State::build(&g, &cfg)));
    group.bench_function("vrr_1024", |b| b.iter(|| VrrState::build(&g, &cfg)));
    group.finish();
}

criterion_group!(benches, topology_generation, state_construction);
criterion_main!(benches);
