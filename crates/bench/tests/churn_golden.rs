//! Cross-refactor determinism lock: the churn experiment's summary must be
//! byte-identical to the output recorded *before* the million-node hot-path
//! refactor (timer-wheel event queue, interned paths, incremental route
//! selection). Any change to event ordering, RNG consumption or float
//! arithmetic in the hot path shows up here as a diff.
//!
//! To regenerate after an *intentional* behavior change:
//! `cargo run --release -p disco-bench --bin exp_churn -- --nodes 192 --seed 7`
//! and replace `tests/golden/exp_churn_n192_s7.txt` — but byte-identity is
//! the point, so think twice.

use disco_bench::churn::{churn_experiment, churn_experiment_sharded, ChurnParams};

const GOLDEN: &str = include_str!("golden/exp_churn_n192_s7.txt");
const GOLDEN_FORGETFUL: &str = include_str!("golden/exp_churn_forgetful_n192_s7.txt");

#[test]
fn exp_churn_summary_matches_pre_refactor_golden() {
    let params = ChurnParams::sized(192, 7);
    let outcome = churn_experiment(&params);
    let summary = outcome.summary(&params);
    assert!(
        summary == GOLDEN,
        "exp_churn(n=192, seed=7) diverged from the pre-refactor golden.\n\
         --- golden ---\n{GOLDEN}\n--- got ---\n{summary}"
    );
}

/// Forgetful eviction gets its own golden (`exp_churn --forgetful`): the
/// bounded-RIB repair dynamics are locked the same way the full-RIB
/// baseline is, and the two goldens' availability lines document that
/// forgetting alternates does not cost availability (0.9805 forgetful vs
/// 0.9727 full-RIB at this size).
#[test]
fn exp_churn_forgetful_summary_matches_golden() {
    let params = ChurnParams::sized(192, 7).with_forgetful(true);
    let outcome = churn_experiment(&params);
    let summary = outcome.summary(&params);
    assert!(
        summary == GOLDEN_FORGETFUL,
        "exp_churn(n=192, seed=7, forgetful) diverged from its golden.\n\
         --- golden ---\n{GOLDEN_FORGETFUL}\n--- got ---\n{summary}"
    );
}

/// The sharded engine is an implementation detail, not a different
/// simulation: `exp_churn --shards K` must reproduce the sequential golden
/// byte-for-byte at every shard count. Conservative-lookahead windows,
/// logical event keys and the batched probe visits together make the
/// parallel schedule observationally identical to the sequential one.
#[test]
fn exp_churn_sharded_summary_is_shard_count_invariant() {
    let params = ChurnParams::sized(192, 7);
    for shards in [1usize, 2, 4] {
        let summary = churn_experiment_sharded(&params, shards).summary(&params);
        assert!(
            summary == GOLDEN,
            "exp_churn(n=192, seed=7, shards={shards}) diverged from the \
             sequential golden.\n--- golden ---\n{GOLDEN}\n--- got ---\n{summary}"
        );
    }
}

/// Same invariance for the forgetful-eviction golden: bounded candidate
/// sets and route-refresh re-solicitation survive sharding unchanged.
#[test]
fn exp_churn_forgetful_sharded_summary_is_shard_count_invariant() {
    let params = ChurnParams::sized(192, 7).with_forgetful(true);
    for shards in [1usize, 2, 4] {
        let summary = churn_experiment_sharded(&params, shards).summary(&params);
        assert!(
            summary == GOLDEN_FORGETFUL,
            "exp_churn(n=192, seed=7, forgetful, shards={shards}) diverged \
             from its golden.\n--- golden ---\n{GOLDEN_FORGETFUL}\n--- got ---\n{summary}"
        );
    }
}

/// `--static-n` (construction-time `n`, no synopsis gossip) must not move
/// the forgetful golden's availability: the live estimation changes
/// control traffic but not which routes survive churn at this scale. This
/// pins the default-on flip of `DiscoConfig::dynamic_n_estimation` — if
/// enabling the gossip had shifted availability, the flip would not have
/// been a pure default change.
#[test]
fn static_n_preserves_forgetful_availability() {
    let params = ChurnParams::sized(192, 7)
        .with_forgetful(true)
        .with_static_n(true);
    let outcome = churn_experiment(&params);
    let line = format!("availability under churn: {:.4}", outcome.availability);
    assert!(
        GOLDEN_FORGETFUL.contains(&line),
        "static-n forgetful availability {:.4} differs from the forgetful \
         golden's (expected the golden to contain {line:?})",
        outcome.availability
    );
}
