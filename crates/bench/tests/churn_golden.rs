//! Cross-refactor determinism lock: the churn experiment's summary must be
//! byte-identical to the output recorded *before* the million-node hot-path
//! refactor (timer-wheel event queue, interned paths, incremental route
//! selection). Any change to event ordering, RNG consumption or float
//! arithmetic in the hot path shows up here as a diff.
//!
//! To regenerate after an *intentional* behavior change:
//! `cargo run --release -p disco-bench --bin exp_churn -- --nodes 192 --seed 7`
//! and replace `tests/golden/exp_churn_n192_s7.txt` — but byte-identity is
//! the point, so think twice.

use disco_bench::churn::{churn_experiment, ChurnParams};

const GOLDEN: &str = include_str!("golden/exp_churn_n192_s7.txt");
const GOLDEN_FORGETFUL: &str = include_str!("golden/exp_churn_forgetful_n192_s7.txt");

#[test]
fn exp_churn_summary_matches_pre_refactor_golden() {
    let params = ChurnParams::sized(192, 7);
    let outcome = churn_experiment(&params);
    let summary = outcome.summary(&params);
    assert!(
        summary == GOLDEN,
        "exp_churn(n=192, seed=7) diverged from the pre-refactor golden.\n\
         --- golden ---\n{GOLDEN}\n--- got ---\n{summary}"
    );
}

/// Forgetful eviction gets its own golden (`exp_churn --forgetful`): the
/// bounded-RIB repair dynamics are locked the same way the full-RIB
/// baseline is, and the two goldens' availability lines document that
/// forgetting alternates does not cost availability (0.9814 both ways at
/// this size).
#[test]
fn exp_churn_forgetful_summary_matches_golden() {
    let params = ChurnParams::sized(192, 7).with_forgetful(true);
    let outcome = churn_experiment(&params);
    let summary = outcome.summary(&params);
    assert!(
        summary == GOLDEN_FORGETFUL,
        "exp_churn(n=192, seed=7, forgetful) diverged from its golden.\n\
         --- golden ---\n{GOLDEN_FORGETFUL}\n--- got ---\n{summary}"
    );
}
