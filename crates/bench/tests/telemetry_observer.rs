//! Observer-effect freedom: attaching the full telemetry recorder must not
//! change anything the protocol can see. The engine's instrumentation is
//! guarded by `R::ENABLED`, consumes no RNG, and never touches event
//! ordering — so a churn run observed by [`FullRecorder`] must produce a
//! summary byte-identical to the [`NoopRecorder`] (golden-locked) run, and
//! the telemetry itself (histograms, repair quantiles) must be a pure
//! function of `(nodes, seed)`.

use disco_bench::churn::{churn_experiment, churn_experiment_with, ChurnParams};
use disco_sim::NoopRecorder;
use disco_telemetry::{validate_json, FullRecorder};

/// The full recorder observes without perturbing: summary bytes match the
/// no-op run (which is itself locked by `churn_golden.rs`).
#[test]
fn full_recorder_is_observer_effect_free() {
    let params = ChurnParams::sized(96, 11);
    let baseline = churn_experiment(&params).summary(&params);
    let (observed, rec) = churn_experiment_with(&params, FullRecorder::new());
    assert_eq!(
        observed.summary(&params),
        baseline,
        "attaching the full recorder changed protocol-visible output"
    );
    // And the recorder actually saw the run.
    assert!(rec.registry.messages_delivered() > 0);
    assert!(!rec.repair.latencies().is_empty());
}

/// Telemetry is deterministic: two same-seed runs yield byte-identical
/// summary lines (message-class counters, wall-free repair quantiles) and
/// identical repair-latency samples.
#[test]
fn telemetry_is_deterministic_across_same_seed_runs() {
    let params = ChurnParams::sized(96, 11);
    let (_, a) = churn_experiment_with(&params, FullRecorder::new());
    let (_, b) = churn_experiment_with(&params, FullRecorder::new());
    assert_eq!(a.repair.latencies(), b.repair.latencies());
    assert_eq!(a.summary_lines(), b.summary_lines());
    assert_eq!(
        a.registry.delivered_by_class(),
        b.registry.delivered_by_class()
    );
}

/// The explicit-noop path and the default-generic path are the same
/// monomorphization: `churn_experiment` delegates to
/// `churn_experiment_with(.., NoopRecorder)`.
#[test]
fn noop_recorder_path_matches_default() {
    let params = ChurnParams::sized(96, 11);
    let a = churn_experiment(&params).summary(&params);
    let (b, NoopRecorder) = churn_experiment_with(&params, NoopRecorder);
    assert_eq!(a, b.summary(&params));
}

/// The exported Chrome trace is valid JSON and carries all four phase
/// spans plus the deterministic summary object.
#[test]
fn chrome_trace_is_valid_and_carries_phases() {
    let params = ChurnParams::sized(96, 11);
    let (_, rec) = churn_experiment_with(&params, FullRecorder::new());
    let json = rec.chrome_trace_json();
    validate_json(&json).expect("trace must be valid JSON");
    for phase in ["\"build\"", "\"boot\"", "\"churn\"", "\"drain\""] {
        assert!(json.contains(phase), "trace missing phase span {phase}");
    }
    assert!(json.contains("\"disco_summary\""));
    assert!(json.contains("\"traceEvents\""));
}
