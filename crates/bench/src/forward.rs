//! The `exp_forward` workload: a traffic generator over compiled
//! forwarding tables during boot, churn and drain.
//!
//! Every prior experiment measures the *control* plane. This one forwards
//! packets: each node's RIB selection column is compiled into a flat
//! [`ForwardingTable`] behind an epoch-stamped [`TablePublisher`]
//! double-buffer, and batched flat-name lookups (a Zipf mix and a uniform
//! mix of destinations over the live nodes) are driven hop-by-hop through
//! the *published* epochs while the protocol keeps repairing underneath.
//! Reported per phase: lookups/sec (the headline — every table probe a
//! walk performs, timed individually into a [`Log2Histogram`] for tail
//! percentiles), hop stretch against BFS shortest paths on the current
//! active topology, and packets lost to stale epochs (a published hop the
//! topology no longer serves) — turning the availability probe into a
//! served-traffic SLO. After the drain to quiescence every publisher
//! republishes its final revision and the last batch must lose nothing:
//! zero stale loss after drain is the gate.
//!
//! The sharded leg compiles tables on their owner shards (plain-array
//! tables cross threads; interned paths do not), ships them to the
//! coordinator and walks on its topology mirror. Publish decisions are
//! made from the exact same `(published revision, debounce, control
//! revision)` inputs as the sequential leg, so every deterministic column
//! — walks, deliveries, stale losses, lookup counts, republishes — is
//! identical across shard counts; only wall-clock differs.

use disco_core::config::DiscoConfig;
use disco_core::forward::{ForwardingTable, TablePublisher};
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_dynamics::forward::{hop_distances, FlowAddress, PacketWalker, WalkOutcome};
use disco_dynamics::models::PoissonChurn;
use disco_graph::{generators, FxHashMap, Graph, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{
    Engine, EventQueue, NoopRecorder, Phase, Protocol, Recorder, ShardedEngine, TimerWheel,
};
use disco_telemetry::{FullRecorder, Log2Histogram, MessageClass};
use rand::Rng;
use std::time::Instant;

/// Boot-phase probe times (the protocol's phase timers end around t=110;
/// early checkpoints watch the data plane fill in).
const BOOT_CHECKPOINTS: &[f64] = &[30.0, 60.0, 90.0, 120.0];
/// Churn-phase probe times, inside the Poisson schedule's horizon.
const CHURN_CHECKPOINTS: &[f64] = &[140.0, 160.0, 180.0, 200.0, 220.0, 240.0, 260.0, 280.0];
/// Walk TTL: transient loops across mixed epochs count as stale losses.
const TTL: u32 = 128;
/// Flows per checkpoint whose walks feed the hop-stretch estimate (each
/// needs a BFS from its source; the full flow batch would be quadratic).
const STRETCH_SAMPLE: usize = 64;

/// Parameters of one `exp_forward` leg.
#[derive(Debug, Clone)]
pub struct ForwardConfig {
    /// Network size.
    pub n: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Flows sampled per checkpoint (half Zipf destinations, half
    /// uniform).
    pub flows: usize,
    /// Publisher debounce in simulation-time units: selection changes
    /// closer than this to the last publish coalesce into one republish.
    pub debounce: f64,
    /// Worker shards (0 = the sequential engine).
    pub shards: usize,
    /// Write the run as a Chrome `trace_event` timeline to this path
    /// (sequential legs only): control-plane classes plus the
    /// delivered-lookups data-plane track.
    pub trace: Option<String>,
    /// Run the live synopsis-diffusion n-estimation gossip. Off by
    /// default: the gossip is `exp_churn`'s subject and dominates control
    /// cost super-linearly (~70x the messages at n=512), while the data
    /// plane being measured here — table compile, epoch publish, lookup —
    /// is identical either way.
    pub dynamic_n: bool,
}

/// Per-phase traffic statistics of one leg. All integer columns are
/// deterministic in `(n, seed, flows, debounce)` and identical across
/// shard counts; only the wall-clock-derived columns vary.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (`boot` / `churn` / `drain`).
    pub phase: &'static str,
    /// Checkpoints aggregated into this row.
    pub checkpoints: u32,
    /// Packets walked.
    pub walks: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets lost to stale epochs: a published hop onto a dead link or
    /// node, or a TTL-expired loop across mixed epochs, while the pair
    /// was actually routable.
    pub stale_loss: u64,
    /// Packets dropped with no stale hop to blame: unpublished table,
    /// unresolved address, or a landmark route not yet learned, while the
    /// pair was routable.
    pub miss: u64,
    /// Packets whose pair had no active path at all (excluded from the
    /// loss SLO — nothing to serve).
    pub unreachable: u64,
    /// Table probes performed by all walks.
    pub lookups: u64,
    /// Wall seconds inside the timed walk batches.
    pub lookup_secs: f64,
    /// The headline: table probes per wall second.
    pub lookups_per_sec: f64,
    /// Hops traversed by delivered packets.
    pub hops: u64,
    /// Delivered hops over the stretch subsample (numerator).
    pub stretch_hops: u64,
    /// BFS shortest-path hops for the same subsample (denominator).
    pub stretch_dist: u64,
    /// Per-lookup latency, median upper bound (ns).
    pub p50_ns: u64,
    /// Per-lookup latency, p99 upper bound (ns).
    pub p99_ns: u64,
    /// Table epochs published during this phase across all nodes.
    pub republishes: u64,
}

impl PhaseRow {
    /// Mean hops of a delivered packet.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops as f64 / self.delivered as f64
        }
    }

    /// Mean hop stretch over the per-checkpoint subsample.
    pub fn mean_stretch(&self) -> f64 {
        if self.stretch_dist == 0 {
            0.0
        } else {
            self.stretch_hops as f64 / self.stretch_dist as f64
        }
    }

    /// The deterministic columns (everything but wall clock), for the
    /// sharded-vs-sequential equivalence check.
    pub fn deterministic_key(&self) -> [u64; 10] {
        [
            self.walks,
            self.delivered,
            self.stale_loss,
            self.miss,
            self.unreachable,
            self.lookups,
            self.hops,
            self.stretch_hops,
            self.stretch_dist,
            self.republishes,
        ]
    }

    /// One JSON object literal (hand-rolled; the serde stand-in does not
    /// serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"phase\": \"{}\", \"checkpoints\": {}, \"walks\": {}, \
             \"delivered\": {}, \"stale_loss\": {}, \"miss\": {}, \
             \"unreachable\": {}, \"lookups\": {}, \"lookup_secs\": {:.4}, \
             \"lookups_per_sec\": {:.0}, \"mean_hops\": {:.3}, \
             \"mean_stretch\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"republishes\": {} }}",
            self.phase,
            self.checkpoints,
            self.walks,
            self.delivered,
            self.stale_loss,
            self.miss,
            self.unreachable,
            self.lookups,
            self.lookup_secs,
            self.lookups_per_sec,
            self.mean_hops(),
            self.mean_stretch(),
            self.p50_ns,
            self.p99_ns,
            self.republishes,
        )
    }
}

/// Measurements of one `exp_forward` leg.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Network size.
    pub n: usize,
    /// Worker shards (0 = sequential).
    pub shards: usize,
    /// Landmarks elected.
    pub landmarks: usize,
    /// Flows per checkpoint.
    pub flows: usize,
    /// The boot-phase row.
    pub boot: PhaseRow,
    /// The churn-phase row.
    pub churn: PhaseRow,
    /// The drain-phase row (one final batch after quiescence +
    /// republish; its `stale_loss` must be zero).
    pub drain: PhaseRow,
    /// Table-resident destinations summed over all published tables at
    /// the end of the run.
    pub table_entries: u64,
    /// Published flat-array bytes summed over all tables at end of run.
    pub table_bytes: u64,
    /// What per-node `FxHashMap<NodeId, FibEntry>` FIBs would pay for the
    /// same contents ([`disco_metrics::forward`]'s pricing model).
    pub hash_fib_bytes: u64,
    /// Simulation time at quiescence.
    pub sim_end: f64,
}

impl ForwardResult {
    /// Lookups/sec minimum across the phases that forwarded traffic — the
    /// number the smoke floor is derived from.
    pub fn min_phase_lookups_per_sec(&self) -> f64 {
        [&self.boot, &self.churn, &self.drain]
            .iter()
            .filter(|p| p.lookups > 0)
            .map(|p| p.lookups_per_sec)
            .fold(f64::INFINITY, f64::min)
    }

    /// One JSON object literal.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"n\": {}, \"shards\": {}, \"landmarks\": {}, \"flows\": {}, \
             \"table_entries\": {}, \"table_bytes\": {}, \"hash_fib_bytes\": {}, \
             \"sim_end\": {:.6}, \
             \"phases\": [\n      {},\n      {},\n      {}\n    ] }}",
            self.n,
            self.shards,
            self.landmarks,
            self.flows,
            self.table_entries,
            self.table_bytes,
            self.hash_fib_bytes,
            self.sim_end,
            self.boot.to_json(),
            self.churn.to_json(),
            self.drain.to_json(),
        )
    }
}

/// Phase accumulator (latency histogram included; collapsed into a
/// [`PhaseRow`] at the end).
#[derive(Default)]
struct PhaseAcc {
    checkpoints: u32,
    walks: u64,
    delivered: u64,
    stale_loss: u64,
    miss: u64,
    unreachable: u64,
    lookups: u64,
    lookup_secs: f64,
    hops: u64,
    stretch_hops: u64,
    stretch_dist: u64,
    republishes: u64,
    lat: Log2Histogram,
}

impl PhaseAcc {
    fn into_row(self, phase: &'static str) -> PhaseRow {
        PhaseRow {
            phase,
            checkpoints: self.checkpoints,
            walks: self.walks,
            delivered: self.delivered,
            stale_loss: self.stale_loss,
            miss: self.miss,
            unreachable: self.unreachable,
            lookups: self.lookups,
            lookup_secs: self.lookup_secs,
            lookups_per_sec: self.lookups as f64 / self.lookup_secs.max(1e-9),
            hops: self.hops,
            stretch_hops: self.stretch_hops,
            stretch_dist: self.stretch_dist,
            p50_ns: self.lat.quantile_upper(0.5),
            p99_ns: self.lat.quantile_upper(0.99),
            republishes: self.republishes,
        }
    }
}

/// The engine surface the traffic generator drives — implemented by the
/// sequential [`Engine`] and the [`ShardedEngine`], so boot/churn/drain
/// checkpoints run the identical decision sequence on both.
trait DataPlane {
    fn run_to_t(&mut self, t: f64);
    /// Run to quiescence; returns the simulation end time.
    fn drain_to_quiescence(&mut self) -> f64;
    fn topo(&self) -> &Graph;
    fn is_live(&self, v: NodeId) -> bool;
    fn live_nodes(&self) -> Vec<NodeId>;
    /// Republish every live node whose control revision moved (modulo
    /// debounce); returns the number of new epochs.
    fn republish(&mut self, pubs: &mut [TablePublisher], now: f64) -> u64;
    /// Resolve each flow's destination address (omniscient resolution:
    /// the probe reads the destination's current `my_address`, detached
    /// from the path arena).
    fn addresses(&mut self, flows: &[(NodeId, NodeId)]) -> Vec<Option<FlowAddress>>;
    /// Feed the run's recorder with one checkpoint's data-plane telemetry
    /// (no-op on untraced/sharded legs).
    fn record_lookups(
        &mut self,
        _now: f64,
        _flows: &[(NodeId, NodeId)],
        _outcomes: &[WalkOutcome],
        _lookup_ns: &[u64],
    ) {
    }
    /// Phase marks for the trace timeline (no-op when untraced).
    fn mark_phase(&mut self, _phase: Phase, _begin: bool, _now: f64) {}
}

impl<Q, R> DataPlane for Engine<'_, DiscoProtocol, Q, R>
where
    Q: EventQueue<<DiscoProtocol as Protocol>::Message>,
    R: Recorder,
{
    fn run_to_t(&mut self, t: f64) {
        self.run_to(t);
    }

    fn drain_to_quiescence(&mut self) -> f64 {
        self.run_until(|_| false);
        self.now()
    }

    fn topo(&self) -> &Graph {
        self.graph()
    }

    fn is_live(&self, v: NodeId) -> bool {
        self.is_active(v)
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.active_nodes().collect()
    }

    fn republish(&mut self, pubs: &mut [TablePublisher], now: f64) -> u64 {
        let mut count = 0;
        for (v, publisher) in pubs.iter_mut().enumerate() {
            if !self.is_active(NodeId(v)) {
                continue;
            }
            let node = &self.nodes()[v];
            if publisher.needs_publish(node.control_revision(), now) {
                publisher.publish_with(now, |t| node.compile_forwarding_into(t));
                count += 1;
            }
        }
        count
    }

    fn addresses(&mut self, flows: &[(NodeId, NodeId)]) -> Vec<Option<FlowAddress>> {
        let nodes = self.nodes();
        flows
            .iter()
            .map(|&(_, t)| {
                nodes[t.0].my_address().map(|a| FlowAddress {
                    landmark: a.landmark,
                    path: a.path.to_vec(),
                })
            })
            .collect()
    }

    fn record_lookups(
        &mut self,
        now: f64,
        flows: &[(NodeId, NodeId)],
        outcomes: &[WalkOutcome],
        lookup_ns: &[u64],
    ) {
        if !R::ENABLED {
            return;
        }
        let rec = self.recorder_mut();
        // A lookup "message" is the probe key: 4 bytes on the wire model.
        rec.message_sent(
            now,
            MessageClass::Lookup,
            flows.len() as u64,
            4 * flows.len() as u64,
        );
        let mut dropped = 0;
        for (&(s, t), out) in flows.iter().zip(outcomes) {
            if out.delivered() {
                rec.message_delivered(now, MessageClass::Lookup, s.0 as u32, t.0 as u32);
            } else {
                dropped += 1;
            }
        }
        if dropped > 0 {
            rec.message_dropped(now, MessageClass::Lookup, dropped);
        }
        for &ns in lookup_ns {
            rec.event_done(MessageClass::Lookup, ns);
        }
    }

    fn mark_phase(&mut self, phase: Phase, begin: bool, now: f64) {
        if !R::ENABLED {
            return;
        }
        if begin {
            self.recorder_mut().phase_begin(phase, now);
        } else {
            self.recorder_mut().phase_end(phase, now);
        }
    }
}

impl DataPlane for ShardedEngine<DiscoProtocol, NoopRecorder> {
    fn run_to_t(&mut self, t: f64) {
        self.run_to(t);
    }

    fn drain_to_quiescence(&mut self) -> f64 {
        self.run_until(|_| false);
        self.now()
    }

    fn topo(&self) -> &Graph {
        self.graph()
    }

    fn is_live(&self, v: NodeId) -> bool {
        self.is_active(v)
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.active_nodes().collect()
    }

    fn republish(&mut self, pubs: &mut [TablePublisher], now: f64) -> u64 {
        let mut count = 0;
        for shard in 0..self.shards() {
            // Ship each owned node's publish-decision inputs to its shard;
            // the worker evaluates exactly `TablePublisher::needs_publish`
            // and compiles only the tables that need a new epoch.
            let mine: Vec<(usize, Option<u64>, bool)> = (0..pubs.len())
                .filter(|&v| self.owner_of(NodeId(v)) == shard && self.is_active(NodeId(v)))
                .map(|v| (v, pubs[v].published_revision(), pubs[v].may_publish_at(now)))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let rows: Vec<(usize, Option<ForwardingTable>)> = self.visit(shard, move |e| {
                let nodes = e.nodes();
                mine.into_iter()
                    .map(|(v, pub_rev, may)| {
                        let node = &nodes[v];
                        let rev = node.control_revision();
                        let needs = match pub_rev {
                            None => true,
                            Some(pr) => pr != rev && may,
                        };
                        let table = needs.then(|| {
                            let mut t = ForwardingTable::new(NodeId(v));
                            node.compile_forwarding_into(&mut t);
                            t
                        });
                        (v, table)
                    })
                    .collect()
            });
            for (v, table) in rows {
                if let Some(table) = table {
                    pubs[v].publish_with(now, |slot| *slot = table);
                    count += 1;
                }
            }
        }
        count
    }

    fn addresses(&mut self, flows: &[(NodeId, NodeId)]) -> Vec<Option<FlowAddress>> {
        let mut out: Vec<Option<FlowAddress>> = vec![None; flows.len()];
        for shard in 0..self.shards() {
            let mine: Vec<(usize, usize)> = flows
                .iter()
                .enumerate()
                .filter(|&(_, &(_, t))| self.owner_of(t) == shard)
                .map(|(i, &(_, t))| (i, t.0))
                .collect();
            if mine.is_empty() {
                continue;
            }
            // Addresses come back with their label paths detached from
            // the worker's thread-local arena.
            type AddrRow = (usize, Option<(NodeId, Vec<NodeId>)>);
            let rows: Vec<AddrRow> = self.visit(shard, move |e| {
                let nodes = e.nodes();
                mine.into_iter()
                    .map(|(i, t)| {
                        (
                            i,
                            nodes[t].my_address().map(|a| (a.landmark, a.path.to_vec())),
                        )
                    })
                    .collect()
            });
            for (i, addr) in rows {
                out[i] = addr.map(|(landmark, path)| FlowAddress { landmark, path });
            }
        }
        out
    }
}

/// Sample one checkpoint's flows: sources uniform over the live nodes;
/// destinations alternate between a Zipf(1) rank distribution over the
/// live list and a uniform draw. Deterministic in `(seed, checkpoint)`.
fn sample_flows(
    live: &[NodeId],
    flows: usize,
    seed: u64,
    checkpoint: u64,
) -> Vec<(NodeId, NodeId)> {
    let mut rng = rng_for(seed, 0xf0, checkpoint);
    // Harmonic CDF over ranks (rank = position in the live list).
    let mut cdf = Vec::with_capacity(live.len());
    let mut acc = 0.0f64;
    for r in 0..live.len() {
        acc += 1.0 / (r + 1) as f64;
        cdf.push(acc);
    }
    let total = acc;
    (0..flows)
        .map(|i| {
            let s = live[rng.gen_range(0..live.len())];
            let zipf = i % 2 == 0;
            let t = loop {
                let t = if zipf {
                    let x = rng.gen::<f64>() * total;
                    let k = cdf.partition_point(|&c| c < x).min(live.len() - 1);
                    live[k]
                } else {
                    live[rng.gen_range(0..live.len())]
                };
                if t != s {
                    break t;
                }
            };
            (s, t)
        })
        .collect()
}

/// Run one checkpoint: republish, sample flows, resolve addresses, walk
/// every packet through the published epochs (the timed batch), then
/// classify outcomes against BFS reachability.
fn checkpoint<D: DataPlane>(
    plane: &mut D,
    pubs: &mut [TablePublisher],
    acc: &mut PhaseAcc,
    cfg: &ForwardConfig,
    checkpoint_idx: u64,
    now: f64,
) {
    acc.checkpoints += 1;
    acc.republishes += plane.republish(pubs, now);
    let live = plane.live_nodes();
    if live.len() < 2 {
        return;
    }
    let flows = sample_flows(&live, cfg.flows, cfg.seed, checkpoint_idx);
    let addrs = plane.addresses(&flows);

    // The timed batch: every table probe of every walk, individually
    // clocked into the latency histogram.
    let graph = plane.topo();
    let mut outcomes = Vec::with_capacity(flows.len());
    let mut lookup_ns: Vec<u64> = Vec::with_capacity(flows.len() * 3);
    let walker = PacketWalker {
        graph,
        is_active: |v: NodeId| plane.is_live(v),
        table_of: |v: NodeId| {
            let p = &pubs[v.0];
            p.has_published().then(|| p.table())
        },
        ttl: TTL,
    };
    let t0 = Instant::now();
    for (&(s, t), addr) in flows.iter().zip(&addrs) {
        outcomes.push(walker.walk(s, t, addr.as_ref(), |ns| lookup_ns.push(ns)));
    }
    acc.lookup_secs += t0.elapsed().as_secs_f64();
    acc.lookups += lookup_ns.len() as u64;
    for &ns in &lookup_ns {
        acc.lat.record(ns);
    }

    // Classification + stretch, outside the timed window. BFS runs once
    // per distinct source that needs it (stretch subsample + drops).
    let mut bfs: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
    let mut dist_to = |s: NodeId, t: NodeId, plane: &D| {
        let graph = plane.topo();
        bfs.entry(s)
            .or_insert_with(|| hop_distances(graph, |v| plane.is_live(v), s))[t.0]
    };
    for (i, (&(s, t), out)) in flows.iter().zip(&outcomes).enumerate() {
        acc.walks += 1;
        match out {
            WalkOutcome::Delivered { hops } => {
                acc.delivered += 1;
                acc.hops += u64::from(*hops);
                if i < STRETCH_SAMPLE {
                    let d = dist_to(s, t, plane);
                    if d != u32::MAX && d > 0 {
                        acc.stretch_hops += u64::from(*hops);
                        acc.stretch_dist += u64::from(d);
                    }
                }
            }
            WalkOutcome::StaleLoss { .. } | WalkOutcome::TtlExceeded => {
                if dist_to(s, t, plane) == u32::MAX {
                    acc.unreachable += 1;
                } else {
                    acc.stale_loss += 1;
                }
            }
            WalkOutcome::Miss { .. } => {
                if dist_to(s, t, plane) == u32::MAX {
                    acc.unreachable += 1;
                } else {
                    acc.miss += 1;
                }
            }
        }
    }
    plane.record_lookups(now, &flows, &outcomes, &lookup_ns);
}

/// Drive the boot/churn/drain phase schedule over any [`DataPlane`].
fn drive_phases<D: DataPlane>(
    plane: &mut D,
    pubs: &mut [TablePublisher],
    cfg: &ForwardConfig,
) -> (PhaseRow, PhaseRow, PhaseRow, f64) {
    let mut ck = 0u64;
    let mut boot = PhaseAcc::default();
    plane.mark_phase(Phase::Boot, true, 0.0);
    for &t in BOOT_CHECKPOINTS {
        plane.run_to_t(t);
        checkpoint(plane, pubs, &mut boot, cfg, ck, t);
        ck += 1;
    }
    plane.mark_phase(Phase::Boot, false, *BOOT_CHECKPOINTS.last().unwrap());

    let mut churn = PhaseAcc::default();
    plane.mark_phase(Phase::Churn, true, *BOOT_CHECKPOINTS.last().unwrap());
    for &t in CHURN_CHECKPOINTS {
        plane.run_to_t(t);
        checkpoint(plane, pubs, &mut churn, cfg, ck, t);
        ck += 1;
    }
    let churn_end = *CHURN_CHECKPOINTS.last().unwrap();
    plane.mark_phase(Phase::Churn, false, churn_end);

    plane.mark_phase(Phase::Drain, true, churn_end);
    let sim_end = plane.drain_to_quiescence();
    let mut drain = PhaseAcc::default();
    checkpoint(plane, pubs, &mut drain, cfg, ck, sim_end);
    plane.mark_phase(Phase::Drain, false, sim_end);

    (
        boot.into_row("boot"),
        churn.into_row("churn"),
        drain.into_row("drain"),
        sim_end,
    )
}

/// Run one `exp_forward` leg. Deterministic in `(n, seed, flows,
/// debounce)` up to wall-clock columns, including across shard counts.
pub fn run_one(cfg: &ForwardConfig) -> ForwardResult {
    let graph = generators::gnm_average_degree(cfg.n, 8.0, cfg.seed);
    let dcfg = DiscoConfig::seeded(cfg.seed).with_dynamic_n_estimation(cfg.dynamic_n);
    let landmarks = select_landmarks(cfg.n, &dcfg);
    let lm_set = landmark_set(&landmarks);
    let landmark_count = landmarks.len();
    let model = PoissonChurn {
        leave_rate_per_node: 0.0002,
        mean_downtime: 150.0,
        horizon: 300.0,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, cfg.seed);
    let mut pubs: Vec<TablePublisher> = (0..graph.node_count())
        .map(|v| TablePublisher::new(NodeId(v), cfg.debounce))
        .collect();

    let n = cfg.n;
    let factory_cfg = dcfg.clone();
    let factory = move |v: NodeId| {
        DiscoProtocol::new(
            v,
            lm_set.contains(&v),
            n,
            &factory_cfg,
            PhaseTimers::default(),
        )
    };

    let (boot, churn, drain, sim_end) = if cfg.shards > 0 {
        assert!(cfg.trace.is_none(), "--shards runs untraced");
        let mut engine = ShardedEngine::new(&graph, cfg.shards, cfg.seed, factory);
        schedule
            .apply_to_sharded(&mut engine)
            .expect("churn re-adds only links of the original graph");
        let out = drive_phases(&mut engine, &mut pubs, cfg);
        // Clean worker shutdown (drops shard engines, compacts arenas).
        engine.finish();
        out
    } else if let Some(path) = &cfg.trace {
        let mut rec = FullRecorder::new();
        rec.phase_begin(Phase::Build, 0.0);
        rec.phase_end(Phase::Build, 0.0);
        let mut engine = Engine::with_recorder(&graph, factory, TimerWheel::new(), rec);
        schedule.apply_to(&mut engine);
        let out = drive_phases(&mut engine, &mut pubs, cfg);
        let end = engine.now();
        engine.recorder_mut().finish(end);
        let rec = engine.into_recorder();
        let json = rec.chrome_trace_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("trace written to {path} ({} bytes)", json.len());
        out
    } else {
        let mut engine = Engine::with_recorder(&graph, factory, TimerWheel::new(), NoopRecorder);
        schedule.apply_to(&mut engine);
        drive_phases(&mut engine, &mut pubs, cfg)
    };

    let (mut table_entries, mut table_bytes, mut hash_fib_bytes) = (0u64, 0u64, 0u64);
    for p in &pubs {
        if p.has_published() {
            let t = p.table();
            table_entries += t.len() as u64;
            table_bytes += t.approx_bytes() as u64;
            hash_fib_bytes += disco_metrics::forward::hash_fib_bytes(t.len(), t.ring_len()) as u64;
        }
    }

    ForwardResult {
        n: cfg.n,
        shards: cfg.shards,
        landmarks: landmark_count,
        flows: cfg.flows,
        boot,
        churn,
        drain,
        table_entries,
        table_bytes,
        hash_fib_bytes,
        sim_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> ForwardConfig {
        ForwardConfig {
            n: 96,
            seed: 5,
            flows: 48,
            debounce: 5.0,
            shards,
            trace: None,
            dynamic_n: false,
        }
    }

    /// The leg runs, forwards traffic, and loses nothing after the drain.
    #[test]
    fn forward_leg_delivers_after_drain() {
        let r = run_one(&cfg(0));
        assert_eq!(r.n, 96);
        assert!(r.landmarks > 0);
        assert!(r.table_entries > 0 && r.table_bytes > 0);
        assert!(r.drain.walks > 0);
        assert!(r.drain.delivered > 0);
        assert_eq!(
            r.drain.stale_loss, 0,
            "stale losses after drain + republish: {:?}",
            r.drain
        );
        assert_eq!(r.drain.miss, 0, "misses after drain: {:?}", r.drain);
        assert!(r.churn.lookups > 0 && r.churn.lookups_per_sec > 0.0);
        assert!(r.drain.mean_stretch() >= 1.0);
        let j = r.to_json();
        assert!(j.contains("\"lookups_per_sec\""));
    }

    /// Sharded legs reproduce the sequential leg's deterministic columns
    /// exactly — same walks, deliveries, stale losses, lookup counts and
    /// republish decisions at shards {1, 2}.
    #[test]
    fn sharded_legs_match_sequential() {
        let seq = run_one(&cfg(0));
        for shards in [1, 2] {
            let sh = run_one(&cfg(shards));
            for (a, b) in [
                (&seq.boot, &sh.boot),
                (&seq.churn, &sh.churn),
                (&seq.drain, &sh.drain),
            ] {
                assert_eq!(
                    a.deterministic_key(),
                    b.deterministic_key(),
                    "phase {} diverged at shards {shards}",
                    a.phase
                );
            }
            assert_eq!(seq.table_entries, sh.table_entries);
            assert_eq!(seq.table_bytes, sh.table_bytes);
            assert_eq!(seq.sim_end, sh.sim_end);
        }
    }
}
