//! Minimal command-line argument handling shared by the `fig*` / `exp*`
//! binaries.
//!
//! Every binary accepts the same flags so a full figure sweep can be
//! scripted uniformly:
//!
//! ```text
//! --nodes N      topology size (each binary has a paper-appropriate default)
//! --seed S       experiment seed (default 1)
//! --sources K    number of sampled stretch sources
//! --dests K      destinations per sampled source
//! --points K     number of CDF points to print (default 20)
//! ```
//!
//! No external argument-parsing crate is used (the offline dependency list
//! is deliberately small); unknown flags abort with a usage message.

use disco_metrics::experiment::ExperimentParams;

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Topology size.
    pub nodes: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Sampled stretch sources.
    pub sources: usize,
    /// Destinations per source.
    pub dests: usize,
    /// CDF points to print.
    pub points: usize,
}

impl CommonArgs {
    /// Parse `std::env::args` with the given default node count.
    pub fn parse(default_nodes: usize) -> Self {
        Self::parse_from(std::env::args().skip(1), default_nodes)
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>, default_nodes: usize) -> Self {
        let mut out = CommonArgs {
            nodes: default_nodes,
            seed: 1,
            sources: 50,
            dests: 40,
            points: 20,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--nodes" | "-n" => out.nodes = value("--nodes").parse().expect("--nodes"),
                "--seed" | "-s" => out.seed = value("--seed").parse().expect("--seed"),
                "--sources" => out.sources = value("--sources").parse().expect("--sources"),
                "--dests" => out.dests = value("--dests").parse().expect("--dests"),
                "--points" => out.points = value("--points").parse().expect("--points"),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --nodes N --seed S --sources K --dests K --points K (defaults: nodes={default_nodes}, seed=1)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        out
    }

    /// Convert to experiment parameters.
    pub fn params(&self) -> ExperimentParams {
        ExperimentParams {
            nodes: self.nodes,
            seed: self.seed,
            state_samples: usize::MAX,
            stretch_sources: self.sources.min(self.nodes / 2).max(1),
            stretch_dests_per_source: self.dests.min(self.nodes / 4).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = CommonArgs::parse_from(v(&[]), 1024);
        assert_eq!(a.nodes, 1024);
        assert_eq!(a.seed, 1);
        assert_eq!(a.points, 20);
    }

    #[test]
    fn flags_override() {
        let a =
            CommonArgs::parse_from(v(&["--nodes", "256", "--seed", "9", "--points", "5"]), 1024);
        assert_eq!(a.nodes, 256);
        assert_eq!(a.seed, 9);
        assert_eq!(a.points, 5);
        let p = a.params();
        assert_eq!(p.nodes, 256);
        assert_eq!(p.seed, 9);
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        let _ = CommonArgs::parse_from(v(&["--bogus"]), 10);
    }
}
