//! # disco-bench
//!
//! Benchmark and figure-regeneration harness. The `fig*`/`exp*` binaries in
//! `src/bin/` regenerate every table and figure of the paper's evaluation
//! (§5); the Criterion benches in `benches/` measure the cost of the core
//! operations (topology generation, state construction, routing).
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison.

pub mod churn;
pub mod cli;
pub mod forward;
pub mod memory;
pub mod scale;

pub use cli::CommonArgs;
