//! The steady-state churn experiment behind `exp_churn`.
//!
//! Extends the paper's Fig. 8 methodology (messages until convergence on a
//! static graph) to dynamics: run the full distributed Disco protocol to
//! convergence, inject a seeded Poisson churn schedule, and measure route
//! availability, stretch-under-churn and repair traffic at fixed probe
//! times. Every number is a pure function of `(nodes, seed)`, so the
//! summary is byte-identical across runs — the property the determinism
//! test locks in.

use disco_core::config::DiscoConfig;
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_dynamics::models::PoissonChurn;
use disco_dynamics::probe::{
    disco_first_packet_route, disco_probe_sharded, probe, sample_live_pairs,
    sample_live_pairs_sharded,
};
use disco_graph::generators;
use disco_sim::{Engine, NoopRecorder, Phase, Recorder, ShardedEngine, TimerWheel};
use std::fmt::Write as _;

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Network size.
    pub nodes: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-node leave rate during the churn window.
    pub leave_rate_per_node: f64,
    /// Mean downtime before rejoin.
    pub mean_downtime: f64,
    /// Length of the churn window (simulation time).
    pub horizon: f64,
    /// Number of availability probes spread over the window.
    pub probes: usize,
    /// Sampled (source, destination) pairs per probe.
    pub pairs_per_probe: usize,
    /// Run the path-vector layer with forgetful eviction
    /// (`DiscoConfig::forgetful_dynamic`): bounded per-destination
    /// candidate sets plus route-refresh re-solicitation.
    pub forgetful: bool,
    /// Pin every node to its construction-time estimate of `n` instead of
    /// the default live synopsis-diffusion gossip
    /// (`DiscoConfig::dynamic_n_estimation`) — the `--static-n` escape
    /// hatch.
    pub static_n: bool,
}

impl ChurnParams {
    /// Paper-appropriate defaults at the given size.
    pub fn sized(nodes: usize, seed: u64) -> Self {
        ChurnParams {
            nodes,
            seed,
            leave_rate_per_node: 0.0002,
            mean_downtime: 150.0,
            horizon: 2000.0,
            probes: 8,
            pairs_per_probe: 128,
            forgetful: false,
            static_n: false,
        }
    }

    /// Builder-style: toggle forgetful eviction in the path-vector RIB.
    pub fn with_forgetful(mut self, forgetful: bool) -> Self {
        self.forgetful = forgetful;
        self
    }

    /// Builder-style: pin nodes to their construction-time estimate of `n`
    /// (disables the synopsis-diffusion gossip).
    pub fn with_static_n(mut self, static_n: bool) -> Self {
        self.static_n = static_n;
        self
    }

    /// The protocol configuration these parameters describe.
    fn config(&self) -> DiscoConfig {
        DiscoConfig::seeded(self.seed)
            .with_forgetful_dynamic(self.forgetful)
            .with_dynamic_n_estimation(!self.static_n)
    }
}

/// One probe row of the churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnProbe {
    /// Probe time.
    pub time: f64,
    /// Live-node count at probe time.
    pub live: usize,
    /// Routable (connected) sampled pairs.
    pub routable: usize,
    /// Delivered pairs.
    pub delivered: usize,
    /// Mean first-packet stretch over delivered pairs.
    pub mean_stretch: f64,
}

/// Aggregate outcome of the churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// Per-probe rows (during churn plus one final post-repair probe).
    pub timeline: Vec<ChurnProbe>,
    /// Availability aggregated over every in-churn probe.
    pub availability: f64,
    /// Availability of the final probe after the network quiesced.
    pub final_availability: f64,
    /// Topology events applied.
    pub topology_events: u64,
    /// Messages lost to failed links / departed nodes.
    pub messages_dropped: u64,
    /// Control messages per node spent on initial convergence.
    pub convergence_msgs_per_node: f64,
    /// Control messages per node spent on repair during the churn window
    /// (the Fig. 8 quantity, extended to steady-state churn).
    pub repair_msgs_per_node: f64,
    /// Whether the simulation reached quiescence after the churn window.
    pub quiesced: bool,
    /// Messages delivered to `on_message` upcalls (batch members counted
    /// individually).
    pub messages_delivered: u64,
    /// Epoch-dead timers that slipped past eager cancellation (0 when the
    /// engine's eager timer reclamation is airtight).
    pub stale_timer_pops: u64,
    /// Live event-queue entries at the end of the run (0 once quiesced).
    pub queue_live: usize,
    /// Cancelled-but-unreclaimed queue residue at the end of the run.
    pub queue_dead: usize,
    /// Total control bytes sent.
    pub bytes_sent: u64,
    /// Total control bytes received (differs from sent by exactly the
    /// bytes lost in flight).
    pub bytes_received: u64,
}

impl ChurnOutcome {
    /// Render the deterministic summary printed by `exp_churn`.
    pub fn summary(&self, params: &ChurnParams) -> String {
        let mut out = String::new();
        // Markers are appended only when their knob is on, so
        // default-config output stays byte-identical to the golden.
        let forgetful = if params.forgetful {
            " forgetful=on"
        } else {
            ""
        };
        let static_n = if params.static_n { " static_n=on" } else { "" };
        let _ = writeln!(
            out,
            "exp_churn: n={} seed={} leave_rate={} mean_downtime={} horizon={}{}{}",
            params.nodes,
            params.seed,
            params.leave_rate_per_node,
            params.mean_downtime,
            params.horizon,
            forgetful,
            static_n
        );
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>9} {:>10} {:>13}",
            "time", "live", "routable", "delivered", "mean_stretch"
        );
        for p in &self.timeline {
            let _ = writeln!(
                out,
                "{:>10.1} {:>6} {:>9} {:>10} {:>13.4}",
                p.time, p.live, p.routable, p.delivered, p.mean_stretch
            );
        }
        let _ = writeln!(
            out,
            "availability under churn: {:.4}   after repair: {:.4}",
            self.availability, self.final_availability
        );
        let _ = writeln!(
            out,
            "topology events: {}   in-flight messages lost: {}",
            self.topology_events, self.messages_dropped
        );
        let _ = writeln!(
            out,
            "control msgs/node: {:.1} (convergence) + {:.1} (repair)   quiesced: {}",
            self.convergence_msgs_per_node, self.repair_msgs_per_node, self.quiesced
        );
        let _ = writeln!(
            out,
            "engine gauges: delivered={} stale_timer_pops={} queue={} live / {} dead",
            self.messages_delivered, self.stale_timer_pops, self.queue_live, self.queue_dead
        );
        let _ = writeln!(
            out,
            "bytes: sent={} received={} lost_in_flight={}",
            self.bytes_sent,
            self.bytes_received,
            self.bytes_sent - self.bytes_received
        );
        out
    }
}

/// Run the churn experiment (no telemetry: the engine monomorphizes with
/// the no-op recorder, compiling to exactly the un-instrumented hot path).
pub fn churn_experiment(params: &ChurnParams) -> ChurnOutcome {
    churn_experiment_with(params, NoopRecorder).0
}

/// Run the churn experiment reporting into `recorder`, returning the
/// outcome together with the recorder (carrying counters, phase spans,
/// repair-latency windows and the flight ring).
///
/// The run is identical to [`churn_experiment`]'s whatever recorder is
/// attached: recorders only observe. The observer-effect test compares
/// this run's summary under a full recorder against the no-op golden.
pub fn churn_experiment_with<R: Recorder>(
    params: &ChurnParams,
    mut recorder: R,
) -> (ChurnOutcome, R) {
    let n = params.nodes;
    recorder.phase_begin(Phase::Build, 0.0);
    let graph = generators::gnm_average_degree(n, 8.0, params.seed);
    let cfg = params.config();
    let landmarks = select_landmarks(n, &cfg);
    let lm_set = landmark_set(&landmarks);
    recorder.phase_end(Phase::Build, 0.0);

    let mut engine = Engine::with_recorder(
        &graph,
        |v| DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default()),
        TimerWheel::new(),
        recorder,
    );
    engine.recorder_mut().phase_begin(Phase::Boot, 0.0);
    let report = engine.run();
    assert!(report.converged, "initial convergence failed");
    let convergence_msgs = engine.stats().total_sent();
    let boot_end = engine.now();
    engine.recorder_mut().phase_end(Phase::Boot, boot_end);

    // Compile and inject the churn schedule relative to "now".
    let model = PoissonChurn {
        leave_rate_per_node: params.leave_rate_per_node,
        mean_downtime: params.mean_downtime,
        horizon: params.horizon,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, params.seed);
    let start = engine.now();
    schedule.apply_to(&mut engine);
    engine.recorder_mut().phase_begin(Phase::Churn, start);

    // Probe at fixed times through the churn window.
    let mut timeline = Vec::with_capacity(params.probes + 1);
    let mut routable_total = 0usize;
    let mut delivered_total = 0usize;
    for i in 1..=params.probes {
        let t = start + params.horizon * i as f64 / params.probes as f64;
        engine.run_to(t);
        let pairs = sample_live_pairs(&engine, params.pairs_per_probe, params.seed ^ i as u64);
        let p = probe(&engine, &pairs, disco_first_packet_route);
        routable_total += p.routable;
        delivered_total += p.delivered;
        timeline.push(ChurnProbe {
            time: p.time - start,
            live: engine.active_count(),
            routable: p.routable,
            delivered: p.delivered,
            mean_stretch: p.mean_stretch(),
        });
    }
    let availability = if routable_total == 0 {
        1.0
    } else {
        delivered_total as f64 / routable_total as f64
    };
    let churn_end = engine.now();
    engine.recorder_mut().phase_end(Phase::Churn, churn_end);
    engine.recorder_mut().phase_begin(Phase::Drain, churn_end);

    // Let the network fully quiesce, then probe once more.
    let quiesced = engine.run_until(|_| false);
    let pairs = sample_live_pairs(&engine, params.pairs_per_probe, params.seed ^ 0xf17a1);
    let p = probe(&engine, &pairs, disco_first_packet_route);
    let final_availability = p.availability();
    timeline.push(ChurnProbe {
        time: engine.now() - start,
        live: engine.active_count(),
        routable: p.routable,
        delivered: p.delivered,
        mean_stretch: p.mean_stretch(),
    });
    let end = engine.now();
    engine.recorder_mut().phase_end(Phase::Drain, end);
    engine.recorder_mut().finish(end);

    let (queue_live, queue_dead) = engine.queue_stats();
    let outcome = ChurnOutcome {
        timeline,
        availability,
        final_availability,
        topology_events: engine.topology_events(),
        messages_dropped: engine.messages_dropped(),
        convergence_msgs_per_node: convergence_msgs as f64 / n as f64,
        repair_msgs_per_node: (engine.stats().total_sent() - convergence_msgs) as f64 / n as f64,
        quiesced,
        messages_delivered: engine.messages_delivered(),
        stale_timer_pops: engine.stale_timer_pops(),
        queue_live,
        queue_dead,
        bytes_sent: engine.stats().total_bytes(),
        bytes_received: engine.stats().total_bytes_received(),
    };
    (outcome, engine.into_recorder())
}

/// [`churn_experiment`] on the sharded engine with `shards` workers.
///
/// Returns the same [`ChurnOutcome`] — byte-identical summary for every
/// shard count, including 1 — because the sharded engine executes the
/// same logical event schedule as the sequential one and the probes read
/// protocol state through batched shard visits that reproduce the
/// sequential oracle's candidate order (see
/// `disco_dynamics::probe::disco_probe_sharded`). The golden test locks
/// this equality in.
pub fn churn_experiment_sharded(params: &ChurnParams, shards: usize) -> ChurnOutcome {
    let n = params.nodes;
    let graph = generators::gnm_average_degree(n, 8.0, params.seed);
    let cfg = params.config();
    let landmarks = select_landmarks(n, &cfg);
    let lm_set = landmark_set(&landmarks);

    let factory_cfg = cfg.clone();
    let mut engine = ShardedEngine::new(&graph, shards, params.seed, move |v| {
        DiscoProtocol::new(
            v,
            lm_set.contains(&v),
            n,
            &factory_cfg,
            PhaseTimers::default(),
        )
    });
    let report = engine.run();
    assert!(report.converged, "initial convergence failed");
    let convergence_msgs = report.stats.total_sent();

    let model = PoissonChurn {
        leave_rate_per_node: params.leave_rate_per_node,
        mean_downtime: params.mean_downtime,
        horizon: params.horizon,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, params.seed);
    let start = engine.now();
    schedule
        .apply_to_sharded(&mut engine)
        .expect("churn schedule re-adds only links of the original graph");

    let mut timeline = Vec::with_capacity(params.probes + 1);
    let mut routable_total = 0usize;
    let mut delivered_total = 0usize;
    for i in 1..=params.probes {
        let t = start + params.horizon * i as f64 / params.probes as f64;
        engine.run_to(t);
        let pairs =
            sample_live_pairs_sharded(&engine, params.pairs_per_probe, params.seed ^ i as u64);
        let p = disco_probe_sharded(&mut engine, &pairs);
        routable_total += p.routable;
        delivered_total += p.delivered;
        timeline.push(ChurnProbe {
            time: p.time - start,
            live: engine.active_count(),
            routable: p.routable,
            delivered: p.delivered,
            mean_stretch: p.mean_stretch(),
        });
    }
    let availability = if routable_total == 0 {
        1.0
    } else {
        delivered_total as f64 / routable_total as f64
    };

    let quiesced = engine.run_until(|_| false);
    let pairs = sample_live_pairs_sharded(&engine, params.pairs_per_probe, params.seed ^ 0xf17a1);
    let p = disco_probe_sharded(&mut engine, &pairs);
    let final_availability = p.availability();
    timeline.push(ChurnProbe {
        time: engine.now() - start,
        live: engine.active_count(),
        routable: p.routable,
        delivered: p.delivered,
        mean_stretch: p.mean_stretch(),
    });

    let (queue_live, queue_dead) = engine.queue_stats();
    let stats = engine.merged_stats();
    ChurnOutcome {
        timeline,
        availability,
        final_availability,
        topology_events: engine.topology_events(),
        messages_dropped: engine.messages_dropped(),
        convergence_msgs_per_node: convergence_msgs as f64 / n as f64,
        repair_msgs_per_node: (stats.total_sent() - convergence_msgs) as f64 / n as f64,
        quiesced,
        messages_delivered: engine.messages_delivered(),
        stale_timer_pops: engine.stale_timer_pops(),
        queue_live,
        queue_dead,
        bytes_sent: stats.total_bytes(),
        bytes_received: stats.total_bytes_received(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance run, at reduced scale so the suite stays fast:
    /// deterministic summary, ≥ 90% availability under churn, full
    /// availability after repair, bounded repair traffic. The full 512-node
    /// run is `churn_512_acceptance` (ignored by default; run with
    /// `cargo test -p disco-bench -- --ignored`) and the `exp_churn` binary.
    #[test]
    fn churn_small_acceptance() {
        let params = ChurnParams::sized(192, 7);
        let a = churn_experiment(&params);
        let b = churn_experiment(&params);
        assert_eq!(
            a.summary(&params),
            b.summary(&params),
            "same seed must reproduce a byte-identical summary"
        );
        assert!(a.quiesced, "churn repair must reach quiescence");
        assert!(
            a.availability >= 0.90,
            "availability under churn {:.4} < 0.90",
            a.availability
        );
        assert!(
            a.final_availability >= 0.99,
            "post-repair availability {:.4} < 0.99",
            a.final_availability
        );
        assert!(a.topology_events > 20, "expected real churn");
        assert!(
            a.repair_msgs_per_node < 50.0 * a.convergence_msgs_per_node,
            "repair traffic unbounded: {} msgs/node vs convergence {}",
            a.repair_msgs_per_node,
            a.convergence_msgs_per_node
        );
    }

    #[test]
    #[ignore = "full-scale acceptance run (~release-mode minutes in debug); exp_churn runs the same thing"]
    fn churn_512_acceptance() {
        let params = ChurnParams::sized(512, 1);
        let a = churn_experiment(&params);
        let b = churn_experiment(&params);
        assert_eq!(a.summary(&params), b.summary(&params));
        assert!(a.quiesced);
        assert!(a.availability >= 0.90, "availability {:.4}", a.availability);
    }
}
