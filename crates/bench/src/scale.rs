//! The `exp_scale` workload: hot-path throughput and memory gauges at one
//! network size.
//!
//! The measured leg is the distributed Disco protocol booting *under* a
//! Poisson churn schedule, capped at a fixed budget of **delivered
//! announcements** so the cost of a measurement is independent of `n` —
//! what varies with `n` is the per-message cost (routing-table size,
//! candidate-set size, queue residency), which is exactly what the
//! announcements/sec number tracks. The budget counts protocol messages
//! delivered to `on_message`, not queue pops: since the batched message
//! plane packs a whole table dump into one queue entry, events/sec could
//! be "improved" arbitrarily by packing more work per event, while a
//! delivered announcement means the same protocol work in every
//! configuration. The static-build timing exercises
//! `DiscoState::build_parallel` with the `threads` knob.

use disco_core::config::DiscoConfig;
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_core::static_state::DiscoState;
use disco_dynamics::models::PoissonChurn;
use disco_graph::{generators, NodeId, PathArena};
use disco_sim::{
    BinaryHeapQueue, Engine, EventQueue, NoopRecorder, Phase, Protocol, Recorder, ShardedEngine,
    TimerWheel,
};
use disco_telemetry::FullRecorder;
use std::time::Instant;

/// Parameters of one `exp_scale` leg.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Network size.
    pub n: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Delivered-announcement budget for the throughput leg (the run stops
    /// once this many messages reached `on_message`, or at quiescence).
    pub announcement_budget: u64,
    /// Worker threads for the static build (0 = one per CPU).
    pub build_threads: usize,
    /// Use the legacy `BinaryHeap` event queue instead of the timer wheel
    /// (for queue-only comparisons).
    pub heap_queue: bool,
    /// Export the throughput leg as a Chrome `trace_event` timeline to this
    /// path (runs the full telemetry recorder; `None` = no-op recorder,
    /// the measured configuration).
    pub trace: Option<String>,
    /// Run the throughput leg on the sharded engine with this many worker
    /// shards (0 = the sequential engine). Delivered announcements,
    /// topology events and the simulation end time are identical for every
    /// shard count; wall-clock scales with cores. Incompatible with
    /// `heap_queue` and `trace` (the sharded engine runs the wheel queue
    /// untraced).
    pub shards: usize,
}

/// Measurements of one `exp_scale` leg.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Network size.
    pub n: usize,
    /// Landmarks elected at this size.
    pub landmarks: usize,
    /// Wall time of `DiscoState::build_parallel`.
    pub build_secs: f64,
    /// Engine events (queue pops) processed in the throughput leg.
    pub events: u64,
    /// Announcements delivered to `on_message` upcalls (batch members
    /// counted individually).
    pub announcements: u64,
    /// Wall time of the throughput leg.
    pub engine_secs: f64,
    /// Queue pops per second (a batch counts once — see
    /// [`ScaleResult::announcements_per_sec`] for the headline number).
    pub events_per_sec: f64,
    /// The headline number: delivered announcements per second.
    pub announcements_per_sec: f64,
    /// Peak live path-arena cells during the run (allocation gauge — the
    /// RSS proxy for routing state).
    pub peak_arena_cells: usize,
    /// Live path-arena cells at the end of the run (gauged while the
    /// engine still holds its routing state).
    pub live_arena_cells: usize,
    /// Arena capacity cells released by the end-of-run compaction: on a
    /// sharded leg, the sum of every worker's [`PathArena::shrink`] after
    /// its engine is dropped in `ShardedEngine::finish` (without which the
    /// workers would exit still pinning `live ≈ peak` capacity — the
    /// shards-2/4 leak this column was added to witness); on a sequential
    /// leg, the main thread's shrink after the engine drops.
    pub arena_reclaimed_cells: usize,
    /// Topology events applied within the budget.
    pub topology_events: u64,
    /// Worker shards the leg ran on (0 = sequential engine).
    pub shards: usize,
    /// Simulation time when the run stopped — deterministic in
    /// `(n, seed, budget)`. Identical across all sharded shard counts
    /// (the budget check fires at K-invariant window barriers), which is
    /// the smoke gate's cross-shard determinism check; the sequential
    /// engine checks the budget per event and so stops slightly earlier.
    pub sim_end: f64,
}

impl ScaleResult {
    /// One JSON object literal (hand-rolled; the serde stand-in does not
    /// serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"n\": {}, \"landmarks\": {}, \"build_secs\": {:.3}, \
             \"events\": {}, \"announcements\": {}, \"engine_secs\": {:.3}, \
             \"events_per_sec\": {:.0}, \"announcements_per_sec\": {:.0}, \
             \"peak_arena_cells\": {}, \"live_arena_cells\": {}, \
             \"arena_reclaimed_cells\": {}, \
             \"topology_events\": {}, \"shards\": {}, \"sim_end\": {:.6} }}",
            self.n,
            self.landmarks,
            self.build_secs,
            self.events,
            self.announcements,
            self.engine_secs,
            self.events_per_sec,
            self.announcements_per_sec,
            self.peak_arena_cells,
            self.live_arena_cells,
            self.arena_reclaimed_cells,
            self.topology_events,
            self.shards,
            self.sim_end
        )
    }
}

/// Pre-refactor measurements `(n, events_per_sec, build_secs)` of the exact
/// same workload (seed 1, 3M-event budget) on the commit before the
/// timer-wheel + interned-path + incremental-selection refactor: BinaryHeap
/// event queue, `Vec<NodeId>` paths, O(table) cap scans. Every delivery was
/// a single event there, so events/sec *is* its announcements/sec.
pub const BASELINE_RESULTS: &[(usize, f64, f64)] =
    &[(1024, 306_468.0, 0.140), (4096, 127_948.0, 1.285)];

/// Provenance note stored next to [`BASELINE_RESULTS`] in the JSON report.
pub const BASELINE_NOTE: &str =
    "pre-refactor hot path (BinaryHeap queue, Vec<NodeId> paths, rescan selection) at seed 1, 3M-event budget";

/// Per-size `(n, events_per_sec)` of the recording made just before the
/// batched message plane landed (PR 4 sweep: per-message deliveries, so
/// every delivered announcement was one event and events/sec bounds its
/// announcements/sec from above). The batched plane's acceptance bar is
/// ≥1.5× the n=4096 number in *delivered announcements* per second.
pub const PRE_BATCH_RESULTS: &[(usize, f64)] =
    &[(1024, 988_069.0), (4096, 548_582.0), (16384, 438_285.0)];

/// Provenance note for [`PRE_BATCH_RESULTS`].
pub const PRE_BATCH_NOTE: &str =
    "pre-batching message plane (per-message wheel entries, O(degree) send resolution) at seed 1, 3M-event budget";

/// Run one leg: static parallel build, then the budgeted churn throughput
/// measurement. Deterministic in `(n, seed)` up to wall-clock numbers.
pub fn run_one(cfg: &ScaleConfig) -> ScaleResult {
    let graph = generators::gnm_average_degree(cfg.n, 8.0, cfg.seed);
    let dcfg = DiscoConfig::seeded(cfg.seed);

    let t0 = Instant::now();
    let st = DiscoState::build_parallel(&graph, &dcfg, cfg.build_threads);
    let build_secs = t0.elapsed().as_secs_f64();
    let landmarks_built = st.landmarks().len();
    drop(st);

    let landmarks = select_landmarks(cfg.n, &dcfg);
    let lm_set = landmark_set(&landmarks);
    let model = PoissonChurn {
        leave_rate_per_node: 0.0002,
        mean_downtime: 150.0,
        horizon: 300.0,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, cfg.seed);

    PathArena::reset_peak();
    let factory = |v: NodeId| {
        DiscoProtocol::new(v, lm_set.contains(&v), cfg.n, &dcfg, PhaseTimers::default())
    };

    fn drive<P: Protocol, Q: EventQueue<P::Message>, R: Recorder>(
        engine: &mut Engine<'_, P, Q, R>,
        budget: u64,
    ) -> (u64, u64, f64, u64, f64) {
        let t1 = Instant::now();
        engine.start();
        engine.run_until(|e| e.messages_delivered() >= budget);
        let secs = t1.elapsed().as_secs_f64();
        (
            engine.events_processed(),
            engine.messages_delivered(),
            secs,
            engine.topology_events(),
            engine.now(),
        )
    }

    if cfg.shards > 0 {
        assert!(
            cfg.trace.is_none() && !cfg.heap_queue,
            "--shards runs the wheel queue untraced"
        );
        let n = cfg.n;
        let factory_cfg = dcfg.clone();
        let factory = move |v: NodeId| {
            DiscoProtocol::new(
                v,
                lm_set.contains(&v),
                n,
                &factory_cfg,
                PhaseTimers::default(),
            )
        };
        let mut engine = ShardedEngine::new(&graph, cfg.shards, cfg.seed, factory);
        schedule
            .apply_to_sharded(&mut engine)
            .expect("churn re-adds only links of the original graph");
        let budget = cfg.announcement_budget;
        let t1 = Instant::now();
        engine.start();
        engine.run_until(|e| e.messages_delivered() >= budget);
        let engine_secs = t1.elapsed().as_secs_f64();
        // Path arenas are thread-local: each worker gauges its own; the sum
        // is the whole run's routing-state footprint.
        let (mut peak, mut live) = (0usize, 0usize);
        for shard in 0..engine.shards() {
            let st = engine.visit(shard, |_| PathArena::stats());
            peak += st.peak_live_cells;
            live += st.live_cells;
        }
        let events = engine.events_processed();
        let announcements = engine.messages_delivered();
        let topology_events = engine.topology_events();
        let sim_end = engine.now();
        // Shut the workers down properly: each drops its engine and
        // compacts its thread-local arena, so the run does not exit with
        // `live ≈ peak` capacity pinned per worker.
        let summary = engine.finish();
        return ScaleResult {
            n: cfg.n,
            landmarks: landmarks_built,
            build_secs,
            events,
            announcements,
            engine_secs,
            events_per_sec: events as f64 / engine_secs.max(1e-9),
            announcements_per_sec: announcements as f64 / engine_secs.max(1e-9),
            peak_arena_cells: peak,
            live_arena_cells: live,
            arena_reclaimed_cells: summary.arena_reclaimed_cells,
            topology_events,
            shards: cfg.shards,
            sim_end,
        };
    }

    let (events, announcements, engine_secs, topology_events, sim_end) = if let Some(path) =
        &cfg.trace
    {
        // Traced leg: full recorder, wheel queue. The throughput numbers of
        // a traced run include the recorder's overhead — the gate always
        // runs untraced (NoopRecorder, below).
        let mut rec = FullRecorder::new();
        rec.phase_begin(Phase::Build, 0.0);
        rec.phase_end(Phase::Build, 0.0); // static build happened above
        let mut engine = Engine::with_recorder(&graph, factory, TimerWheel::new(), rec);
        schedule.apply_to(&mut engine);
        engine.recorder_mut().phase_begin(Phase::Churn, 0.0);
        let out = drive(&mut engine, cfg.announcement_budget);
        let end = engine.now();
        engine.recorder_mut().phase_end(Phase::Churn, end);
        engine.recorder_mut().finish(end);
        let rec = engine.into_recorder();
        let json = rec.chrome_trace_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("trace written to {path} ({} bytes)", json.len());
        out
    } else if cfg.heap_queue {
        let mut engine = Engine::with_queue(&graph, factory, BinaryHeapQueue::new());
        schedule.apply_to(&mut engine);
        drive(&mut engine, cfg.announcement_budget)
    } else {
        let mut engine = Engine::with_recorder(&graph, factory, TimerWheel::new(), NoopRecorder);
        schedule.apply_to(&mut engine);
        drive(&mut engine, cfg.announcement_budget)
    };
    let arena = PathArena::stats();
    let arena_reclaimed_cells = PathArena::shrink();

    ScaleResult {
        n: cfg.n,
        landmarks: landmarks_built,
        build_secs,
        events,
        announcements,
        engine_secs,
        events_per_sec: events as f64 / engine_secs.max(1e-9),
        announcements_per_sec: announcements as f64 / engine_secs.max(1e-9),
        peak_arena_cells: arena.peak_live_cells,
        live_arena_cells: arena.live_cells,
        arena_reclaimed_cells,
        topology_events,
        shards: 0,
        sim_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke of the scale leg itself: it runs, counts announcements
    /// against the budget, and reports non-trivial arena usage.
    #[test]
    fn scale_leg_runs_within_budget() {
        let r = run_one(&ScaleConfig {
            n: 128,
            seed: 3,
            announcement_budget: 50_000,
            build_threads: 2,
            heap_queue: false,
            trace: None,
            shards: 0,
        });
        assert_eq!(r.n, 128);
        assert!(r.landmarks > 0);
        assert!(
            r.announcements >= 50_000,
            "budget not reached: {}",
            r.announcements
        );
        assert!(r.events > 0 && r.events < r.announcements + 50_000);
        assert!(r.peak_arena_cells > 0);
        assert!(r.build_secs >= 0.0 && r.engine_secs > 0.0);
        let j = r.to_json();
        assert!(j.contains("\"announcements_per_sec\""));
    }

    /// The heap-queue leg must process the identical event stream (same
    /// event and announcement counts for the same budget — determinism
    /// across queues).
    #[test]
    fn heap_and_wheel_legs_agree_on_event_count() {
        let mk = |heap| ScaleConfig {
            n: 96,
            seed: 5,
            announcement_budget: 40_000,
            build_threads: 1,
            heap_queue: heap,
            trace: None,
            shards: 0,
        };
        let a = run_one(&mk(false));
        let b = run_one(&mk(true));
        assert_eq!(a.events, b.events);
        assert_eq!(a.announcements, b.announcements);
        assert_eq!(a.topology_events, b.topology_events);
    }

    /// The sharded leg's budget stop is shard-count-invariant: delivered
    /// announcements, topology events and the simulation end time agree
    /// across shard counts (the `--shards K --smoke` gate's contract).
    #[test]
    fn sharded_legs_agree_across_shard_counts() {
        let mk = |shards| ScaleConfig {
            n: 96,
            seed: 5,
            announcement_budget: 40_000,
            build_threads: 1,
            heap_queue: false,
            trace: None,
            shards,
        };
        let a = run_one(&mk(1));
        let b = run_one(&mk(2));
        assert_eq!(a.announcements, b.announcements);
        assert_eq!(a.topology_events, b.topology_events);
        assert_eq!(a.sim_end, b.sim_end);
        assert!(a.announcements >= 40_000);
        // The workers' end-of-run compaction released the churn peak: the
        // run's live cells were freed by the engine drop, and shrink gave
        // the capacity back instead of leaving `live ≈ peak` pinned.
        assert!(
            a.arena_reclaimed_cells >= a.live_arena_cells / 2,
            "worker arenas not compacted: reclaimed {} of {} live",
            a.arena_reclaimed_cells,
            a.live_arena_cells
        );
        assert!(b.arena_reclaimed_cells >= b.live_arena_cells / 2);
    }
}
