//! The `exp_scale` workload: hot-path throughput and memory gauges at one
//! network size.
//!
//! The measured leg is the distributed Disco protocol booting *under* a
//! Poisson churn schedule, capped at a fixed event budget so the cost of a
//! measurement is independent of `n` — what varies with `n` is the
//! per-event cost (routing-table size, candidate-set size, queue
//! residency), which is exactly what the events/sec number tracks. The
//! static-build timing exercises `DiscoState::build_parallel` with the
//! `threads` knob.

use disco_core::config::DiscoConfig;
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_core::static_state::DiscoState;
use disco_dynamics::models::PoissonChurn;
use disco_graph::{generators, NodeId, PathArena};
use disco_sim::{BinaryHeapQueue, Engine};
use std::time::Instant;

/// Parameters of one `exp_scale` leg.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Network size.
    pub n: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Engine event budget for the throughput leg.
    pub event_budget: u64,
    /// Worker threads for the static build (0 = one per CPU).
    pub build_threads: usize,
    /// Use the legacy `BinaryHeap` event queue instead of the timer wheel
    /// (for queue-only comparisons).
    pub heap_queue: bool,
}

/// Measurements of one `exp_scale` leg.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Network size.
    pub n: usize,
    /// Landmarks elected at this size.
    pub landmarks: usize,
    /// Wall time of `DiscoState::build_parallel`.
    pub build_secs: f64,
    /// Engine events processed in the throughput leg.
    pub events: u64,
    /// Wall time of the throughput leg.
    pub engine_secs: f64,
    /// The headline number.
    pub events_per_sec: f64,
    /// Peak live path-arena cells during the run (allocation gauge — the
    /// RSS proxy for routing state).
    pub peak_arena_cells: usize,
    /// Live path-arena cells at the end of the run.
    pub live_arena_cells: usize,
    /// Topology events applied within the budget.
    pub topology_events: u64,
}

impl ScaleResult {
    /// One JSON object literal (hand-rolled; the serde stand-in does not
    /// serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"n\": {}, \"landmarks\": {}, \"build_secs\": {:.3}, \
             \"events\": {}, \"engine_secs\": {:.3}, \"events_per_sec\": {:.0}, \
             \"peak_arena_cells\": {}, \"live_arena_cells\": {}, \
             \"topology_events\": {} }}",
            self.n,
            self.landmarks,
            self.build_secs,
            self.events,
            self.engine_secs,
            self.events_per_sec,
            self.peak_arena_cells,
            self.live_arena_cells,
            self.topology_events
        )
    }
}

/// Pre-refactor measurements `(n, events_per_sec, build_secs)` of the exact
/// same workload (seed 1, 3M-event budget) on the commit before the
/// timer-wheel + interned-path + incremental-selection refactor: BinaryHeap
/// event queue, `Vec<NodeId>` paths, O(table) cap scans. The acceptance
/// bar for the refactor is ≥3× the n=4096 number.
pub const BASELINE_RESULTS: &[(usize, f64, f64)] =
    &[(1024, 306_468.0, 0.140), (4096, 127_948.0, 1.285)];

/// Provenance note stored next to [`BASELINE_RESULTS`] in the JSON report.
pub const BASELINE_NOTE: &str =
    "pre-refactor hot path (BinaryHeap queue, Vec<NodeId> paths, rescan selection) at seed 1, 3M-event budget";

/// Run one leg: static parallel build, then the budgeted churn throughput
/// measurement. Deterministic in `(n, seed)` up to wall-clock numbers.
pub fn run_one(cfg: &ScaleConfig) -> ScaleResult {
    let graph = generators::gnm_average_degree(cfg.n, 8.0, cfg.seed);
    let dcfg = DiscoConfig::seeded(cfg.seed);

    let t0 = Instant::now();
    let st = DiscoState::build_parallel(&graph, &dcfg, cfg.build_threads);
    let build_secs = t0.elapsed().as_secs_f64();
    let landmarks_built = st.landmarks().len();
    drop(st);

    let landmarks = select_landmarks(cfg.n, &dcfg);
    let lm_set = landmark_set(&landmarks);
    let model = PoissonChurn {
        leave_rate_per_node: 0.0002,
        mean_downtime: 150.0,
        horizon: 300.0,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, cfg.seed);

    PathArena::reset_peak();
    let factory = |v: NodeId| {
        DiscoProtocol::new(v, lm_set.contains(&v), cfg.n, &dcfg, PhaseTimers::default())
    };
    let (events, engine_secs, topology_events) = if cfg.heap_queue {
        let mut engine = Engine::with_queue(&graph, factory, BinaryHeapQueue::new());
        engine.max_events = cfg.event_budget;
        schedule.apply_to(&mut engine);
        let t1 = Instant::now();
        let report = engine.run();
        (
            report.events_processed,
            t1.elapsed().as_secs_f64(),
            report.topology_events,
        )
    } else {
        let mut engine = Engine::new(&graph, factory);
        engine.max_events = cfg.event_budget;
        schedule.apply_to(&mut engine);
        let t1 = Instant::now();
        let report = engine.run();
        (
            report.events_processed,
            t1.elapsed().as_secs_f64(),
            report.topology_events,
        )
    };
    let arena = PathArena::stats();

    ScaleResult {
        n: cfg.n,
        landmarks: landmarks_built,
        build_secs,
        events,
        engine_secs,
        events_per_sec: events as f64 / engine_secs.max(1e-9),
        peak_arena_cells: arena.peak_live_cells,
        live_arena_cells: arena.live_cells,
        topology_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke of the scale leg itself: it runs, counts events against
    /// the budget, and reports non-trivial arena usage.
    #[test]
    fn scale_leg_runs_within_budget() {
        let r = run_one(&ScaleConfig {
            n: 128,
            seed: 3,
            event_budget: 50_000,
            build_threads: 2,
            heap_queue: false,
        });
        assert_eq!(r.n, 128);
        assert!(r.landmarks > 0);
        assert!(r.events <= 50_000);
        assert!(r.events > 10_000, "expected real work, got {}", r.events);
        assert!(r.peak_arena_cells > 0);
        assert!(r.build_secs >= 0.0 && r.engine_secs > 0.0);
        let j = r.to_json();
        assert!(j.contains("\"events_per_sec\""));
    }

    /// The heap-queue leg must process the identical event stream (same
    /// event count for the same budget — determinism across queues).
    #[test]
    fn heap_and_wheel_legs_agree_on_event_count() {
        let mk = |heap| ScaleConfig {
            n: 96,
            seed: 5,
            event_budget: 40_000,
            build_threads: 1,
            heap_queue: heap,
        };
        let a = run_one(&mk(false));
        let b = run_one(&mk(true));
        assert_eq!(a.events, b.events);
        assert_eq!(a.topology_events, b.topology_events);
    }
}
