//! Fig. 10 — Congestion CDF on the AS-level topology: Disco vs path-vector
//! vs S4 (each node routes to one random destination).

use disco_bench::CommonArgs;
use disco_metrics::experiment::congestion_comparison;
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(8192);
    let cg = congestion_comparison(Topology::AsLevel, &args.params(), false);
    let dc = cg.disco.cdf();
    let pc = cg.path_vector.cdf();
    let sc = cg.s4.cdf();
    let series = [("Disco", &dc), ("Path Vector", &pc), ("S4", &sc)];
    println!(
        "{}",
        report::render_summary(
            &format!(
                "Fig. 10 — congestion on the AS-level topology, n={}",
                cg.nodes
            ),
            &series
        )
    );
    println!(
        "{}",
        report::render_cdf_series("CDF over edges", &series, args.points)
    );
    println!(
        "# fraction of edges loaded more than 4x the shortest-path maximum: Disco {:.5}, S4 {:.5}",
        cg.disco.fraction_above(cg.path_vector.max() * 4),
        cg.s4.fraction_above(cg.path_vector.max() * 4)
    );
}
