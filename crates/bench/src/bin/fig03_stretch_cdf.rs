//! Fig. 3 — Stretch CDF (first and later packets) for Disco and S4 on the
//! geometric, AS-level and router-level topologies.

use disco_bench::CommonArgs;
use disco_metrics::experiment::stretch_comparison;
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(8192);
    for topology in [
        Topology::Geometric,
        Topology::AsLevel,
        Topology::RouterLevel,
    ] {
        let cmp = stretch_comparison(topology, &args.params(), false);
        let df = cmp.disco.first_cdf();
        let dl = cmp.disco.later_cdf();
        let sf = cmp.s4.first_cdf();
        let sl = cmp.s4.later_cdf();
        let series = [
            ("Disco-First", &df),
            ("Disco-Later", &dl),
            ("S4-First", &sf),
            ("S4-Later", &sl),
        ];
        println!(
            "{}",
            report::render_summary(
                &format!("Fig. 3 — path stretch, {topology}, n={}", cmp.nodes),
                &series
            )
        );
        println!(
            "{}",
            report::render_cdf_series("CDF over src-dest pairs", &series, args.points)
        );
    }
}
