//! Memory-instrumented churn scaling sweep: control state (path-vector
//! candidates, RIB bytes, arena cells) and peak RSS across an
//! `n × churn-rate × {full, forgetful}` grid, charted against the paper's
//! `√(n ln n)` per-node state bound (§4.2).
//!
//! Peak RSS (`VmHWM`) is a process-wide high-water mark, so the sweep
//! re-executes this binary once per leg (`--leg ...`) and each child owns
//! a fresh address space; the parent parses the children's key=value
//! lines, prints the grid table, and writes `BENCH_exp_memory.json`.
//!
//! ```text
//! --sizes a,b,c        sweep sizes (default 512,1024,2048,4096)
//! --rates a,b          leave rates (default 0.0002)
//! --seed S             experiment seed (default 1)
//! --horizon T          churn-window length (default 500)
//! --json PATH          write the JSON report to PATH
//! --in-process         run legs in-process (no RSS isolation; CI-friendly)
//! --trace PATH         run one in-process leg (first size/rate, forgetful)
//!                      with full telemetry and export a Chrome trace_event
//!                      timeline of its build/boot/churn/drain phases
//! --smoke              gate: one forgetful leg at n=512 under high churn,
//!                      asserting candidates/node stays under the
//!                      configured bound; exits non-zero on violation
//! --shards K           run legs on the sharded engine with K workers
//!                      (default 0 = sequential; protocol-visible numbers
//!                      are shard-count invariant, arena gauges sum the
//!                      workers' thread-local arenas)
//! --leg k=v ...        (internal) run one leg and print its key=value line
//! ```
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_memory`

use disco_bench::memory::{
    candidate_bound, control_bytes_per_dest_bound, run_leg, run_leg_traced, sqrt_n_log_n,
    MemoryParams, MemoryResult,
};
use std::fmt::Write as _;
use std::process::Command;

struct Args {
    sizes: Vec<usize>,
    rates: Vec<f64>,
    seed: u64,
    horizon: f64,
    json: Option<String>,
    in_process: bool,
    smoke: bool,
    trace: Option<String>,
    leg: Option<MemoryParams>,
    shards: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        sizes: vec![512, 1024, 2048, 4096],
        rates: vec![0.0002],
        seed: 1,
        horizon: 500.0,
        json: Some("BENCH_exp_memory.json".to_string()),
        in_process: false,
        smoke: false,
        trace: None,
        leg: None,
        shards: 0,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--sizes" => {
                out.sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect();
            }
            "--rates" => {
                out.rates = value("--rates")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rates"))
                    .collect();
            }
            "--seed" | "-s" => out.seed = value("--seed").parse().expect("--seed"),
            "--horizon" => out.horizon = value("--horizon").parse().expect("--horizon"),
            "--json" => out.json = Some(value("--json")),
            "--in-process" => out.in_process = true,
            "--smoke" => out.smoke = true,
            "--trace" => out.trace = Some(value("--trace")),
            "--shards" => out.shards = value("--shards").parse().expect("--shards"),
            "--leg" => {
                // Internal: --leg n=4096 rate=0.0002 forgetful=1 seed=1 horizon=500
                let mut p = MemoryParams::grid_point(512, 1, 0.0002, false);
                for kv in it.by_ref() {
                    let (k, v) = kv.split_once('=').expect("--leg takes k=v pairs");
                    match k {
                        "n" => p.n = v.parse().expect("leg n"),
                        "rate" => p.leave_rate_per_node = v.parse().expect("leg rate"),
                        "forgetful" => p.forgetful = v == "1",
                        "seed" => p.seed = v.parse().expect("leg seed"),
                        "horizon" => p.horizon = v.parse().expect("leg horizon"),
                        "shards" => p.shards = v.parse().expect("leg shards"),
                        other => panic!("unknown leg key {other}"),
                    }
                }
                out.leg = Some(p);
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --sizes a,b,c --rates a,b --seed S --horizon T --json PATH \
                     --in-process --smoke --trace PATH --shards K"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn run_child(
    n: usize,
    rate: f64,
    forgetful: bool,
    seed: u64,
    horizon: f64,
    shards: usize,
) -> MemoryResult {
    let exe = std::env::current_exe().expect("current_exe");
    let output = Command::new(exe)
        .args([
            "--leg",
            &format!("n={n}"),
            &format!("rate={rate}"),
            &format!("forgetful={}", forgetful as u8),
            &format!("seed={seed}"),
            &format!("horizon={horizon}"),
            &format!("shards={shards}"),
        ])
        .output()
        .expect("spawn leg");
    assert!(
        output.status.success(),
        "leg n={n} rate={rate} forgetful={forgetful} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .find_map(MemoryResult::from_kv_line)
        .unwrap_or_else(|| panic!("no MEMLEG line in leg output:\n{stdout}"))
}

fn render_json(args: &Args, results: &[MemoryResult]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"exp_memory\",");
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"horizon\": {},", args.horizon);
    let _ = writeln!(
        j,
        "  \"note\": \"control state under churn vs sqrt(n ln n); peak_rss_mb is per-leg \
         (child process) VmHWM with the watermark reset after the boot flood; \
         non_rib_bytes_mean splits into loc-rib view + dissemination + arena intern-table \
         share, and non_rib_reduction prices the same live contents under the PR 3 \
         layouts (materialized Loc-RIB map, hash-map intern table, std dissemination \
         maps); acceptance: >=1.5x non-RIB reduction and >=1.3x peak-RSS reduction at \
         n=4096 vs the PR 3 numbers\","
    );
    // Headline acceptance numbers, if the grid contains the 4096 pair.
    let find = |n: usize, rate: f64, forgetful: bool| {
        results
            .iter()
            .find(|r| r.n == n && r.leave_rate == rate && r.forgetful == forgetful)
    };
    if let (Some(full), Some(slim)) = (
        find(4096, args.rates[0], false),
        find(4096, args.rates[0], true),
    ) {
        if full.peak_rss_bytes > 0 && slim.peak_rss_bytes > 0 {
            let _ = writeln!(
                j,
                "  \"rss_reduction_n4096\": {:.2},",
                full.peak_rss_bytes as f64 / slim.peak_rss_bytes as f64
            );
        }
        let _ = writeln!(
            j,
            "  \"availability_delta_n4096\": {:.4},",
            (full.availability - slim.availability).abs()
        );
        let _ = writeln!(
            j,
            "  \"candidate_reduction_n4096\": {:.2},",
            full.cand_mean / slim.cand_mean.max(1.0)
        );
        let _ = writeln!(
            j,
            "  \"non_rib_reduction_n4096_full\": {:.2},",
            full.non_rib_reduction
        );
        let _ = writeln!(
            j,
            "  \"non_rib_reduction_n4096_forgetful\": {:.2},",
            slim.non_rib_reduction
        );
    }
    let _ = writeln!(j, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(j, "    {}{comma}", r.to_json());
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let args = parse_args();

    // Child mode: run exactly one leg and emit its key=value line.
    if let Some(p) = &args.leg {
        let r = run_leg(p);
        println!("{}", r.to_kv_line());
        return;
    }

    // Smoke mode: one in-process forgetful leg at n=512 under heavy churn.
    // Two gated quantities: candidates/node vs the √(n ln n) bound, and
    // non-RIB control bytes per interned destination — so a regression
    // that re-materializes per-destination state (a Loc-RIB map, a fatter
    // selection column) fails CI even while candidate counts stay flat.
    if args.smoke {
        let mut p = MemoryParams::grid_point(512, args.seed, 0.001, true);
        p.horizon = 300.0;
        p.shards = args.shards;
        let r = run_leg(&p);
        let bound = candidate_bound(512, p.alternates);
        let per_dest = r.non_rib_bytes_mean / r.dests_mean.max(1.0);
        let per_dest_bound = control_bytes_per_dest_bound();
        println!(
            "smoke: n=512 churn rate=0.001 candidates/node mean {:.1} (max {}) vs bound {:.1}; \
             availability {:.4}; non-RIB control bytes/dest {:.1} vs bound {:.1} \
             (loc-rib {:.0} + dissem {:.0} + intern-share {:.0} B/node over {:.1} dests, \
             legacy layout {:.0} B/node = {:.2}x)",
            r.cand_mean,
            r.cand_max,
            bound,
            r.availability,
            per_dest,
            per_dest_bound,
            r.loc_rib_bytes_mean,
            r.dissem_bytes_mean,
            r.non_rib_bytes_mean - r.loc_rib_bytes_mean - r.dissem_bytes_mean,
            r.dests_mean,
            r.legacy_non_rib_bytes_mean,
            r.non_rib_reduction,
        );
        if r.cand_mean > bound {
            eprintln!(
                "smoke FAIL: mean candidates/node {:.1} exceeds the configured bound {:.1}",
                r.cand_mean, bound
            );
            std::process::exit(1);
        }
        if per_dest > per_dest_bound {
            eprintln!(
                "smoke FAIL: non-RIB control bytes per destination {per_dest:.1} exceeds the \
                 configured bound {per_dest_bound:.1} — per-destination state re-materialized?"
            );
            std::process::exit(1);
        }
        if !r.quiesced || r.availability < 0.9 {
            eprintln!(
                "smoke FAIL: quiesced={} availability={:.4}",
                r.quiesced, r.availability
            );
            std::process::exit(1);
        }
        eprintln!("smoke OK");
        return;
    }

    // Trace mode: one in-process leg with the full recorder, exporting a
    // phase-span timeline. Traced numbers include the recorder overhead
    // and are not comparable to the sweep's, so this mode stands alone.
    if let Some(path) = &args.trace {
        let mut p = MemoryParams::grid_point(args.sizes[0], args.seed, args.rates[0], true);
        p.horizon = args.horizon;
        let r = run_leg_traced(&p, path);
        println!(
            "traced leg: n={} rate={} forgetful=true availability={:.4} quiesced={}",
            r.n, r.leave_rate, r.availability, r.quiesced
        );
        return;
    }

    println!(
        "{:>6} {:>8} {:>10} {:>11} {:>9} {:>11} {:>10} {:>9} {:>9} {:>12} {:>10} {:>8}",
        "n",
        "rate",
        "forgetful",
        "cands/node",
        "√(nlnn)",
        "rib_kb/node",
        "nonrib_kb",
        "x-legacy",
        "peak_mb",
        "avail",
        "repair/n",
        "secs"
    );
    let mut results = Vec::new();
    for &n in &args.sizes {
        for &rate in &args.rates {
            for forgetful in [false, true] {
                let r = if args.in_process {
                    let mut p = MemoryParams::grid_point(n, args.seed, rate, forgetful);
                    p.horizon = args.horizon;
                    p.shards = args.shards;
                    run_leg(&p)
                } else {
                    run_child(n, rate, forgetful, args.seed, args.horizon, args.shards)
                };
                println!(
                    "{:>6} {:>8} {:>10} {:>11.1} {:>9.1} {:>11.1} {:>10.1} {:>9.2} {:>9.1} {:>12.4} {:>10.1} {:>8.1}",
                    r.n,
                    r.leave_rate,
                    r.forgetful,
                    r.cand_mean,
                    sqrt_n_log_n(r.n),
                    r.rib_bytes_mean / 1024.0,
                    r.non_rib_bytes_mean / 1024.0,
                    r.non_rib_reduction,
                    r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                    r.availability,
                    r.repair_msgs_per_node,
                    r.wall_secs
                );
                results.push(r);
            }
        }
    }

    if let Some(path) = &args.json {
        std::fs::write(path, render_json(&args, &results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
