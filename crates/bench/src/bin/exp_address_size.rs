//! §4.2 — Size of the compact explicit-route encoding on the router-level
//! topology (paper: mean 2.93 B, 95th percentile 5 B, max 10.6 B).

use disco_bench::CommonArgs;
use disco_metrics::experiment::address_size_experiment;
use disco_metrics::Topology;

fn main() {
    let args = CommonArgs::parse(16384);
    let stats = address_size_experiment(Topology::RouterLevel, &args.params());
    println!(
        "# §4.2 — explicit-route size on the router-level topology (n={})",
        args.nodes
    );
    println!("mean bytes:           {:.3}", stats.mean_bytes);
    println!("95th percentile bytes: {:.3}", stats.p95_bytes);
    println!("max bytes:            {:.3}", stats.max_bytes);
    println!(
        "mean address bytes (IPv4 landmark id + route): {:.3}",
        stats.mean_address_bytes_v4
    );
}
