//! Fig. 6 — Mean first-packet stretch for each shortcutting heuristic on
//! the AS-level, router-level, geometric and G(n,m) topologies.

use disco_bench::CommonArgs;
use disco_metrics::experiment::shortcut_sweep;
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(4096);
    let params = args.params();
    let topologies = [
        Topology::AsLevel,
        Topology::RouterLevel,
        Topology::Geometric,
        Topology::Gnm,
    ];
    let rows_data: Vec<_> = topologies
        .iter()
        .map(|&t| shortcut_sweep(t, &params))
        .collect();

    let mut headers: Vec<&str> = vec!["Heuristic"];
    for t in &topologies {
        headers.push(t.label());
    }
    let mut rows = Vec::new();
    for (i, (mode, _)) in rows_data[0].means.iter().enumerate() {
        let mut row = vec![mode.paper_label().to_string()];
        for data in &rows_data {
            row.push(report::fmt3(data.means[i].1));
        }
        rows.push(row);
    }
    println!(
        "{}",
        report::render_table(
            &format!(
                "Fig. 6 — mean stretch per shortcutting heuristic (n={})",
                args.nodes
            ),
            &headers,
            &rows
        )
    );
}
