//! Fig. 9 — Mean stretch (left) and mean state (right) for Disco, NDDisco
//! and S4 on geometric random graphs of increasing size.

use disco_bench::CommonArgs;
use disco_metrics::experiment::scaling_point;
use disco_metrics::report;

fn main() {
    let args = CommonArgs::parse(16384);
    let sizes: Vec<usize> = [2048usize, 4096, 8192, 12288, 16384]
        .into_iter()
        .filter(|&s| s <= args.nodes)
        .collect();
    let mut stretch_rows = Vec::new();
    let mut state_rows = Vec::new();
    for &n in &sizes {
        let p = scaling_point(n, args.seed);
        stretch_rows.push(vec![
            n.to_string(),
            report::fmt3(p.disco_first),
            report::fmt3(p.disco_later),
            report::fmt3(p.s4_first),
            report::fmt3(p.s4_later),
        ]);
        state_rows.push(vec![
            n.to_string(),
            report::fmt3(p.disco_state),
            report::fmt3(p.nddisco_state),
            report::fmt3(p.s4_state),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            "Fig. 9 (left) — mean path stretch vs n (geometric graphs)",
            &[
                "nodes",
                "Disco First",
                "Disco Later",
                "S4 First",
                "S4 Later"
            ],
            &stretch_rows
        )
    );
    println!(
        "{}",
        report::render_table(
            "Fig. 9 (right) — mean state (entries) vs n",
            &["nodes", "Disco", "ND-Disco", "S4"],
            &state_rows
        )
    );
}
