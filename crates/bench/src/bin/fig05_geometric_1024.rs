//! Fig. 5 — State, stretch and congestion on a 1,024-node geometric random
//! graph with link latencies, including VRR and path-vector routing.

use disco_bench::CommonArgs;
use disco_metrics::experiment::{congestion_comparison, state_comparison, stretch_comparison};
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(1024);
    let params = args.params();
    let topology = Topology::Geometric;

    let st = state_comparison(topology, &params, true);
    let d = st.disco.cdf();
    let nd = st.nddisco.cdf();
    let s4 = st.s4.cdf();
    let vrr = st.vrr.as_ref().unwrap().cdf();
    println!(
        "{}",
        report::render_summary(
            &format!("Fig. 5 (left) — state, {topology}, n={}", st.nodes),
            &[("Disco", &d), ("ND-Disco", &nd), ("S4", &s4), ("VRR", &vrr)]
        )
    );

    let sr = stretch_comparison(topology, &params, true);
    let df = sr.disco.first_cdf();
    let dl = sr.disco.later_cdf();
    let sf = sr.s4.first_cdf();
    let sl = sr.s4.later_cdf();
    let vs = sr.vrr.as_ref().unwrap().first_cdf();
    println!(
        "{}",
        report::render_summary(
            "Fig. 5 (middle) — stretch (latency-weighted)",
            &[
                ("Disco First", &df),
                ("Disco Later", &dl),
                ("S4 First", &sf),
                ("S4 Later", &sl),
                ("VRR", &vs),
            ]
        )
    );

    let cg = congestion_comparison(topology, &params, true);
    let dc = cg.disco.cdf();
    let pc = cg.path_vector.cdf();
    let sc = cg.s4.cdf();
    let vc = cg.vrr.as_ref().unwrap().cdf();
    println!(
        "{}",
        report::render_summary(
            "Fig. 5 (right) — congestion (paths per edge)",
            &[
                ("Disco", &dc),
                ("Path-vector", &pc),
                ("S4", &sc),
                ("VRR", &vc)
            ]
        )
    );
}
