//! §5.2 — Accuracy of the static simulator: mean later-packet stretch over
//! the static post-convergence state vs the discrete-event protocol's
//! converged tables (paper: within ~1%).

use disco_bench::CommonArgs;
use disco_metrics::experiment::static_accuracy_experiment;

fn main() {
    let args = CommonArgs::parse(1024);
    let out = static_accuracy_experiment(&args.params());
    println!(
        "# §5.2 — static vs discrete-event simulation (G(n,m), n={})",
        args.nodes
    );
    println!(
        "static simulator mean later-packet stretch: {:.4}",
        out.static_mean_stretch
    );
    println!(
        "event-driven protocol mean later-packet stretch: {:.4}",
        out.event_mean_stretch
    );
    println!(
        "relative difference: {:.3}%",
        out.relative_difference * 100.0
    );
}
