//! Fig. 7 — State at a node in entries and kilobytes (IPv4- and IPv6-sized
//! identifiers) for S4, ND-Disco and Disco on the router-level topology.

use disco_bench::CommonArgs;
use disco_metrics::experiment::state_bytes_table;
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(8192);
    let rows = state_bytes_table(Topology::RouterLevel, &args.params());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.to_string(),
                report::fmt3(r.mean_entries),
                report::fmt3(r.max_entries),
                report::fmt3(r.mean_kb_v4),
                report::fmt3(r.max_kb_v4),
                report::fmt3(r.mean_kb_v6),
                report::fmt3(r.max_kb_v6),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &format!(
                "Fig. 7 — state at a node, router-level topology, n={}",
                args.nodes
            ),
            &[
                "Protocol",
                "Entries mean",
                "Entries max",
                "KB(IPv4) mean",
                "KB(IPv4) max",
                "KB(IPv6) mean",
                "KB(IPv6) max",
            ],
            &table
        )
    );
}
