//! §5.2 — Error in estimating the number of nodes: inject up to 40% / 60%
//! random error into every node's estimate of n and measure reachability
//! (resolution-database fallbacks) and mean first-packet stretch.

use disco_bench::CommonArgs;
use disco_metrics::experiment::estimation_error_experiment;
use disco_metrics::report;

fn main() {
    let args = CommonArgs::parse(1024);
    let params = args.params();
    let rows: Vec<Vec<String>> = [0.0, 0.2, 0.4, 0.6]
        .iter()
        .map(|&e| {
            let out = estimation_error_experiment(&params, e);
            vec![
                format!("{:.0}%", e * 100.0),
                format!("{}/{}", out.fallback_pairs, out.total_pairs),
                report::fmt3(out.mean_first_stretch),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &format!("§5.2 — error in estimating n (G(n,m), n={})", args.nodes),
            &[
                "injected error",
                "fallback pairs",
                "mean first-packet stretch"
            ],
            &rows
        )
    );
}
