//! §4.4 — Overlay dissemination hop counts with 1 vs 3 fingers
//! (paper, 1,024-node G(n,m): mean 5.77 / max 24 with 1 finger,
//! mean 3.04 / max 16 with 3 fingers).

use disco_bench::CommonArgs;
use disco_metrics::experiment::overlay_hops_experiment;
use disco_metrics::report;

fn main() {
    let args = CommonArgs::parse(1024);
    let params = args.params();
    let rows: Vec<Vec<String>> = [1usize, 3]
        .iter()
        .map(|&f| {
            let out = overlay_hops_experiment(&params, f);
            vec![
                f.to_string(),
                report::fmt3(out.mean_hops),
                out.max_hops.to_string(),
                report::fmt3(out.mean_messages),
                format!("{:.4}", out.coverage),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &format!(
                "§4.4 — address dissemination over the overlay (n={})",
                args.nodes
            ),
            &[
                "fingers",
                "mean hops",
                "max hops",
                "mean messages/announcement",
                "coverage"
            ],
            &rows
        )
    );
}
