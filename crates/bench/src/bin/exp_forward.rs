//! Data-plane traffic benchmark: batched flat-name lookups through
//! compiled forwarding tables while the protocol boots, churns and drains
//! underneath. Each node's RIB selection is compiled into a flat
//! [`disco_core::forward::ForwardingTable`] behind an epoch-stamped
//! double-buffer; checkpoints republish (debounced on the control
//! revision), sample Zipf+uniform flows over the live nodes and walk every
//! packet hop-by-hop through the *published* epochs. Reported per phase:
//! lookups/sec (headline), mean hop stretch vs BFS shortest paths, p50/p99
//! per-lookup latency, and packets lost to stale epochs — which must be
//! **zero** after the drain.
//!
//! ```text
//! --nodes N             network size (default 4096)
//! --seed S              experiment seed (default 1)
//! --flows F             flows per checkpoint (default 4096)
//! --debounce T          republish debounce in sim-time units (default 5)
//! --shards K            run on the sharded engine with K worker shards
//!                       (default 0 = sequential; tables compile on their
//!                       owner shards and ship to the coordinator)
//! --dynamic-n           run the live synopsis-diffusion n-estimation
//!                       gossip too (exp_churn's subject; dominates
//!                       control cost ~70x at n=512 and does not change
//!                       the data plane being measured — off by default)
//! --json PATH           write the JSON report to PATH
//! --trace PATH          export the run as a Chrome trace_event timeline
//!                       with the delivered-lookups data-plane track
//!                       (sequential legs only)
//! --smoke [BASELINE]    n=256 regression gate: lookups/sec must clear
//!                       both 1M/sec and the `min_lookups_per_sec` floor
//!                       recorded in BASELINE (default
//!                       BENCH_exp_forward.json), the drain batch must
//!                       lose zero packets to stale epochs, and the trace
//!                       export must validate as JSON. With --shards K it
//!                       instead re-runs sequentially and requires every
//!                       deterministic column to match bit-for-bit.
//! ```
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_forward`

use disco_bench::forward::{run_one, ForwardConfig, ForwardResult};
use std::fmt::Write as _;

struct Args {
    nodes: usize,
    seed: u64,
    flows: usize,
    debounce: f64,
    shards: usize,
    json: Option<String>,
    trace: Option<String>,
    smoke: Option<String>,
    dynamic_n: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        nodes: 4096,
        seed: 1,
        flows: 4096,
        debounce: 5.0,
        shards: 0,
        json: None,
        trace: None,
        smoke: None,
        dynamic_n: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--nodes" | "-n" => out.nodes = value("--nodes").parse().expect("--nodes"),
            "--seed" | "-s" => out.seed = value("--seed").parse().expect("--seed"),
            "--flows" => out.flows = value("--flows").parse().expect("--flows"),
            "--debounce" => out.debounce = value("--debounce").parse().expect("--debounce"),
            "--shards" => out.shards = value("--shards").parse().expect("--shards"),
            "--dynamic-n" => out.dynamic_n = true,
            "--json" => out.json = Some(value("--json")),
            "--trace" => out.trace = Some(value("--trace")),
            "--smoke" => {
                out.nodes = 256;
                out.flows = out.flows.min(2048);
                out.smoke = Some("BENCH_exp_forward.json".to_string());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --nodes N --seed S --flows F --debounce T --shards K \
                     --dynamic-n --json PATH --trace PATH --smoke"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn render_json(args: &Args, result: &ForwardResult) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"exp_forward\",");
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"flows\": {},", args.flows);
    let _ = writeln!(j, "  \"debounce\": {},", args.debounce);
    let _ = writeln!(j, "  \"dynamic_n\": {},", args.dynamic_n);
    // The smoke gate: half the slowest phase's measured lookup rate,
    // rounded down — CI fails an exp_forward --smoke run that regresses
    // lookups/sec by >50% (the data plane is wall-clock noisier than the
    // control plane: each checkpoint's timed batch is only a few ms).
    let _ = writeln!(
        j,
        "  \"min_lookups_per_sec\": {},",
        (result.min_phase_lookups_per_sec() * 0.5) as u64
    );
    let _ = writeln!(j, "  \"results\": [");
    let _ = writeln!(j, "    {}", result.to_json());
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn print_table(r: &ForwardResult) {
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>6} {:>6} {:>7} {:>13} {:>8} {:>8} {:>7} {:>7} {:>6}",
        "phase",
        "walks",
        "delivered",
        "stale",
        "miss",
        "unrch",
        "hops",
        "lookups/sec",
        "stretch",
        "p50_ns",
        "p99_ns",
        "repubs",
        "ckpts"
    );
    for p in [&r.boot, &r.churn, &r.drain] {
        println!(
            "{:>6} {:>6} {:>9} {:>9} {:>6} {:>6} {:>7.2} {:>13.0} {:>8.3} {:>8} {:>7} {:>7} {:>6}",
            p.phase,
            p.walks,
            p.delivered,
            p.stale_loss,
            p.miss,
            p.unreachable,
            p.mean_hops(),
            p.lookups_per_sec,
            p.mean_stretch(),
            p.p50_ns,
            p.p99_ns,
            p.republishes,
            p.checkpoints
        );
    }
    eprintln!(
        "n={} shards={} landmarks={} table_entries={} table_bytes={} \
         (hash-map FIB would pay {}, {:.1}x) sim_end={:.1}",
        r.n,
        r.shards,
        r.landmarks,
        r.table_entries,
        r.table_bytes,
        r.hash_fib_bytes,
        r.hash_fib_bytes as f64 / (r.table_bytes as f64).max(1.0),
        r.sim_end
    );
}

/// Sequential smoke gates: the recorded + absolute lookups/sec floors,
/// zero stale loss after drain, and a validating trace export.
fn smoke_sequential(args: &Args, r: &ForwardResult, trace_path: &str) {
    let mut failures = Vec::new();
    let baseline = args.smoke.as_deref().unwrap_or("BENCH_exp_forward.json");
    let recorded = std::fs::read_to_string(baseline).ok().and_then(|s| {
        s.lines()
            .find(|l| l.contains("\"min_lookups_per_sec\""))
            .and_then(|l| {
                l.split(':')
                    .nth(1)?
                    .trim()
                    .trim_end_matches(',')
                    .parse::<f64>()
                    .ok()
            })
    });
    let floor = match recorded {
        Some(f) => f.max(1_000_000.0),
        None => {
            eprintln!("smoke: no min_lookups_per_sec in {baseline}; gating on 1M/sec only");
            1_000_000.0
        }
    };
    let got = r.min_phase_lookups_per_sec();
    if got < floor {
        failures.push(format!(
            "{got:.0} lookups/sec (slowest phase) is below the floor {floor:.0}"
        ));
    }
    if r.drain.stale_loss != 0 || r.drain.miss != 0 {
        failures.push(format!(
            "drain batch lost packets on a quiesced network: stale_loss={} miss={}",
            r.drain.stale_loss, r.drain.miss
        ));
    }
    match std::fs::read_to_string(trace_path) {
        Err(e) => failures.push(format!("trace export missing at {trace_path}: {e}")),
        Ok(s) => {
            if let Err(e) = disco_telemetry::validate_json(&s) {
                failures.push(format!("trace export is not valid JSON: {e}"));
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "smoke OK: {got:.0} lookups/sec >= floor {floor:.0}, drain lost 0/{} \
         walks, trace validates",
        r.drain.walks
    );
}

/// Sharded smoke gate (`--shards K --smoke`): re-run the same leg on the
/// sequential engine and require every deterministic column — walks,
/// deliveries, stale losses, misses, lookup counts, hop sums, republish
/// decisions, table totals and simulation end — to match bit-for-bit.
fn smoke_sharded(args: &Args, multi: &ForwardResult) {
    let seq = run_one(&ForwardConfig {
        n: multi.n,
        seed: args.seed,
        flows: args.flows,
        debounce: args.debounce,
        shards: 0,
        trace: None,
        dynamic_n: args.dynamic_n,
    });
    let mut failures = Vec::new();
    for (a, b) in [
        (&seq.boot, &multi.boot),
        (&seq.churn, &multi.churn),
        (&seq.drain, &multi.drain),
    ] {
        if a.deterministic_key() != b.deterministic_key() {
            failures.push(format!(
                "phase {} diverged at shards={}: sequential {:?} vs sharded {:?}",
                a.phase,
                args.shards,
                a.deterministic_key(),
                b.deterministic_key()
            ));
        }
    }
    if seq.table_entries != multi.table_entries
        || seq.table_bytes != multi.table_bytes
        || seq.sim_end != multi.sim_end
    {
        failures.push(format!(
            "end-state diverged at shards={}: entries {} vs {}, bytes {} vs {}, \
             sim_end {} vs {}",
            args.shards,
            seq.table_entries,
            multi.table_entries,
            seq.table_bytes,
            multi.table_bytes,
            seq.sim_end,
            multi.sim_end
        ));
    }
    if multi.drain.stale_loss != 0 || multi.drain.miss != 0 {
        failures.push(format!(
            "drain batch lost packets on a quiesced network: stale_loss={} miss={}",
            multi.drain.stale_loss, multi.drain.miss
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "smoke OK: shards={} matches the sequential engine bit-for-bit on \
         every deterministic column; drain lost 0/{} walks",
        args.shards, multi.drain.walks
    );
}

fn main() {
    let mut args = parse_args();
    // The sequential smoke leg always exports a trace so the gate can
    // validate it; an explicit --trace keeps the user's path.
    let smoke_trace = if args.smoke.is_some() && args.shards == 0 {
        let path = args.trace.clone().unwrap_or_else(|| {
            std::env::temp_dir()
                .join("exp_forward_trace.json")
                .to_string_lossy()
                .into_owned()
        });
        args.trace = Some(path.clone());
        Some(path)
    } else {
        None
    };
    let cfg = ForwardConfig {
        n: args.nodes,
        seed: args.seed,
        flows: args.flows,
        debounce: args.debounce,
        shards: args.shards,
        trace: args.trace.clone().filter(|_| args.shards == 0),
        dynamic_n: args.dynamic_n,
    };
    let r = run_one(&cfg);
    print_table(&r);

    if let Some(path) = &args.json {
        std::fs::write(path, render_json(&args, &r)).expect("write json");
        eprintln!("wrote {path}");
    }

    if args.smoke.is_some() {
        if args.shards > 0 {
            smoke_sharded(&args, &r);
        } else {
            smoke_sequential(&args, &r, smoke_trace.as_deref().unwrap());
        }
    }
}
