//! Dynamics — route availability, stretch and repair traffic under
//! steady-state Poisson churn (extends the paper's Fig. 8 messaging
//! methodology from one-shot convergence to a dynamic network).
//!
//! The summary is a pure function of `(--nodes, --seed)`: the same
//! invocation reproduces byte-identical output, which is how churn
//! regressions are caught.
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_churn`
//! (defaults: 512 nodes, seed 1).

//! Pass `--forgetful` to run the path-vector layer with forgetful
//! eviction (`DiscoConfig::forgetful_dynamic`); the summary then carries a
//! `forgetful=on` marker and is locked by its own golden file.

use disco_bench::churn::{churn_experiment, ChurnParams};
use disco_bench::CommonArgs;

fn main() {
    let mut forgetful = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--forgetful" {
                forgetful = true;
                false
            } else {
                true
            }
        })
        .collect();
    let args = CommonArgs::parse_from(rest, 512);
    let params = ChurnParams::sized(args.nodes, args.seed).with_forgetful(forgetful);
    let outcome = churn_experiment(&params);
    print!("{}", outcome.summary(&params));
}
