//! Dynamics — route availability, stretch and repair traffic under
//! steady-state Poisson churn (extends the paper's Fig. 8 messaging
//! methodology from one-shot convergence to a dynamic network).
//!
//! The summary is a pure function of `(--nodes, --seed)`: the same
//! invocation reproduces byte-identical output, which is how churn
//! regressions are caught.
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_churn`
//! (defaults: 512 nodes, seed 1).

use disco_bench::churn::{churn_experiment, ChurnParams};
use disco_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(512);
    let params = ChurnParams::sized(args.nodes, args.seed);
    let outcome = churn_experiment(&params);
    print!("{}", outcome.summary(&params));
}
