//! Dynamics — route availability, stretch and repair traffic under
//! steady-state Poisson churn (extends the paper's Fig. 8 messaging
//! methodology from one-shot convergence to a dynamic network).
//!
//! The summary is a pure function of `(--nodes, --seed)`: the same
//! invocation reproduces byte-identical output, which is how churn
//! regressions are caught.
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_churn`
//! (defaults: 512 nodes, seed 1).
//!
//! Pass `--forgetful` to run the path-vector layer with forgetful
//! eviction (`DiscoConfig::forgetful_dynamic`); the summary then carries a
//! `forgetful=on` marker and is locked by its own golden file.
//!
//! Pass `--static-n` to pin every node to its construction-time estimate
//! of `n` (`DiscoConfig::dynamic_n_estimation` is on by default); the
//! summary then carries a `static_n=on` marker.
//!
//! Pass `--shards K` to run on the sharded engine with `K` workers. The
//! summary is byte-identical for every shard count (including the
//! sequential engine) — that invariant is golden-locked; `--shards`
//! exists to exercise and time the parallel path.
//!
//! Telemetry flags (all optional; with none of them the engine runs the
//! no-op recorder and the output is the golden-locked summary alone):
//!
//! * `--telemetry` — run with the full recorder and append the
//!   deterministic telemetry summary (msgs by class, repair latency
//!   quantiles).
//! * `--trace PATH` — additionally export the run as a Chrome
//!   `trace_event` JSON timeline (open in `chrome://tracing` or perfetto).
//! * `--smoke` — CI mode: small run (192 nodes unless `--nodes` is given),
//!   asserts quiescence/availability, validates the emitted trace JSON and
//!   its phase spans, dumps the flight recorder and exits non-zero on
//!   failure.

use disco_bench::churn::{
    churn_experiment, churn_experiment_sharded, churn_experiment_with, ChurnParams,
};
use disco_bench::CommonArgs;
use disco_telemetry::{validate_json, FullRecorder};

fn main() {
    let mut forgetful = false;
    let mut static_n = false;
    let mut telemetry = false;
    let mut smoke = false;
    let mut shards: Option<usize> = None;
    let mut trace: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--forgetful" => forgetful = true,
            "--static-n" => static_n = true,
            "--telemetry" => telemetry = true,
            "--smoke" => smoke = true,
            "--shards" => {
                shards = Some(
                    it.next()
                        .expect("missing value for --shards")
                        .parse()
                        .expect("--shards"),
                )
            }
            "--trace" => trace = Some(it.next().expect("missing value for --trace")),
            _ => rest.push(a),
        }
    }
    let default_nodes = if smoke { 192 } else { 512 };
    let args = CommonArgs::parse_from(rest, default_nodes);
    let params = ChurnParams::sized(args.nodes, args.seed)
        .with_forgetful(forgetful)
        .with_static_n(static_n);

    if let Some(shards) = shards {
        assert!(
            !(telemetry || smoke || trace.is_some()),
            "--shards combines with the plain summary only (the telemetry \
             drivers run the sequential engine)"
        );
        let outcome = churn_experiment_sharded(&params, shards);
        print!("{}", outcome.summary(&params));
        return;
    }

    if !(telemetry || smoke || trace.is_some()) {
        // Telemetry off: the engine monomorphizes with the no-op recorder —
        // exactly the golden-locked code path.
        let outcome = churn_experiment(&params);
        print!("{}", outcome.summary(&params));
        return;
    }

    let (outcome, rec) = churn_experiment_with(&params, FullRecorder::new());
    print!("{}", outcome.summary(&params));
    print!("{}", rec.summary_lines());

    if let Some(path) = &trace {
        let json = rec.chrome_trace_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("trace written to {path} ({} bytes)", json.len());
    }

    if smoke {
        let mut failures: Vec<String> = Vec::new();
        if !outcome.quiesced {
            failures.push("network failed to quiesce after churn".into());
        }
        if outcome.availability < 0.90 {
            failures.push(format!(
                "availability under churn {:.4} < 0.90",
                outcome.availability
            ));
        }
        if outcome.final_availability < 0.99 {
            failures.push(format!(
                "post-repair availability {:.4} < 0.99",
                outcome.final_availability
            ));
        }
        if rec.repair.latencies().is_empty() {
            failures.push("repair probe recorded no windows despite churn".into());
        }
        if let Some(path) = &trace {
            match std::fs::read_to_string(path) {
                Ok(json) => {
                    if let Err(e) = validate_json(&json) {
                        failures.push(format!("trace JSON invalid: {e}"));
                    }
                    for phase in ["\"build\"", "\"boot\"", "\"churn\"", "\"drain\""] {
                        if !json.contains(phase) {
                            failures.push(format!("trace missing phase span {phase}"));
                        }
                    }
                }
                Err(e) => failures.push(format!("re-reading trace {path}: {e}")),
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("smoke FAIL: {f}");
            }
            eprint!("{}", rec.flight.dump());
            std::process::exit(1);
        }
        println!("smoke OK");
    }
}
