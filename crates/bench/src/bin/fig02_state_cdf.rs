//! Fig. 2 — State CDF (entries per node) for Disco, NDDisco and S4 on the
//! geometric, AS-level and router-level topologies.
//!
//! Paper: 16,384-node geometric graph plus the CAIDA AS-level and
//! router-level maps. Default here: 8,192 nodes per topology (see
//! DESIGN.md §3 on scale); pass `--nodes 16384` for the paper scale.

use disco_bench::CommonArgs;
use disco_metrics::experiment::{state_comparison, ExperimentParams};
use disco_metrics::{report, Topology};

fn main() {
    let args = CommonArgs::parse(8192);
    for topology in [
        Topology::Geometric,
        Topology::AsLevel,
        Topology::RouterLevel,
    ] {
        let params = ExperimentParams::for_nodes(args.nodes, args.seed);
        let cmp = state_comparison(topology, &params, false);
        let disco = cmp.disco.cdf();
        let nddisco = cmp.nddisco.cdf();
        let s4 = cmp.s4.cdf();
        let series = [("Disco", &disco), ("ND-Disco", &nddisco), ("S4", &s4)];
        println!(
            "{}",
            report::render_summary(
                &format!("Fig. 2 — state at a node, {topology}, n={}", cmp.nodes),
                &series
            )
        );
        println!(
            "{}",
            report::render_cdf_series("CDF over nodes", &series, args.points)
        );
    }
}
