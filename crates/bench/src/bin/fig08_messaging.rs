//! Fig. 8 — Mean messages per node until convergence for path-vector, S4,
//! NDDisco and Disco (1 and 3 fingers) on G(n,m) graphs of increasing size.
//!
//! This experiment runs the actual distributed protocols in the
//! discrete-event simulator; it is the slowest figure. The default sweep
//! stops at 1,024 nodes as in the paper.

use disco_bench::CommonArgs;
use disco_metrics::experiment::messaging_sweep;
use disco_metrics::report;

fn main() {
    let args = CommonArgs::parse(1024);
    let sizes: Vec<usize> = [128usize, 256, 512, 768, 1024]
        .into_iter()
        .filter(|&s| s <= args.nodes)
        .collect();
    let points = messaging_sweep(&sizes, args.seed);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                report::fmt3(p.path_vector),
                report::fmt3(p.s4),
                report::fmt3(p.nddisco),
                report::fmt3(p.disco_1_finger),
                report::fmt3(p.disco_3_finger),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "Fig. 8 — mean messages per node until convergence (G(n,m))",
            &[
                "nodes",
                "Path-vector",
                "S4",
                "ND-Disco",
                "Disco-1-Finger",
                "Disco-3-Finger"
            ],
            &rows
        )
    );
}
