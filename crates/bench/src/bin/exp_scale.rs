//! Scale sweep for the million-node hot path: delivered announcements/sec
//! under churn (the headline — see below), queue pops/sec, static-build
//! wall time, and live path-arena cells (the allocation gauge), across
//! n ∈ {1k, 4k, 16k} (+64k with `--full`).
//!
//! The engine workload is a fixed budget (default 3M) of **delivered
//! announcements** of the distributed Disco protocol booting under a
//! Poisson churn schedule, so the measurement cost is independent of n and
//! runs are comparable across sizes. Since the batched message plane packs
//! a whole table dump into one queue entry, raw events/sec could be gamed
//! by packing more work per event; a delivered announcement is the same
//! protocol work in every configuration, so announcements/sec is what the
//! speedup columns and the `--smoke` gate use. Two recorded baselines ride
//! along in the JSON: the pre-refactor hot path (BinaryHeap queue,
//! `Vec<NodeId>` paths) and the pre-batching message plane (per-message
//! wheel entries, O(degree) send resolution — where announcements/sec ≤
//! events/sec by construction).
//!
//! ```text
//! --sizes 1024,4096     comma-separated sweep sizes
//! --full                append 65536 to the sweep
//! --seed S              experiment seed (default 1)
//! --events N            delivered-announcement budget per size
//!                       (default 3000000)
//! --threads T           static-build worker threads (default 0 = one/CPU)
//! --queue wheel|heap    event-queue implementation (default wheel)
//! --json PATH           write the JSON report to PATH
//! --trace PATH          export the first sweep size's engine leg as a
//!                       Chrome trace_event timeline (adds recorder
//!                       overhead to that leg's numbers)
//! --shards K            run the engine legs on the sharded engine with K
//!                       worker shards (default 0 = sequential engine)
//! --smoke [BASELINE]    n=1024 regression gate: read
//!                       `min_announcements_per_sec` from BASELINE
//!                       (default BENCH_exp_scale.json) and exit non-zero
//!                       if the measured rate falls below it. With
//!                       --shards K it instead gates the sharded path:
//!                       re-runs the same leg at --shards 1, requires
//!                       bit-identical delivered/topology/sim-end numbers
//!                       (cross-shard determinism), and — when the runner
//!                       has more than K cores — requires the K-shard rate
//!                       to be >= single-shard's (on fewer cores the ratio
//!                       is reported but not gated: the shards time-slice
//!                       and every window barrier is a context switch)
//! ```
//!
//! Run with: `cargo run --release -p disco-bench --bin exp_scale`

use disco_bench::scale::{
    run_one, ScaleConfig, ScaleResult, BASELINE_NOTE, BASELINE_RESULTS, PRE_BATCH_NOTE,
    PRE_BATCH_RESULTS,
};
use std::fmt::Write as _;

struct Args {
    sizes: Vec<usize>,
    seed: u64,
    budget: u64,
    threads: usize,
    heap_queue: bool,
    json: Option<String>,
    smoke: Option<String>,
    trace: Option<String>,
    shards: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        sizes: vec![1024, 4096, 16384],
        seed: 1,
        budget: 3_000_000,
        threads: 0,
        heap_queue: false,
        json: None,
        smoke: None,
        trace: None,
        shards: 0,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--sizes" => {
                out.sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect();
            }
            "--full" => out.sizes.push(65_536),
            "--seed" | "-s" => out.seed = value("--seed").parse().expect("--seed"),
            "--events" => out.budget = value("--events").parse().expect("--events"),
            "--threads" => out.threads = value("--threads").parse().expect("--threads"),
            "--queue" => {
                out.heap_queue = match value("--queue").as_str() {
                    "heap" => true,
                    "wheel" => false,
                    other => panic!("unknown queue {other} (wheel|heap)"),
                };
            }
            "--json" => out.json = Some(value("--json")),
            "--trace" => out.trace = Some(value("--trace")),
            "--shards" => out.shards = value("--shards").parse().expect("--shards"),
            "--smoke" => {
                out.sizes = vec![1024];
                out.budget = out.budget.min(1_000_000);
                out.smoke = Some("BENCH_exp_scale.json".to_string());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --sizes a,b,c --full --seed S --events N --threads T \
                     --queue wheel|heap --json PATH --trace PATH --shards K --smoke"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn render_json(args: &Args, results: &[ScaleResult]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"exp_scale\",");
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"announcement_budget\": {},", args.budget);
    let _ = writeln!(
        j,
        "  \"queue\": \"{}\",",
        if args.heap_queue { "heap" } else { "wheel" }
    );
    // The smoke gate: 70% of the measured 1k announcement rate, rounded
    // down — CI fails an exp_scale --smoke run that regresses delivered
    // announcements/sec by >30%.
    if let Some(r1k) = results.iter().find(|r| r.n == 1024) {
        let _ = writeln!(
            j,
            "  \"min_announcements_per_sec\": {},",
            (r1k.announcements_per_sec * 0.7) as u64
        );
    }
    let _ = writeln!(j, "  \"baseline_note\": \"{BASELINE_NOTE}\",");
    let _ = writeln!(j, "  \"baseline\": [");
    for (i, b) in BASELINE_RESULTS.iter().enumerate() {
        let comma = if i + 1 < BASELINE_RESULTS.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            j,
            "    {{ \"n\": {}, \"events_per_sec\": {}, \"build_secs\": {} }}{comma}",
            b.0, b.1, b.2
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"pre_batch_note\": \"{PRE_BATCH_NOTE}\",");
    let _ = writeln!(j, "  \"pre_batch\": [");
    for (i, b) in PRE_BATCH_RESULTS.iter().enumerate() {
        let comma = if i + 1 < PRE_BATCH_RESULTS.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            j,
            "    {{ \"n\": {}, \"events_per_sec\": {} }}{comma}",
            b.0, b.1
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(j, "    {}{comma}", r.to_json());
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let args = parse_args();
    let mut results = Vec::new();
    println!(
        "{:>7} {:>10} {:>12} {:>13} {:>13} {:>12} {:>9}",
        "n", "landmarks", "build_secs", "events/sec", "anns/sec", "peak_cells", "speedup"
    );
    for &n in &args.sizes {
        let cfg = ScaleConfig {
            n,
            seed: args.seed,
            announcement_budget: args.budget,
            build_threads: args.threads,
            heap_queue: args.heap_queue,
            // Trace only the first size in the sweep (the file would
            // otherwise be overwritten per size).
            trace: args.trace.clone().filter(|_| results.is_empty()),
            shards: args.shards,
        };
        let r = run_one(&cfg);
        // Speedup in *delivered announcements*/sec against the pre-batching
        // recording, where every delivered announcement was one event.
        let speedup = PRE_BATCH_RESULTS
            .iter()
            .find(|b| b.0 == n)
            .map(|b| r.announcements_per_sec / b.1)
            .map_or("-".to_string(), |s| format!("{s:.2}x"));
        println!(
            "{:>7} {:>10} {:>12.3} {:>13.0} {:>13.0} {:>12} {:>9}",
            r.n,
            r.landmarks,
            r.build_secs,
            r.events_per_sec,
            r.announcements_per_sec,
            r.peak_arena_cells,
            speedup
        );
        results.push(r);
    }

    if let Some(path) = &args.json {
        std::fs::write(path, render_json(&args, &results)).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = &args.smoke {
        if args.shards > 0 {
            smoke_sharded(&args, &results[0]);
            return;
        }
        let floor = std::fs::read_to_string(baseline_path).ok().and_then(|s| {
            s.lines()
                .find(|l| l.contains("\"min_announcements_per_sec\""))
                .and_then(|l| {
                    l.split(':')
                        .nth(1)?
                        .trim()
                        .trim_end_matches(',')
                        .parse::<f64>()
                        .ok()
                })
        });
        match floor {
            None => {
                eprintln!("smoke: no min_announcements_per_sec in {baseline_path}; skipping gate");
            }
            Some(floor) => {
                let got = results[0].announcements_per_sec;
                if got < floor {
                    eprintln!(
                        "smoke FAIL: {got:.0} announcements/sec at n=1024 is below the \
                         recorded floor {floor:.0} (>30% regression)"
                    );
                    std::process::exit(1);
                }
                eprintln!("smoke OK: {got:.0} announcements/sec >= floor {floor:.0}");
            }
        }
    }
}

/// The sharded smoke gate (`--shards K --smoke`): re-run the same leg at
/// `--shards 1` and require (a) bit-identical delivered announcements,
/// topology events and simulation end time — the cross-shard determinism
/// contract — and (b) the K-shard announcement rate to be at least
/// single-shard's. The throughput bar only applies when the runner has
/// more than `K` cores (real parallelism available: more shards must not
/// be slower). On smaller runners the K shards time-slice one core and
/// every lookahead-window barrier is a forced context switch, so the ratio
/// is reported but not gated — there is no floor that separates a
/// regression from scheduler noise without a second core.
fn smoke_sharded(args: &Args, multi: &ScaleResult) {
    let single = run_one(&ScaleConfig {
        n: multi.n,
        seed: args.seed,
        announcement_budget: args.budget,
        build_threads: args.threads,
        heap_queue: false,
        trace: None,
        shards: 1,
    });
    let mut failures = Vec::new();
    if multi.announcements != single.announcements
        || multi.topology_events != single.topology_events
        || multi.sim_end != single.sim_end
    {
        failures.push(format!(
            "shards={} diverged from shards=1: announcements {} vs {}, \
             topology {} vs {}, sim_end {} vs {}",
            args.shards,
            multi.announcements,
            single.announcements,
            multi.topology_events,
            single.topology_events,
            multi.sim_end,
            single.sim_end
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let ratio = multi.announcements_per_sec / single.announcements_per_sec.max(1e-9);
    if cores > args.shards && ratio < 1.0 {
        failures.push(format!(
            "shards={} throughput is {ratio:.2}x single-shard on {cores} \
             cores (parallel shards must not be slower than one)",
            args.shards
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
    let gated = if cores > args.shards {
        "gated"
    } else {
        "informational: shards time-slice the cores"
    };
    eprintln!(
        "smoke OK: shards={} matches shards=1 bit-for-bit; throughput \
         {ratio:.2}x single-shard ({cores} cores, {gated})",
        args.shards
    );
}
