//! The `exp_memory` workload: control-state memory under churn, charted
//! against the paper's `Θ(√(n log n))` bound (§4.2, forgetful routing).
//!
//! One *leg* runs the distributed Disco protocol to convergence, applies a
//! Poisson churn schedule, probes availability at fixed times, and then
//! meters per-node control state: path-vector candidates (the Adj-RIB-In,
//! `exp_scale`'s memory wall), RIB bytes, interned-path arena cells, and
//! the process's peak RSS (`VmHWM`). Every protocol-visible number is a
//! pure function of the parameters; only wall-clock and RSS vary.
//!
//! Peak RSS is a *process-wide high-water mark*, so comparing legs in one
//! process would let the first leg's peak mask the second's. The
//! `exp_memory` binary therefore re-executes itself (`--leg`) so each leg
//! owns a fresh address space; [`run_leg`] is the in-process form used by
//! tests and the `--smoke` gate, where candidate counts — not RSS — are
//! the gated quantity.

use disco_core::config::DiscoConfig;
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_dynamics::models::PoissonChurn;
use disco_dynamics::probe::{
    disco_first_packet_route, disco_probe_sharded, probe, sample_live_pairs,
    sample_live_pairs_sharded,
};
use disco_graph::{generators, PathArena};
use disco_metrics::control::{legacy_intern_bytes, ControlAccounting, ControlBytes, ControlCounts};
use disco_sim::{Engine, NoopRecorder, Phase, Recorder, ShardedEngine, TimerWheel};
use disco_telemetry::FullRecorder;
use std::time::Instant;

/// Parameters of one `exp_memory` leg.
#[derive(Debug, Clone)]
pub struct MemoryParams {
    /// Network size.
    pub n: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-node leave rate during the churn window.
    pub leave_rate_per_node: f64,
    /// Mean downtime before rejoin.
    pub mean_downtime: f64,
    /// Length of the churn window.
    pub horizon: f64,
    /// Availability probes spread over the window.
    pub probes: usize,
    /// Sampled (source, destination) pairs per probe.
    pub pairs_per_probe: usize,
    /// Run with forgetful eviction (`DiscoConfig::forgetful_dynamic`).
    pub forgetful: bool,
    /// Alternate budget when forgetful.
    pub alternates: usize,
    /// Worker shards (0 = sequential engine). The sharded leg reports the
    /// same protocol-visible numbers (the engine is shard-count
    /// invariant); the arena gauges become sums over the workers'
    /// thread-local arenas, and `arena_shrunk_cells` is the free-listed
    /// capacity released *while the run's state is still live* (worker
    /// state cannot be dropped before its thread).
    pub shards: usize,
}

impl MemoryParams {
    /// Defaults at one grid point. The horizon is shorter than
    /// `exp_churn`'s (the sweep multiplies legs) but long enough for
    /// hundreds of topology events at the default rate and n ≥ 1k.
    pub fn grid_point(n: usize, seed: u64, leave_rate: f64, forgetful: bool) -> Self {
        MemoryParams {
            n,
            seed,
            leave_rate_per_node: leave_rate,
            mean_downtime: 150.0,
            horizon: 500.0,
            probes: 4,
            pairs_per_probe: 64,
            forgetful,
            alternates: 2,
            shards: 0,
        }
    }
}

/// Measurements of one `exp_memory` leg.
#[derive(Debug, Clone, Default)]
pub struct MemoryResult {
    /// Network size.
    pub n: usize,
    /// Leave rate of this grid point.
    pub leave_rate: f64,
    /// Whether forgetful eviction was on.
    pub forgetful: bool,
    /// Availability over the in-churn probes.
    pub availability: f64,
    /// Availability after the network quiesced.
    pub final_availability: f64,
    /// Mean path-vector candidates per live node at the end of the run.
    pub cand_mean: f64,
    /// Maximum candidates at any live node.
    pub cand_max: usize,
    /// Mean Adj-RIB-In bytes per live node (store only; paths are arena
    /// cells).
    pub rib_bytes_mean: f64,
    /// Mean Loc-RIB *view* bytes per live node (selection columns +
    /// ordered mirrors — the state that used to be a materialized
    /// `FxHashMap<NodeId, RouteEntry>`).
    pub loc_rib_bytes_mean: f64,
    /// Mean dissemination/resolution bookkeeping bytes per live node
    /// (group address store, overlay slots, forwarded dedup; the
    /// resolution shard is application state, excluded on both sides).
    pub dissem_bytes_mean: f64,
    /// Path-arena intern table bytes (process-wide, measured at gauge
    /// time).
    pub intern_bytes: u64,
    /// Mean non-RIB control bytes per live node: Loc-RIB view +
    /// dissemination + this node's share of the arena intern table.
    pub non_rib_bytes_mean: f64,
    /// What the PR 3-era layouts (materialized Loc-RIB map, hash-map
    /// intern table, std dissemination maps) would spend per node on the
    /// same live contents — the "before" of the reduction ratio, priced
    /// by `disco-metrics::control`'s SwissTable model.
    pub legacy_non_rib_bytes_mean: f64,
    /// `legacy_non_rib_bytes_mean / non_rib_bytes_mean` — the headline
    /// non-RIB control-memory reduction of the Loc-RIB-as-a-view PR.
    pub non_rib_reduction: f64,
    /// Mean interned destinations per live node (the denominator of the
    /// control-bytes-per-destination CI gate).
    pub dests_mean: f64,
    /// Mean interned-path nodes referenced per live node's RIB.
    pub path_nodes_mean: f64,
    /// Peak live path-arena cells over the run.
    pub arena_peak_cells: usize,
    /// Live path-arena cells at the end.
    pub arena_live_cells: usize,
    /// Arena capacity cells released by `PathArena::shrink` afterwards
    /// (post-churn compaction yield).
    pub arena_shrunk_cells: usize,
    /// Control messages per node spent on repair during the window.
    pub repair_msgs_per_node: f64,
    /// Route-refresh requests flooded (forgetful re-solicitation).
    pub refreshes_sent: u64,
    /// Candidates evicted by the forgetful policy.
    pub evictions: u64,
    /// Topology events applied.
    pub topology_events: u64,
    /// Peak RSS (`VmHWM`) of the *churn phase* — the watermark is reset
    /// after initial convergence (see [`reset_peak_rss`]); 0 where
    /// unreadable.
    pub peak_rss_bytes: u64,
    /// Peak RSS of the boot phase (graph + initial convergence flood),
    /// identical workload in both RIB modes.
    pub boot_rss_bytes: u64,
    /// Wall time of the whole leg.
    pub wall_secs: f64,
    /// Whether the run quiesced.
    pub quiesced: bool,
}

/// `√(n ln n)` — the paper's per-node state scale, printed next to every
/// grid row so the sweep charts candidates/node against it.
pub fn sqrt_n_log_n(n: usize) -> f64 {
    let n = n.max(2) as f64;
    (n * n.ln()).sqrt()
}

/// The configured candidates-per-node bound the smoke gate asserts:
/// selected + alternates for each of the `Θ(√(n log n))` table-resident
/// destinations (vicinity + landmarks ≈ 2√(n ln n)), plus one retained
/// candidate for each destination a neighbor exports that the table
/// rejects — bounded by the same scale, since neighbors only export their
/// own `Θ(√(n log n))` tables and adjacent vicinities overlap heavily.
/// Measured across n ∈ {192..4096}: 6.6–7.6 × √(n ln n), flat in n; the
/// constant carries that with ~30% headroom.
pub fn candidate_bound(n: usize, alternates: usize) -> f64 {
    (8.0 + alternates as f64) * sqrt_n_log_n(n)
}

/// The non-RIB-control-bytes-per-destination bound the smoke gate asserts
/// (mean non-RIB control bytes per node over mean interned destinations
/// per node). Measured 63 B/dest at the smoke point (n=512, heavy churn,
/// forgetful): ~33 B of selection columns (25 B/dest plus vector growth
/// slack), ~18 B of ordered-mirror keys, ~13 B of dissemination and
/// intern-table share. The bound carries ~35% headroom; the PR 3 layout
/// (materialized `FxHashMap<NodeId, RouteEntry>` Loc-RIB + hash-map
/// intern table) prices at ~116 B/dest on the same contents, so a
/// regression that re-materializes per-destination state fails CI with
/// margin.
pub fn control_bytes_per_dest_bound() -> f64 {
    85.0
}

/// Reset the kernel's peak-RSS watermark (`VmHWM`) to the current RSS
/// (`echo 5 > /proc/self/clear_refs`). `run_leg` does this right after
/// initial convergence, so the reported peak reflects the *churn phase* —
/// retained control state plus repair transients — instead of being
/// masked by the one-time boot flood, which peaks higher and identically
/// in both RIB modes. Best-effort: unsupported kernels keep the boot
/// peak.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Read this process's peak resident set size (`VmHWM`) in bytes.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Run one leg in-process. Protocol-visible numbers are deterministic in
/// the parameters; `peak_rss_bytes` reflects everything this process did
/// before, so sweep legs run in child processes.
pub fn run_leg(p: &MemoryParams) -> MemoryResult {
    if p.shards > 0 {
        return run_leg_sharded(p);
    }
    // The no-op recorder monomorphizes the leg to the uninstrumented
    // engine — this is the measured configuration.
    run_leg_impl(p, NoopRecorder).0
}

/// [`run_leg`] with the full telemetry recorder, exporting a Chrome
/// `trace_event` timeline of the leg to `trace_path`. The timeline carries
/// the leg's phase spans (build/boot/churn/drain) with wall-clock and RSS
/// deltas — the memory story of the leg, phase by phase.
pub fn run_leg_traced(p: &MemoryParams, trace_path: &str) -> MemoryResult {
    assert!(
        p.shards == 0,
        "--trace runs the sequential engine (phase spans are engine-global)"
    );
    let (result, rec) = run_leg_impl(p, FullRecorder::new());
    let json = rec.chrome_trace_json();
    std::fs::write(trace_path, &json).unwrap_or_else(|e| panic!("writing {trace_path}: {e}"));
    eprintln!("trace written to {trace_path} ({} bytes)", json.len());
    result
}

fn run_leg_impl<R: Recorder>(p: &MemoryParams, mut recorder: R) -> (MemoryResult, R) {
    let t0 = Instant::now();
    recorder.phase_begin(Phase::Build, 0.0);
    let graph = generators::gnm_average_degree(p.n, 8.0, p.seed);
    let cfg = DiscoConfig::seeded(p.seed)
        .with_forgetful_dynamic(p.forgetful)
        .with_forgetful_alternates(p.alternates);
    let landmarks = select_landmarks(p.n, &cfg);
    let lm_set = landmark_set(&landmarks);

    PathArena::reset_peak();
    recorder.phase_end(Phase::Build, 0.0);
    recorder.phase_begin(Phase::Boot, 0.0);
    let mut engine = Engine::with_recorder(
        &graph,
        |v| DiscoProtocol::new(v, lm_set.contains(&v), p.n, &cfg, PhaseTimers::default()),
        TimerWheel::new(),
        recorder,
    );
    let report = engine.run();
    assert!(report.converged, "initial convergence failed");
    let boot_end = engine.now();
    engine.recorder_mut().phase_end(Phase::Boot, boot_end);
    let convergence_msgs = engine.stats().total_sent();
    let boot_rss = peak_rss_bytes();
    reset_peak_rss();

    let model = PoissonChurn {
        leave_rate_per_node: p.leave_rate_per_node,
        mean_downtime: p.mean_downtime,
        horizon: p.horizon,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, p.seed);
    let start = engine.now();
    engine.recorder_mut().phase_begin(Phase::Churn, start);
    schedule.apply_to(&mut engine);

    let mut routable_total = 0usize;
    let mut delivered_total = 0usize;
    for i in 1..=p.probes {
        let t = start + p.horizon * i as f64 / p.probes as f64;
        engine.run_to(t);
        let pairs = sample_live_pairs(&engine, p.pairs_per_probe, p.seed ^ i as u64);
        let pr = probe(&engine, &pairs, disco_first_packet_route);
        routable_total += pr.routable;
        delivered_total += pr.delivered;
    }
    let availability = if routable_total == 0 {
        1.0
    } else {
        delivered_total as f64 / routable_total as f64
    };

    let churn_end = engine.now();
    engine.recorder_mut().phase_end(Phase::Churn, churn_end);
    engine.recorder_mut().phase_begin(Phase::Drain, churn_end);
    let quiesced = engine.run_until(|_| false);
    let drain_end = engine.now();
    engine.recorder_mut().phase_end(Phase::Drain, drain_end);
    engine.recorder_mut().finish(drain_end);
    let pairs = sample_live_pairs(&engine, p.pairs_per_probe, p.seed ^ 0xf17a1);
    let pr = probe(&engine, &pairs, disco_first_packet_route);
    let final_availability = pr.availability();

    // Control-state gauges over the live nodes, folded through the
    // per-component accounting (Adj-RIB-In vs Loc-RIB view vs
    // dissemination; the legacy side prices the same contents under the
    // PR 3-era layouts).
    let mut cand_total = 0usize;
    let mut cand_max = 0usize;
    let mut path_nodes = 0usize;
    let mut dests_total = 0usize;
    let mut refreshes = 0u64;
    let mut evictions = 0u64;
    let mut live = 0usize;
    let mut acct = ControlAccounting::default();
    for v in engine.active_nodes().collect::<Vec<_>>() {
        let node = &engine.nodes()[v.0];
        let st = node.pv.rib_stats();
        cand_total += st.candidates;
        cand_max = cand_max.max(st.candidates);
        path_nodes += st.path_nodes;
        dests_total += st.dests_interned;
        refreshes += node.pv.refreshes_sent();
        evictions += st.evictions;
        live += 1;
        let (groups, overlay, forwarded) = node.dissemination_counts();
        acct.push(
            ControlBytes {
                rib: st.approx_bytes,
                loc_rib: node.pv.loc_rib_bytes(),
                dissemination: node.dissemination_bytes(),
            },
            &ControlCounts {
                selected: st.selected,
                mirror_entries: node.pv.mirror_entries(),
                group_addresses: groups,
                overlay_slots: overlay,
                forwarded,
            },
        );
    }
    let arena = PathArena::stats();
    let live_f = live.max(1) as f64;
    let (rib_bytes_mean, loc_rib_bytes_mean, dissem_bytes_mean) = acct.mean();
    let (legacy_loc_rib_mean, legacy_dissem_mean) = acct.legacy_mean();
    // The arena intern table is process-wide; charge each live node an
    // equal share. Both sides are priced at the occupancy *peak* (neither
    // table shrinks on its own): the measured side is the slot array's
    // actual bytes, the legacy side the SwissTable model on peak cells.
    let intern_share = arena.intern_bytes as f64 / live_f;
    let legacy_intern_share = legacy_intern_bytes(arena.peak_live_cells) as f64 / live_f;
    let non_rib_bytes_mean = loc_rib_bytes_mean + dissem_bytes_mean + intern_share;
    let legacy_non_rib_bytes_mean = legacy_loc_rib_mean + legacy_dissem_mean + legacy_intern_share;
    let repair_msgs_per_node = (engine.stats().total_sent() - convergence_msgs) as f64 / p.n as f64;
    let topology_events = engine.topology_events();
    // Post-churn compaction: drop the run's state, then let the arena
    // release the capacity the churn peak left free-listed.
    let recorder = engine.into_recorder();
    let arena_shrunk_cells = PathArena::shrink();

    let result = MemoryResult {
        n: p.n,
        leave_rate: p.leave_rate_per_node,
        forgetful: p.forgetful,
        availability,
        final_availability,
        cand_mean: cand_total as f64 / live_f,
        cand_max,
        rib_bytes_mean,
        loc_rib_bytes_mean,
        dissem_bytes_mean,
        intern_bytes: arena.intern_bytes as u64,
        non_rib_bytes_mean,
        legacy_non_rib_bytes_mean,
        non_rib_reduction: legacy_non_rib_bytes_mean / non_rib_bytes_mean.max(1.0),
        dests_mean: dests_total as f64 / live_f,
        path_nodes_mean: path_nodes as f64 / live_f,
        arena_peak_cells: arena.peak_live_cells,
        arena_live_cells: arena.live_cells,
        arena_shrunk_cells,
        repair_msgs_per_node,
        refreshes_sent: refreshes,
        evictions,
        topology_events,
        peak_rss_bytes: peak_rss_bytes(),
        boot_rss_bytes: boot_rss,
        wall_secs: t0.elapsed().as_secs_f64(),
        quiesced,
    };
    (result, recorder)
}

/// Per-node control-state row shipped back from a worker shard's gauge
/// visit (plain data — crosses the shard boundary by value).
struct NodeGauge {
    bytes: ControlBytes,
    counts: ControlCounts,
    candidates: usize,
    path_nodes: usize,
    dests: usize,
    refreshes: u64,
    evictions: u64,
}

/// The sharded-engine leg (`exp_memory --shards K`). Protocol-visible
/// numbers (availability, candidates, RIB/control bytes, repair traffic)
/// are shard-count invariant and match the sequential leg; the arena
/// gauges sum the workers' thread-local arenas, and peak RSS still meters
/// the whole process (the workers are threads).
fn run_leg_sharded(p: &MemoryParams) -> MemoryResult {
    let t0 = Instant::now();
    let graph = generators::gnm_average_degree(p.n, 8.0, p.seed);
    let cfg = DiscoConfig::seeded(p.seed)
        .with_forgetful_dynamic(p.forgetful)
        .with_forgetful_alternates(p.alternates);
    let landmarks = select_landmarks(p.n, &cfg);
    let lm_set = landmark_set(&landmarks);

    let n = p.n;
    let factory_cfg = cfg.clone();
    let mut engine = ShardedEngine::new(&graph, p.shards, p.seed, move |v| {
        DiscoProtocol::new(
            v,
            lm_set.contains(&v),
            n,
            &factory_cfg,
            PhaseTimers::default(),
        )
    });
    for shard in 0..engine.shards() {
        engine.visit(shard, |_| PathArena::reset_peak());
    }
    let report = engine.run();
    assert!(report.converged, "initial convergence failed");
    let convergence_msgs = report.stats.total_sent();
    let boot_rss = peak_rss_bytes();
    reset_peak_rss();

    let model = PoissonChurn {
        leave_rate_per_node: p.leave_rate_per_node,
        mean_downtime: p.mean_downtime,
        horizon: p.horizon,
        ..PoissonChurn::default()
    };
    let schedule = model.compile(&graph, p.seed);
    let start = engine.now();
    schedule
        .apply_to_sharded(&mut engine)
        .expect("churn schedule re-adds only links of the original graph");

    let mut routable_total = 0usize;
    let mut delivered_total = 0usize;
    for i in 1..=p.probes {
        let t = start + p.horizon * i as f64 / p.probes as f64;
        engine.run_to(t);
        let pairs = sample_live_pairs_sharded(&engine, p.pairs_per_probe, p.seed ^ i as u64);
        let pr = disco_probe_sharded(&mut engine, &pairs);
        routable_total += pr.routable;
        delivered_total += pr.delivered;
    }
    let availability = if routable_total == 0 {
        1.0
    } else {
        delivered_total as f64 / routable_total as f64
    };

    let quiesced = engine.run_until(|_| false);
    let pairs = sample_live_pairs_sharded(&engine, p.pairs_per_probe, p.seed ^ 0xf17a1);
    let pr = disco_probe_sharded(&mut engine, &pairs);
    let final_availability = pr.availability();

    // Gauge each shard's owned live nodes on its own thread; fold the
    // rows through the same accounting the sequential leg uses.
    let mut cand_total = 0usize;
    let mut cand_max = 0usize;
    let mut path_nodes = 0usize;
    let mut dests_total = 0usize;
    let mut refreshes = 0u64;
    let mut evictions = 0u64;
    let mut live = 0usize;
    let mut acct = ControlAccounting::default();
    for shard in 0..engine.shards() {
        let mine: Vec<_> = engine
            .active_nodes()
            .filter(|&v| engine.owner_of(v) == shard)
            .collect();
        let rows: Vec<NodeGauge> = engine.visit(shard, move |e| {
            let nodes = e.nodes();
            mine.into_iter()
                .map(|v| {
                    let node = &nodes[v.0];
                    let st = node.pv.rib_stats();
                    let (groups, overlay, forwarded) = node.dissemination_counts();
                    NodeGauge {
                        bytes: ControlBytes {
                            rib: st.approx_bytes,
                            loc_rib: node.pv.loc_rib_bytes(),
                            dissemination: node.dissemination_bytes(),
                        },
                        counts: ControlCounts {
                            selected: st.selected,
                            mirror_entries: node.pv.mirror_entries(),
                            group_addresses: groups,
                            overlay_slots: overlay,
                            forwarded,
                        },
                        candidates: st.candidates,
                        path_nodes: st.path_nodes,
                        dests: st.dests_interned,
                        refreshes: node.pv.refreshes_sent(),
                        evictions: st.evictions,
                    }
                })
                .collect()
        });
        for g in rows {
            cand_total += g.candidates;
            cand_max = cand_max.max(g.candidates);
            path_nodes += g.path_nodes;
            dests_total += g.dests;
            refreshes += g.refreshes;
            evictions += g.evictions;
            live += 1;
            acct.push(g.bytes, &g.counts);
        }
    }

    // Sum the workers' thread-local arenas (the coordinator's arena stays
    // empty — probes detach paths to `Vec<NodeId>` before crossing).
    let mut intern_bytes = 0usize;
    let mut peak_cells = 0usize;
    let mut live_cells = 0usize;
    let mut shrunk = 0usize;
    for shard in 0..engine.shards() {
        let arena = engine.visit(shard, |_| PathArena::stats());
        intern_bytes += arena.intern_bytes;
        peak_cells += arena.peak_live_cells;
        live_cells += arena.live_cells;
        shrunk += engine.visit(shard, |_| PathArena::shrink());
    }

    let live_f = live.max(1) as f64;
    let (rib_bytes_mean, loc_rib_bytes_mean, dissem_bytes_mean) = acct.mean();
    let (legacy_loc_rib_mean, legacy_dissem_mean) = acct.legacy_mean();
    let intern_share = intern_bytes as f64 / live_f;
    let legacy_intern_share = legacy_intern_bytes(peak_cells) as f64 / live_f;
    let non_rib_bytes_mean = loc_rib_bytes_mean + dissem_bytes_mean + intern_share;
    let legacy_non_rib_bytes_mean = legacy_loc_rib_mean + legacy_dissem_mean + legacy_intern_share;
    let stats = engine.merged_stats();

    MemoryResult {
        n: p.n,
        leave_rate: p.leave_rate_per_node,
        forgetful: p.forgetful,
        availability,
        final_availability,
        cand_mean: cand_total as f64 / live_f,
        cand_max,
        rib_bytes_mean,
        loc_rib_bytes_mean,
        dissem_bytes_mean,
        intern_bytes: intern_bytes as u64,
        non_rib_bytes_mean,
        legacy_non_rib_bytes_mean,
        non_rib_reduction: legacy_non_rib_bytes_mean / non_rib_bytes_mean.max(1.0),
        dests_mean: dests_total as f64 / live_f,
        path_nodes_mean: path_nodes as f64 / live_f,
        arena_peak_cells: peak_cells,
        arena_live_cells: live_cells,
        arena_shrunk_cells: shrunk,
        repair_msgs_per_node: (stats.total_sent() - convergence_msgs) as f64 / p.n as f64,
        refreshes_sent: refreshes,
        evictions,
        topology_events: engine.topology_events(),
        peak_rss_bytes: peak_rss_bytes(),
        boot_rss_bytes: boot_rss,
        wall_secs: t0.elapsed().as_secs_f64(),
        quiesced,
    }
}

impl MemoryResult {
    /// Render as one `key=value` line (the child → parent protocol of the
    /// sweep binary; the parent renders JSON).
    pub fn to_kv_line(&self) -> String {
        format!(
            "MEMLEG n={} rate={} forgetful={} availability={:.4} final_availability={:.4} \
             cand_mean={:.1} cand_max={} rib_bytes_mean={:.0} loc_rib_bytes_mean={:.0} \
             dissem_bytes_mean={:.0} intern_bytes={} non_rib_bytes_mean={:.0} \
             legacy_non_rib_bytes_mean={:.0} non_rib_reduction={:.2} dests_mean={:.1} \
             path_nodes_mean={:.0} \
             arena_peak_cells={} arena_live_cells={} arena_shrunk_cells={} \
             repair_msgs_per_node={:.1} refreshes_sent={} evictions={} topology_events={} \
             peak_rss_bytes={} boot_rss_bytes={} wall_secs={:.2} quiesced={}",
            self.n,
            self.leave_rate,
            self.forgetful as u8,
            self.availability,
            self.final_availability,
            self.cand_mean,
            self.cand_max,
            self.rib_bytes_mean,
            self.loc_rib_bytes_mean,
            self.dissem_bytes_mean,
            self.intern_bytes,
            self.non_rib_bytes_mean,
            self.legacy_non_rib_bytes_mean,
            self.non_rib_reduction,
            self.dests_mean,
            self.path_nodes_mean,
            self.arena_peak_cells,
            self.arena_live_cells,
            self.arena_shrunk_cells,
            self.repair_msgs_per_node,
            self.refreshes_sent,
            self.evictions,
            self.topology_events,
            self.peak_rss_bytes,
            self.boot_rss_bytes,
            self.wall_secs,
            self.quiesced as u8,
        )
    }

    /// Parse a [`Self::to_kv_line`] line (child-process output).
    pub fn from_kv_line(line: &str) -> Option<MemoryResult> {
        let line = line.strip_prefix("MEMLEG ")?;
        let mut r = MemoryResult::default();
        for kv in line.split_whitespace() {
            let (k, v) = kv.split_once('=')?;
            match k {
                "n" => r.n = v.parse().ok()?,
                "rate" => r.leave_rate = v.parse().ok()?,
                "forgetful" => r.forgetful = v == "1",
                "availability" => r.availability = v.parse().ok()?,
                "final_availability" => r.final_availability = v.parse().ok()?,
                "cand_mean" => r.cand_mean = v.parse().ok()?,
                "cand_max" => r.cand_max = v.parse().ok()?,
                "rib_bytes_mean" => r.rib_bytes_mean = v.parse().ok()?,
                "loc_rib_bytes_mean" => r.loc_rib_bytes_mean = v.parse().ok()?,
                "dissem_bytes_mean" => r.dissem_bytes_mean = v.parse().ok()?,
                "intern_bytes" => r.intern_bytes = v.parse().ok()?,
                "non_rib_bytes_mean" => r.non_rib_bytes_mean = v.parse().ok()?,
                "legacy_non_rib_bytes_mean" => r.legacy_non_rib_bytes_mean = v.parse().ok()?,
                "non_rib_reduction" => r.non_rib_reduction = v.parse().ok()?,
                "dests_mean" => r.dests_mean = v.parse().ok()?,
                "path_nodes_mean" => r.path_nodes_mean = v.parse().ok()?,
                "arena_peak_cells" => r.arena_peak_cells = v.parse().ok()?,
                "arena_live_cells" => r.arena_live_cells = v.parse().ok()?,
                "arena_shrunk_cells" => r.arena_shrunk_cells = v.parse().ok()?,
                "repair_msgs_per_node" => r.repair_msgs_per_node = v.parse().ok()?,
                "refreshes_sent" => r.refreshes_sent = v.parse().ok()?,
                "evictions" => r.evictions = v.parse().ok()?,
                "topology_events" => r.topology_events = v.parse().ok()?,
                "peak_rss_bytes" => r.peak_rss_bytes = v.parse().ok()?,
                "boot_rss_bytes" => r.boot_rss_bytes = v.parse().ok()?,
                "wall_secs" => r.wall_secs = v.parse().ok()?,
                "quiesced" => r.quiesced = v == "1",
                _ => {}
            }
        }
        Some(r)
    }

    /// One JSON object literal for the sweep report (hand-rolled; the
    /// serde stand-in does not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"n\": {}, \"leave_rate\": {}, \"forgetful\": {}, \
             \"availability\": {:.4}, \"final_availability\": {:.4}, \
             \"cand_mean\": {:.1}, \"cand_max\": {}, \"sqrt_n_log_n\": {:.1}, \
             \"rib_bytes_mean\": {:.0}, \"loc_rib_bytes_mean\": {:.0}, \
             \"dissem_bytes_mean\": {:.0}, \"intern_bytes\": {}, \
             \"non_rib_bytes_mean\": {:.0}, \"legacy_non_rib_bytes_mean\": {:.0}, \
             \"non_rib_reduction\": {:.2}, \"dests_mean\": {:.1}, \
             \"path_nodes_mean\": {:.0}, \
             \"arena_peak_cells\": {}, \"arena_live_cells\": {}, \
             \"arena_shrunk_cells\": {}, \"repair_msgs_per_node\": {:.1}, \
             \"refreshes_sent\": {}, \"evictions\": {}, \"topology_events\": {}, \
             \"peak_rss_mb\": {:.1}, \"boot_rss_mb\": {:.1}, \"wall_secs\": {:.2}, \
             \"quiesced\": {} }}",
            self.n,
            self.leave_rate,
            self.forgetful,
            self.availability,
            self.final_availability,
            self.cand_mean,
            self.cand_max,
            sqrt_n_log_n(self.n),
            self.rib_bytes_mean,
            self.loc_rib_bytes_mean,
            self.dissem_bytes_mean,
            self.intern_bytes,
            self.non_rib_bytes_mean,
            self.legacy_non_rib_bytes_mean,
            self.non_rib_reduction,
            self.dests_mean,
            self.path_nodes_mean,
            self.arena_peak_cells,
            self.arena_live_cells,
            self.arena_shrunk_cells,
            self.repair_msgs_per_node,
            self.refreshes_sent,
            self.evictions,
            self.topology_events,
            self.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            self.boot_rss_bytes as f64 / (1024.0 * 1024.0),
            self.wall_secs,
            self.quiesced,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke of the leg itself: runs, quiesces, meters real state,
    /// and the kv line round-trips.
    #[test]
    fn memory_leg_runs_and_roundtrips() {
        let mut p = MemoryParams::grid_point(128, 3, 0.001, true);
        p.horizon = 200.0;
        p.probes = 2;
        let r = run_leg(&p);
        assert!(r.quiesced);
        assert!(r.topology_events > 5, "expected churn");
        assert!(r.cand_mean > 0.0 && r.cand_max > 0);
        assert!(r.evictions > 0, "forgetful leg must evict");
        assert!(r.availability > 0.8);
        // The per-component byte columns meter real state, and the legacy
        // model must price the same contents strictly higher.
        assert!(r.loc_rib_bytes_mean > 0.0 && r.dissem_bytes_mean > 0.0);
        assert!(r.intern_bytes > 0);
        assert!(r.dests_mean > 0.0);
        // The legacy layout must cost meaningfully more on the same
        // contents even at this tiny scale; the >=1.5x acceptance gate is
        // evaluated at n=4096 by the sweep (BENCH_exp_memory.json), where
        // per-entry overhead dominates the fixed costs.
        assert!(
            r.non_rib_reduction > 1.3,
            "legacy layout must cost >1.3x the view: {:.2}",
            r.non_rib_reduction
        );
        let parsed = MemoryResult::from_kv_line(&r.to_kv_line()).expect("kv parse");
        assert_eq!(parsed.n, r.n);
        assert_eq!(parsed.cand_max, r.cand_max);
        assert_eq!(parsed.forgetful, r.forgetful);
        assert_eq!(parsed.intern_bytes, r.intern_bytes);
        assert!((parsed.availability - r.availability).abs() < 1e-3);
        assert!((parsed.non_rib_bytes_mean - r.non_rib_bytes_mean).abs() < 1.0);
        assert!((parsed.dests_mean - r.dests_mean).abs() < 0.1);
        assert!(r.to_json().contains("\"sqrt_n_log_n\""));
        assert!(r.to_json().contains("\"non_rib_reduction\""));
    }

    /// The sharded leg is the same simulation: every protocol-visible
    /// gauge matches the sequential leg exactly (only arena cells and
    /// wall-clock/RSS may differ — paths crossing shards are re-interned
    /// per worker arena).
    #[test]
    fn sharded_leg_matches_sequential_protocol_numbers() {
        let mut p = MemoryParams::grid_point(128, 3, 0.001, true);
        p.horizon = 200.0;
        p.probes = 2;
        let seq = run_leg(&p);
        p.shards = 2;
        let sh = run_leg(&p);
        assert_eq!(seq.cand_max, sh.cand_max);
        assert!((seq.cand_mean - sh.cand_mean).abs() < 1e-9);
        assert!((seq.availability - sh.availability).abs() < 1e-12);
        assert!((seq.final_availability - sh.final_availability).abs() < 1e-12);
        assert_eq!(seq.topology_events, sh.topology_events);
        assert_eq!(seq.refreshes_sent, sh.refreshes_sent);
        assert_eq!(seq.evictions, sh.evictions);
        assert!((seq.repair_msgs_per_node - sh.repair_msgs_per_node).abs() < 1e-9);
        assert!((seq.rib_bytes_mean - sh.rib_bytes_mean).abs() < 1e-6);
        assert!((seq.loc_rib_bytes_mean - sh.loc_rib_bytes_mean).abs() < 1e-6);
        assert!((seq.dissem_bytes_mean - sh.dissem_bytes_mean).abs() < 1e-6);
        assert!((seq.dests_mean - sh.dests_mean).abs() < 1e-9);
        assert_eq!(seq.quiesced, sh.quiesced);
    }

    /// Forgetful keeps strictly fewer candidates than the full RIB on the
    /// same workload, with availability within 0.01.
    #[test]
    fn forgetful_leg_cuts_candidates_within_availability_budget() {
        let mk = |forgetful| {
            let mut p = MemoryParams::grid_point(192, 7, 0.0005, forgetful);
            p.horizon = 200.0;
            p.probes = 2;
            run_leg(&p)
        };
        let full = mk(false);
        let slim = mk(true);
        assert!(
            slim.cand_mean * 3.0 < full.cand_mean * 2.0,
            "forgetful {:.1} vs full {:.1} candidates/node",
            slim.cand_mean,
            full.cand_mean
        );
        assert!(
            (full.availability - slim.availability).abs() <= 0.01 + 1e-9,
            "availability diverged: full {:.4} vs forgetful {:.4}",
            full.availability,
            slim.availability
        );
        assert!(slim.cand_mean <= candidate_bound(192, 2));
    }
}
