//! Property test: compiled [`ForwardingTable`] epochs are a faithful,
//! revision-stamped snapshot of the live RIB selection column under
//! random churn.
//!
//! The harness boots a small distributed Disco network, injects a random
//! sequence of fail-stop leaves and rejoins, and at every probe time
//! compiles each active node's table from its live RIB. Invariants:
//!
//! 1. **Faithful**: for every destination the selection column holds, the
//!    compiled table returns exactly the selected next hop, and the table
//!    holds nothing else (`len` == selection count).
//! 2. **Epoch semantics**: a table retained from an earlier probe either
//!    carries the node's *current* `control_revision` — in which case it
//!    is bit-identical to a fresh compile (same keys, hops, fallback) —
//!    or `is_stale` reports the revision moved. Unchanged revision ⇒
//!    unchanged data plane, which is what lets `TablePublisher` debounce
//!    republishing on the revision stamp alone.
//! 3. **Landmark fallback**: a non-landmark node with any landmark entry
//!    compiles a usable fallback hop; the fallback landmark is one the
//!    node actually knows.

use disco_core::config::DiscoConfig;
use disco_core::forward::ForwardingTable;
use disco_core::landmark::{landmark_set, select_landmarks};
use disco_core::protocol::{DiscoProtocol, PhaseTimers};
use disco_graph::{generators, NodeId};
use disco_sim::rng::rng_for;
use disco_sim::{Engine, TopologyEvent};
use proptest::prelude::*;
use rand::Rng;

/// Compile a fresh table for node `v` and check it against the live
/// selection column, entry by entry.
fn check_faithful(proto: &DiscoProtocol, table: &ForwardingTable) {
    let mut selected = 0usize;
    proto.pv.for_each_selected(|dest, sel| {
        selected += 1;
        assert_eq!(
            table.lookup(dest),
            Some(sel.next_hop),
            "node {:?} dest {:?}: table hop diverges from RIB selection",
            table.node(),
            dest
        );
        let entry = table.entry(dest).expect("selected dest must be resident");
        assert_eq!(
            usize::from(entry.path_hops) + 1,
            sel.path.len().max(1),
            "path-length hint diverges"
        );
    });
    assert_eq!(
        table.len(),
        selected,
        "table holds destinations the selection column does not"
    );
    if !proto.pv.is_landmark() && proto.pv.landmark_entries().next().is_some() {
        let (lm, hop) = table
            .fallback()
            .expect("non-landmark with landmark entries must compile a fallback");
        assert!(
            proto
                .pv
                .landmark_entries()
                .any(|(&l, e)| l == lm && e.next_hop == hop),
            "fallback must be a known landmark route"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn compiled_epochs_track_the_selection_column(
        seed in 0u64..1_000_000,
        n in 24usize..56,
        churn_events in 1usize..5,
    ) {
        let graph = generators::gnm_average_degree(n, 6.0, seed);
        let dcfg = DiscoConfig::seeded(seed).with_dynamic_n_estimation(false);
        let landmarks = select_landmarks(n, &dcfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&graph, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &dcfg, PhaseTimers::default())
        });
        prop_assert!(engine.run().converged, "initial convergence failed");

        // Inject random fail-stop leaves, each followed by a rejoin with
        // the node's original links.
        let mut rng = rng_for(seed, 0xf05d, 0);
        let start = engine.now();
        let mut last = start;
        for k in 0..churn_events {
            let victim = NodeId(rng.gen_range(0..n));
            let t = start + 5.0 * (k as f64 + rng.gen::<f64>());
            let links: Vec<_> = graph
                .neighbors(victim)
                .iter()
                .map(|nb| (nb.node, nb.weight))
                .collect();
            engine.schedule_topology(t, TopologyEvent::NodeLeave { node: victim });
            let back = t + 3.0 + 10.0 * rng.gen::<f64>();
            engine.schedule_topology(back, TopologyEvent::NodeJoin { node: victim, links });
            last = last.max(back);
        }

        // Probe mid-churn and after quiescence. Tables retained from the
        // previous probe must either still carry the current revision and
        // compile identically, or report stale.
        let mut retained: Vec<Option<ForwardingTable>> = (0..n).map(|_| None).collect();
        let probes = [start + 4.0, start + 11.0, last + 1.0, f64::INFINITY];
        for &t in &probes {
            if t.is_finite() {
                engine.run_to(t);
            } else {
                engine.run_until(|_| false);
            }
            for (v, slot) in retained.iter_mut().enumerate() {
                if !engine.is_active(NodeId(v)) {
                    *slot = None;
                    continue;
                }
                let proto = &engine.nodes()[v];
                let mut fresh = ForwardingTable::new(NodeId(v));
                proto.compile_forwarding_into(&mut fresh);
                check_faithful(proto, &fresh);
                let rev = proto.pv.selection_revision();
                if let Some(old) = slot {
                    if old.is_stale(rev) {
                        prop_assert_ne!(old.revision(), rev);
                    } else {
                        // Same revision ⇒ the epochs are interchangeable.
                        prop_assert_eq!(old.keys(), fresh.keys(), "node {}", v);
                        prop_assert_eq!(old.fallback(), fresh.fallback());
                        let mut same_hops = true;
                        proto.pv.for_each_selected(|dest, _| {
                            same_hops &= old.lookup(dest) == fresh.lookup(dest);
                        });
                        prop_assert!(
                            same_hops,
                            "same revision but different next hops at node {}",
                            v
                        );
                    }
                }
                *slot = Some(fresh);
            }
        }
    }
}
