//! Property test: the [`RibStore`] protocol — select, withdraw, evict,
//! refresh — and its derived Loc-RIB *view* (the per-destination selection
//! column) agree with a naive full-RIB reference model over random update
//! sequences, in both full and forgetful modes.
//!
//! The harness mirrors how `PathVectorNode` drives the store since the
//! Loc-RIB became a view: the selection lives *in* the store (written via
//! `select` / `select_best`, read via `selected_view`), budget enforcement
//! runs after inserts, and a refresh is answered from the reference model
//! the way neighbors answer from their tables. The naive model tracks its
//! own best-route selection; invariants checked after every operation:
//!
//! 1. the store never *loses* a destination the full RIB can still reach
//!    (in forgetful mode, refresh recovers it within the same step),
//! 2. any selected candidate is one the full model also holds, verbatim
//!    (the selection column is a faithful cache of a real candidate),
//! 3. the per-destination candidate budget is respected (forgetful mode),
//! 4. the derived Loc-RIB view equals the model's best selection — after
//!    *every* op in full mode, and after a settle round (every neighbor
//!    re-announces, as their periodic table-change exports would) in
//!    forgetful mode.

use disco_core::rib::{Candidate, RibStore};
use disco_graph::{InternedPath, NodeId, Weight};
use proptest::prelude::*;
use std::collections::BTreeMap;

const ME: usize = 0;
const ALTERNATES: usize = 1;

fn better(a: &Candidate, b: &Candidate) -> bool {
    if a.dist + 1e-12 < b.dist {
        return true;
    }
    if b.dist + 1e-12 < a.dist {
        return false;
    }
    a.path.cmp_route(&b.path) == std::cmp::Ordering::Less
}

/// Naive reference: every candidate ever announced and not withdrawn,
/// with best-route selection recomputed from scratch on demand.
#[derive(Default)]
struct FullRib {
    cands: BTreeMap<(NodeId, NodeId), Candidate>, // (nbr, dest) → candidate
}

impl FullRib {
    fn best(&self, d: NodeId) -> Option<(NodeId, &Candidate)> {
        self.cands
            .iter()
            .filter(|((_, dest), _)| *dest == d)
            .fold(None, |acc, ((nbr, _), c)| match acc {
                Some((_, bc)) if !better(c, bc) => acc,
                _ => Some((*nbr, c)),
            })
    }

    fn for_dest(&self, d: NodeId) -> Vec<(NodeId, Candidate)> {
        self.cands
            .iter()
            .filter(|((_, dest), _)| *dest == d)
            .map(|((nbr, _), c)| (*nbr, c.clone()))
            .collect()
    }
}

/// The driven side, exercised exactly like `PathVectorNode` drives its
/// store: the selection column is the only best-route state (no shadow
/// map), enforcement after inserts when forgetful, refresh on total loss
/// when the evicted flag is set.
struct Driven {
    rib: RibStore,
    forgetful: bool,
    refreshes: u64,
}

impl Driven {
    fn keep(d: NodeId) -> usize {
        // Stand-in for table residency (landmarks + vicinity): even
        // destinations are "resident" and keep alternates, odd ones keep
        // the selected route alone.
        if d.0.is_multiple_of(2) {
            1 + ALTERNATES
        } else {
            1
        }
    }

    fn reselect(&mut self, d: NodeId, model: &FullRib) {
        if !self.rib.select_best(d) {
            // Total loss: re-solicit if the policy forgot candidates.
            if self.rib.take_evicted(d) {
                self.refreshes += 1;
                for (nbr, c) in model.for_dest(d) {
                    self.insert(nbr, d, c, model);
                }
            }
        }
    }

    fn insert(&mut self, nbr: NodeId, d: NodeId, c: Candidate, model: &FullRib) {
        let cur_hop = self.rib.selected_hop(d);
        let promote = match self.rib.selected_view(d) {
            None => true,
            Some(cur) => {
                let held = Candidate {
                    dist: cur.dist,
                    path: cur.path.clone(),
                    dest_is_landmark: cur.dest_is_landmark,
                    dest_landmark_dist: cur.dest_landmark_dist,
                };
                better(&c, &held)
            }
        };
        let flag = c.dest_is_landmark;
        self.rib.insert(nbr, d, &c);
        if promote {
            self.rib.select(d, nbr, flag);
        } else if cur_hop == Some(nbr) {
            self.reselect(d, model);
        }
        if self.forgetful {
            self.rib.enforce(d, Self::keep(d));
        }
    }

    fn remove(&mut self, nbr: NodeId, d: NodeId, model: &FullRib) {
        if self.rib.remove(nbr, d).is_some() && self.rib.selected_hop(d) == Some(nbr) {
            self.reselect(d, model);
        }
    }

    fn neighbor_down(&mut self, nbr: NodeId, model: &FullRib) {
        for (d, _) in self.rib.remove_neighbor(nbr) {
            if self.rib.selected_hop(d) == Some(nbr) {
                self.reselect(d, model);
            }
        }
    }
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn check_invariants(dr: &Driven, model: &FullRib, dests: &[NodeId], settled: bool) {
    // In full mode the incremental selection is the exact minimum at all
    // times; in forgetful mode eviction can hide the global best until a
    // settle round re-announces it.
    let view_exact = settled || !dr.forgetful;
    for &d in dests {
        let model_best = model.best(d);
        let view = dr.rib.selected_view(d);
        // (1) never lose a reachable destination.
        assert_eq!(
            model_best.is_some(),
            view.is_some(),
            "reachability diverged for {d}: model {:?} vs view {:?}",
            model_best.map(|(n, _)| n),
            view.as_ref().map(|v| v.next_hop)
        );
        if let Some(v) = &view {
            // (2) the view is a faithful cache of a real model candidate.
            let model_c = model
                .cands
                .get(&(v.next_hop, d))
                .expect("selected candidate must exist in the full model");
            assert_eq!(v.dist, model_c.dist, "stale distance for {d}");
            assert_eq!(*v.path, model_c.path, "stale path for {d}");
            // The candidate is also physically retained in the store.
            let held = dr
                .rib
                .get(v.next_hop, d)
                .expect("selected candidate in store");
            assert_eq!(held.dist, v.dist);
            assert_eq!(held.path, *v.path);
        }
        // (3) budget respected.
        if dr.forgetful {
            assert!(
                dr.rib.count_for(d) <= Driven::keep(d),
                "budget exceeded for {d}: {}",
                dr.rib.count_for(d)
            );
        }
        // (4) the derived Loc-RIB view equals the model's best selection.
        if view_exact {
            if let (Some((mn, mc)), Some(v)) = (model_best, &view) {
                assert_eq!(
                    (v.next_hop, v.dist, v.path.to_vec()),
                    (mn, mc.dist, mc.path.to_vec()),
                    "selection diverged for {d}"
                );
            }
        }
    }
}

fn run_model(seed: u64, forgetful: bool) -> u64 {
    let mut rng = seed;
    let neighbors: Vec<NodeId> = (1..=6).map(NodeId).collect();
    let dests: Vec<NodeId> = (100..116).map(NodeId).collect();
    let mut model = FullRib::default();
    let mut dr = Driven {
        rib: RibStore::new(),
        forgetful,
        refreshes: 0,
    };

    for step in 0..400 {
        let r = splitmix(&mut rng);
        let nbr = neighbors[(r % neighbors.len() as u64) as usize];
        let d = dests[((r >> 8) % dests.len() as u64) as usize];
        match (r >> 16) % 10 {
            // Announce: route me → nbr → (salt) → d, salted so
            // re-announcements change the path, not just the distance.
            0..=5 => {
                let dist = 1.0 + ((r >> 24) % 32) as Weight;
                let salt = 200 + ((r >> 32) % 8) as usize;
                let path = InternedPath::from_slice(&[NodeId(ME), nbr, NodeId(salt), d]);
                let c = Candidate {
                    dist,
                    path,
                    dest_is_landmark: false,
                    dest_landmark_dist: Weight::INFINITY,
                };
                model.cands.insert((nbr, d), c.clone());
                dr.insert(nbr, d, c, &model);
            }
            // Withdraw one candidate.
            6..=8 => {
                model.cands.remove(&(nbr, d));
                dr.remove(nbr, d, &model);
            }
            // Link loss: the neighbor's whole slab goes.
            _ => {
                model.cands.retain(|&(n, _), _| n != nbr);
                dr.neighbor_down(nbr, &model);
            }
        }
        let settle = step % 25 == 24;
        if settle {
            // Periodic exports: every neighbor re-announces its
            // current route for every destination it still has.
            let all: Vec<(NodeId, NodeId, Candidate)> = model
                .cands
                .iter()
                .map(|(&(n, dd), c)| (n, dd, c.clone()))
                .collect();
            for (n, dd, c) in all {
                dr.insert(n, dd, c, &model);
            }
        }
        check_invariants(&dr, &model, &dests, settle);
    }
    let stats = dr.rib.stats();
    assert_eq!(
        stats.selected,
        dests
            .iter()
            .filter(|&&d| dr.rib.selected_hop(d).is_some())
            .count(),
        "selection occupancy gauge out of sync"
    );
    if forgetful {
        stats.evictions
    } else {
        assert_eq!(stats.evictions, 0, "full mode must not evict");
        dr.refreshes
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 0 })]
    #[test]
    fn forgetful_rib_agrees_with_full_rib_model(seed in 0u64..1_000_000) {
        let evictions = run_model(seed, true);
        // The run must actually have exercised the forgetful machinery.
        prop_assert!(evictions > 0, "no evictions happened");
    }

    #[test]
    fn full_rib_view_is_always_the_exact_best(seed in 0u64..1_000_000) {
        let refreshes = run_model(seed, false);
        prop_assert_eq!(refreshes, 0, "full mode must never re-solicit");
    }
}
