//! Property test: the forgetful [`RibStore`] protocol — select, withdraw,
//! evict, refresh — agrees with a naive full-RIB reference model over
//! random update sequences.
//!
//! The harness mirrors how `PathVectorNode` drives the store (incremental
//! best maintenance, budget enforcement after inserts, refresh on total
//! loss with the evicted flag set) and answers each refresh from the
//! reference model, the way neighbors answer from their tables. Invariants
//! checked after every operation:
//!
//! 1. the forgetful side never *loses* a destination the full RIB can
//!    still reach (refresh recovers it within the same step),
//! 2. any selected candidate is one the full model also holds, verbatim,
//! 3. the per-destination candidate budget is respected,
//! 4. after a settle round (every neighbor re-announces, as their
//!    periodic table-change exports would), the selected route equals the
//!    full model's selection exactly.

use disco_core::rib::{Candidate, RibStore};
use disco_graph::{InternedPath, NodeId, Weight};
use proptest::prelude::*;
use std::collections::BTreeMap;

const ME: usize = 0;
const ALTERNATES: usize = 1;

fn better(a: &Candidate, b: &Candidate) -> bool {
    if a.dist + 1e-12 < b.dist {
        return true;
    }
    if b.dist + 1e-12 < a.dist {
        return false;
    }
    a.path.cmp_route(&b.path) == std::cmp::Ordering::Less
}

/// Naive reference: every candidate ever announced and not withdrawn.
#[derive(Default)]
struct FullRib {
    cands: BTreeMap<(NodeId, NodeId), Candidate>, // (nbr, dest) → candidate
}

impl FullRib {
    fn best(&self, d: NodeId) -> Option<(NodeId, &Candidate)> {
        self.cands
            .iter()
            .filter(|((_, dest), _)| *dest == d)
            .fold(None, |acc, ((nbr, _), c)| match acc {
                Some((_, bc)) if !better(c, bc) => acc,
                _ => Some((*nbr, c)),
            })
    }

    fn for_dest(&self, d: NodeId) -> Vec<(NodeId, Candidate)> {
        self.cands
            .iter()
            .filter(|((_, dest), _)| *dest == d)
            .map(|((nbr, _), c)| (*nbr, c.clone()))
            .collect()
    }
}

/// The forgetful side, driven exactly like `PathVectorNode` drives its
/// store: incremental best, enforcement after inserts, refresh on total
/// loss when the evicted flag is set.
struct Forgetful {
    rib: RibStore,
    best: BTreeMap<NodeId, NodeId>, // dest → selected neighbor
    refreshes: u64,
}

impl Forgetful {
    fn keep(d: NodeId) -> usize {
        // Stand-in for table residency (landmarks + vicinity): even
        // destinations are "resident" and keep alternates, odd ones keep
        // the selected route alone.
        if d.0.is_multiple_of(2) {
            1 + ALTERNATES
        } else {
            1
        }
    }

    fn reselect(&mut self, d: NodeId, model: &FullRib) {
        match self.rib.best_for(d) {
            Some((nbr, _)) => {
                self.best.insert(d, nbr);
            }
            None => {
                self.best.remove(&d);
                // Total loss: re-solicit if the policy forgot candidates.
                if self.rib.take_evicted(d) {
                    self.refreshes += 1;
                    for (nbr, c) in model.for_dest(d) {
                        self.insert(nbr, d, c, model);
                    }
                }
            }
        }
    }

    fn insert(&mut self, nbr: NodeId, d: NodeId, c: Candidate, model: &FullRib) {
        let promote = match self.best.get(&d).and_then(|h| self.rib.get(*h, d)) {
            None => true,
            Some(cur) => better(&c, &cur),
        };
        self.rib.insert(nbr, d, &c);
        if promote {
            self.best.insert(d, nbr);
        } else if self.best.get(&d) == Some(&nbr) {
            self.reselect(d, model);
        }
        let keep_hop = self.best.get(&d).copied();
        self.rib.enforce(d, Self::keep(d), keep_hop);
    }

    fn remove(&mut self, nbr: NodeId, d: NodeId, model: &FullRib) {
        if self.rib.remove(nbr, d).is_some() && self.best.get(&d) == Some(&nbr) {
            self.reselect(d, model);
        }
    }

    fn neighbor_down(&mut self, nbr: NodeId, model: &FullRib) {
        for (d, _) in self.rib.remove_neighbor(nbr) {
            if self.best.get(&d) == Some(&nbr) {
                self.reselect(d, model);
            }
        }
    }
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn check_invariants(fg: &Forgetful, model: &FullRib, dests: &[NodeId], settled: bool) {
    for &d in dests {
        let model_best = model.best(d);
        let fg_hop = fg.best.get(&d).copied();
        // (1) never lose a reachable destination.
        assert_eq!(
            model_best.is_some(),
            fg_hop.is_some(),
            "reachability diverged for {d}: model {:?} vs forgetful {:?}",
            model_best.map(|(n, _)| n),
            fg_hop
        );
        // (2) a selected candidate is a verbatim model candidate.
        if let Some(hop) = fg_hop {
            let held = fg.rib.get(hop, d).expect("selected candidate in store");
            let model_c = model
                .cands
                .get(&(hop, d))
                .expect("selected candidate must exist in the full model");
            assert_eq!(held.dist, model_c.dist, "stale distance for {d} via {hop}");
            assert_eq!(held.path, model_c.path, "stale path for {d} via {hop}");
        }
        // (3) budget respected.
        assert!(
            fg.rib.count_for(d) <= Forgetful::keep(d),
            "budget exceeded for {d}: {}",
            fg.rib.count_for(d)
        );
        // (4) after a settle round, selection matches the model exactly.
        if settled {
            if let (Some((mn, mc)), Some(hop)) = (model_best, fg_hop) {
                let held = fg.rib.get(hop, d).unwrap();
                assert_eq!(
                    (held.dist, held.path.to_vec()),
                    (mc.dist, mc.path.to_vec()),
                    "settled selection diverged for {d}: model via {mn}, forgetful via {hop}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 0 })]
    #[test]
    fn forgetful_rib_agrees_with_full_rib_model(seed in 0u64..1_000_000) {
        let mut rng = seed;
        let neighbors: Vec<NodeId> = (1..=6).map(NodeId).collect();
        let dests: Vec<NodeId> = (100..116).map(NodeId).collect();
        let mut model = FullRib::default();
        let mut fg = Forgetful { rib: RibStore::new(), best: BTreeMap::new(), refreshes: 0 };

        for step in 0..400 {
            let r = splitmix(&mut rng);
            let nbr = neighbors[(r % neighbors.len() as u64) as usize];
            let d = dests[((r >> 8) % dests.len() as u64) as usize];
            match (r >> 16) % 10 {
                // Announce: route me → nbr → (salt) → d, salted so
                // re-announcements change the path, not just the distance.
                0..=5 => {
                    let dist = 1.0 + ((r >> 24) % 32) as Weight;
                    let salt = 200 + ((r >> 32) % 8) as usize;
                    let path = InternedPath::from_slice(&[
                        NodeId(ME), nbr, NodeId(salt), d,
                    ]);
                    let c = Candidate {
                        dist,
                        path,
                        dest_is_landmark: false,
                        dest_landmark_dist: Weight::INFINITY,
                    };
                    model.cands.insert((nbr, d), c.clone());
                    fg.insert(nbr, d, c, &model);
                }
                // Withdraw one candidate.
                6..=8 => {
                    model.cands.remove(&(nbr, d));
                    fg.remove(nbr, d, &model);
                }
                // Link loss: the neighbor's whole slab goes.
                _ => {
                    model.cands.retain(|&(n, _), _| n != nbr);
                    fg.neighbor_down(nbr, &model);
                }
            }
            let settle = step % 25 == 24;
            if settle {
                // Periodic exports: every neighbor re-announces its
                // current route for every destination it still has.
                let all: Vec<(NodeId, NodeId, Candidate)> = model
                    .cands
                    .iter()
                    .map(|(&(n, dd), c)| (n, dd, c.clone()))
                    .collect();
                for (n, dd, c) in all {
                    fg.insert(n, dd, c, &model);
                }
            }
            check_invariants(&fg, &model, &dests, settle);
        }
        // The run must actually have exercised the forgetful machinery.
        prop_assert!(fg.rib.stats().evictions > 0, "no evictions happened");
    }
}
