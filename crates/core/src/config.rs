//! Protocol parameters.
//!
//! All constants the paper leaves as `Θ(·)` choices are gathered here so
//! experiments can sweep them. Defaults follow the paper's evaluation
//! settings (§5.1): vicinity size `⌈√(n ln n)⌉`, landmark probability
//! `√(ln n / n)`, one or three overlay fingers, "No Path Knowledge"
//! shortcutting.

use crate::shortcut::ShortcutMode;
use serde::{Deserialize, Serialize};

/// Tunable parameters for Disco / NDDisco.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoConfig {
    /// Master seed; every random decision (landmark election, finger
    /// selection, hash salt) derives from it.
    pub seed: u64,
    /// Multiplier `c` on the vicinity size `⌈c·√(n ln n)⌉`.
    pub vicinity_constant: f64,
    /// Multiplier `c` on the landmark probability `c·√(ln n / n)`.
    pub landmark_constant: f64,
    /// Number of long-distance overlay fingers per node (paper evaluates 1
    /// and 3).
    pub fingers: usize,
    /// Shortcutting heuristic applied to routes (paper default for the core
    /// protocol: [`ShortcutMode::NoPathKnowledge`]).
    pub shortcut: ShortcutMode,
    /// Whether the control plane uses forgetful routing (§4.2), which drops
    /// unused neighbor announcements and brings control state down from
    /// `Θ(δ√(n log n))` to `Θ(√(n log n))`.
    pub forgetful_routing: bool,
    /// Whether the *distributed* protocol's path-vector RIB applies the
    /// forgetful eviction policy at runtime: each destination retains only
    /// the selected route plus [`Self::forgetful_alternates`] failover
    /// candidates (table-resident destinations — landmarks and vicinity
    /// members — only; everything else keeps the selected route alone),
    /// re-soliciting forgotten alternates with route-refresh requests when
    /// a withdrawal needs them. Off by default: the recorded churn
    /// baselines keep the full per-neighbor Adj-RIB-In.
    pub forgetful_dynamic: bool,
    /// Alternate routes retained per table-resident destination when
    /// [`Self::forgetful_dynamic`] is on.
    pub forgetful_alternates: usize,
    /// Number of hash functions for consistent hashing of the name
    /// resolution database over the landmarks (§4.3, §4.5: multiple hash
    /// functions reduce the load imbalance).
    pub resolution_hash_functions: usize,
    /// Relative error injected into each node's estimate of `n`
    /// (0.0 = perfect knowledge; the paper's robustness experiment uses up
    /// to 0.6).
    pub n_estimate_error: f64,
    /// Whether the *distributed* protocol runs synopsis-diffusion gossip
    /// (§4.1) and re-derives its parameters from the live estimate of `n`:
    /// vicinity capacity tracks `⌈c·√(n̂ ln n̂)⌉` and landmark status is
    /// re-drawn under the ×2 hysteresis rule of §4.2. On by default — the
    /// paper's protocol estimates `n` live; pass
    /// [`Self::with_dynamic_n_estimation`]`(false)` (or `--static-n` on
    /// the bench binaries) to pin nodes to their construction-time
    /// estimate instead.
    pub dynamic_n_estimation: bool,
}

impl Default for DiscoConfig {
    fn default() -> Self {
        DiscoConfig {
            seed: 0,
            vicinity_constant: 1.0,
            landmark_constant: 1.0,
            fingers: 1,
            shortcut: ShortcutMode::NoPathKnowledge,
            forgetful_routing: true,
            forgetful_dynamic: false,
            forgetful_alternates: 2,
            resolution_hash_functions: 8,
            n_estimate_error: 0.0,
            dynamic_n_estimation: true,
        }
    }
}

impl DiscoConfig {
    /// Default configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        DiscoConfig {
            seed,
            ..Default::default()
        }
    }

    /// Builder-style: set the number of overlay fingers.
    pub fn with_fingers(mut self, fingers: usize) -> Self {
        self.fingers = fingers;
        self
    }

    /// Builder-style: set the shortcutting heuristic.
    pub fn with_shortcut(mut self, mode: ShortcutMode) -> Self {
        self.shortcut = mode;
        self
    }

    /// Builder-style: set the injected error on the estimate of `n`.
    pub fn with_n_estimate_error(mut self, error: f64) -> Self {
        self.n_estimate_error = error;
        self
    }

    /// Builder-style: enable live `n`-estimation in the distributed
    /// protocol (synopsis gossip + parameter re-derivation).
    pub fn with_dynamic_n_estimation(mut self, enabled: bool) -> Self {
        self.dynamic_n_estimation = enabled;
        self
    }

    /// Builder-style: enable forgetful eviction in the distributed
    /// protocol's path-vector RIB (§4.2).
    pub fn with_forgetful_dynamic(mut self, enabled: bool) -> Self {
        self.forgetful_dynamic = enabled;
        self
    }

    /// Builder-style: set the forgetful alternate budget.
    pub fn with_forgetful_alternates(mut self, alternates: usize) -> Self {
        self.forgetful_alternates = alternates;
        self
    }

    /// Target vicinity size for a network believed to contain `n` nodes:
    /// `⌈c·√(n ln n)⌉`, clamped to at least 2 and at most `n`.
    pub fn vicinity_size(&self, n: usize) -> usize {
        let n = n.max(2);
        let raw = self.vicinity_constant * ((n as f64) * (n as f64).ln()).sqrt();
        (raw.ceil() as usize).clamp(2, n)
    }

    /// Probability with which a node elects itself landmark:
    /// `c·√(ln n / n)`, clamped to (0, 1].
    pub fn landmark_probability(&self, n: usize) -> f64 {
        let n = n.max(2);
        (self.landmark_constant * ((n as f64).ln() / n as f64).sqrt()).clamp(1e-12, 1.0)
    }

    /// The sloppy-group prefix length `k = ⌊log2(√n / ln n)⌋`, clamped to
    /// `[0, 63]` (paper §4.4). With this choice a group contains
    /// `Θ(√n·log n)` nodes in expectation.
    pub fn group_prefix_bits(&self, n: usize) -> u32 {
        let n = (n.max(4)) as f64;
        let ratio = n.sqrt() / n.ln();
        if ratio <= 1.0 {
            0
        } else {
            (ratio.log2().floor() as u32).min(63)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = DiscoConfig::default();
        assert_eq!(c.fingers, 1);
        assert_eq!(c.shortcut, ShortcutMode::NoPathKnowledge);
        assert!(c.forgetful_routing);
        assert_eq!(c.n_estimate_error, 0.0);
    }

    #[test]
    fn vicinity_size_scales_like_sqrt_n_log_n() {
        let c = DiscoConfig::default();
        let v1k = c.vicinity_size(1024);
        let v4k = c.vicinity_size(4096);
        // ratio should be near sqrt(4 * ln(4096)/ln(1024)) ≈ 2.19
        let ratio = v4k as f64 / v1k as f64;
        assert!(ratio > 1.8 && ratio < 2.6, "ratio {ratio}");
        assert!((80..=130).contains(&v1k), "v1k {v1k}");
    }

    #[test]
    fn vicinity_size_clamped_to_n() {
        let c = DiscoConfig::default();
        assert!(c.vicinity_size(4) <= 4);
        assert!(c.vicinity_size(2) >= 2);
    }

    #[test]
    fn landmark_probability_reasonable() {
        let c = DiscoConfig::default();
        let p = c.landmark_probability(1024);
        // sqrt(ln 1024 / 1024) ≈ 0.0823
        assert!((p - 0.0823).abs() < 0.01, "p {p}");
        assert!(c.landmark_probability(2) <= 1.0);
    }

    #[test]
    fn group_prefix_bits_track_group_size() {
        let c = DiscoConfig::default();
        let k = c.group_prefix_bits(16_384);
        // sqrt(16384)/ln(16384) = 128/9.70 ≈ 13.2 → k = 3
        assert_eq!(k, 3);
        // Expected group size n / 2^k should be Θ(√n log n).
        let group = 16_384.0 / f64::powi(2.0, k as i32);
        assert!(group > 1000.0 && group < 3000.0);
        // Tiny networks degrade to a single group.
        assert_eq!(c.group_prefix_bits(8), 0);
    }

    #[test]
    fn builder_methods() {
        let c = DiscoConfig::seeded(9)
            .with_fingers(3)
            .with_shortcut(ShortcutMode::None)
            .with_n_estimate_error(0.4);
        assert_eq!(c.seed, 9);
        assert_eq!(c.fingers, 3);
        assert_eq!(c.shortcut, ShortcutMode::None);
        assert!((c.n_estimate_error - 0.4).abs() < 1e-12);
    }
}
