//! The distributed Disco protocol for the discrete-event simulator
//! (paper §5.1, "custom discrete event simulator").
//!
//! [`DiscoProtocol`] composes the pieces of §4 into one per-node state
//! machine:
//!
//! 1. **Phase 0 — route learning.** The bounded path-vector protocol of
//!    [`crate::path_vector`] learns landmark routes and the vicinity.
//! 2. **Phase 1 — name resolution insert** (timer). The node source-routes
//!    an *insert* of its `(hash, address)` pair to the landmark owning its
//!    hash (§4.3).
//! 3. **Phase 2 — overlay bootstrap** (timer). The node source-routes
//!    successor / predecessor / finger *lookups* to the owning landmarks,
//!    which reply with the best matching entry they store (§4.4).
//! 4. **Phase 3 — address dissemination** (timer). The node announces its
//!    address to its overlay neighbors; announcements are forwarded inside
//!    the sloppy group following the direction rule (hash-space distance
//!    from the origin strictly increases), each overlay hop source-routed
//!    over the physical network.
//!
//! Every physical transmission — a path-vector announcement, one hop of a
//! source-routed insert, lookup, reply or overlay message — counts as one
//! message in [`disco_sim::MessageStats`]; those per-node totals are what
//! the paper's Fig. 8 plots. The phase timers stand in for the "low rate"
//! periodic refresh of the real protocol: by the time they fire, the
//! previous phase has quiesced on the topologies studied here (the engine's
//! run report still verifies global quiescence).
//!
//! One deliberate approximation: the overlay bootstrap answers successor /
//! predecessor lookups from the single owning landmark's shard, so ring
//! links that straddle a consistent-hashing arc boundary can be slightly
//! off. The *static* simulator ([`crate::static_state`]) builds the exact
//! overlay and is authoritative for all state/stretch results; this
//! distributed form is used for convergence-messaging measurements, where
//! the message counts are unaffected.

use crate::config::DiscoConfig;
use crate::estimate_n::Synopsis;
use crate::forward::ForwardingTable;
use crate::hash::{NameHash, NameHasher};
use crate::landmark::LandmarkStatus;
use crate::name::FlatName;
use crate::path_vector::{Announcement, PathVectorNode, TableLimit};
use disco_graph::{FxHashMap, FxHashSet, InternedPath, NodeId, Weight};
use disco_sim::context::Action;
use disco_sim::rng::rng_for;
use disco_sim::{Context, Protocol};
use rand::Rng;

/// Timer tokens.
const TIMER_INSERT: u64 = 1;
const TIMER_LOOKUP: u64 = 2;
const TIMER_DISSEMINATE: u64 = 3;
const TIMER_REPAIR: u64 = 4;

/// When (in simulation time units) each phase starts. Defaults are far
/// beyond path-vector convergence on the evaluation topologies (unweighted
/// G(n,m) graphs of the sizes used have diameter ≤ ~6).
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimers {
    /// Start of the resolution-database insert.
    pub insert_at: f64,
    /// Start of the overlay successor/predecessor/finger lookups.
    pub lookup_at: f64,
    /// Start of address dissemination.
    pub disseminate_at: f64,
    /// Debounce delay between observing a neighbor change and re-running
    /// the insert / lookup / dissemination phases to repair higher-layer
    /// state. Long enough for the path-vector layer to re-converge first
    /// on the evaluation topologies.
    pub repair_delay: f64,
}

impl Default for PhaseTimers {
    fn default() -> Self {
        PhaseTimers {
            insert_at: 50.0,
            lookup_at: 80.0,
            disseminate_at: 110.0,
            repair_delay: 60.0,
        }
    }
}

/// A node's address as carried in protocol messages: the landmark plus the
/// node path `landmark ; node` (the compact label form is an encoding
/// detail; the simulator carries the node list and accounts bytes
/// accordingly).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAddress {
    /// The owning node.
    pub node: NodeId,
    /// Its closest landmark.
    pub landmark: NodeId,
    /// Node path from the landmark to the node (interned: copying an
    /// address into a resolution store or a group announcement is a
    /// reference-count bump).
    pub path: InternedPath,
}

/// What an overlay lookup is asking for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupKind {
    /// First stored entry clockwise of the target (successor semantics).
    Successor,
    /// First stored entry counter-clockwise of the target (predecessor).
    Predecessor,
    /// Stored entry with minimum ring distance to the target (fingers).
    Closest,
}

/// Payload delivered at the end of a source-routed transport.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Store `(hash, address)` in the resolution database (handled by
    /// landmarks).
    ResolutionInsert {
        hash: NameHash,
        address: WireAddress,
    },
    /// Ask the owning landmark for a stored entry relative to `target`.
    OverlayLookup {
        target: NameHash,
        kind: LookupKind,
        exclude: NodeId,
        reply_route: InternedPath,
        /// Which overlay slot the requester fills with the answer
        /// (0 = successor, 1 = predecessor, 2.. = fingers).
        slot: usize,
    },
    /// Reply to an [`Payload::OverlayLookup`].
    OverlayReply {
        slot: usize,
        hash: NameHash,
        address: WireAddress,
    },
    /// An address announcement disseminated within the sloppy group.
    /// `up` is the direction of travel in hash space (`None` at the origin).
    GroupAnnouncement {
        origin_hash: NameHash,
        address: WireAddress,
        up: Option<bool>,
    },
}

/// Messages of the distributed Disco protocol.
#[derive(Debug, Clone)]
pub enum DiscoMsg {
    /// Path-vector route announcement (phase 0).
    Route(Announcement),
    /// One hop of a source-routed message; `route` is the remaining path
    /// and starts with the node currently holding the message. Peeling a
    /// hop off an interned path is O(1) and allocation-free.
    Forward {
        route: InternedPath,
        payload: Payload,
    },
    /// Synopsis-diffusion gossip (§4.1): the sender's current union of FM
    /// sketches. Only exchanged when
    /// [`DiscoConfig::dynamic_n_estimation`] is on.
    Gossip(Synopsis),
}

/// Per-node state of the distributed Disco protocol.
pub struct DiscoProtocol {
    /// The embedded path-vector machinery (landmarks + vicinity).
    pub pv: PathVectorNode,
    cfg: DiscoConfig,
    timers: PhaseTimers,
    name: FlatName,
    hasher: NameHasher,
    my_hash: NameHash,
    /// Resolution entries stored here (landmarks only).
    pub resolution_store: FxHashMap<NameHash, WireAddress>,
    /// Overlay neighbors learned in phase 2, indexed by slot
    /// (0 = successor, 1 = predecessor, 2.. = fingers). Slots are dense and
    /// few (`2 + fingers`), so a flat vector replaces the former
    /// `HashMap<usize, _>` — smaller, and iteration is slot-ordered and
    /// deterministic.
    pub overlay_neighbors: Vec<Option<(NameHash, WireAddress)>>,
    /// Addresses of sloppy-group members learned through dissemination,
    /// keyed on the compact 4-byte member id (the same u32 destination
    /// keys the path-vector mirrors use).
    pub group_addresses: FxHashMap<u32, WireAddress>,
    /// `(origin << 1) | direction` keys of announcements this node has
    /// already forwarded — suppresses duplicate floods. The former
    /// `HashMap<(NodeId, bool), bool>` spent ~18 B per always-`true` entry
    /// plus SipHash; this is a compact 8-byte-key `FxHashSet`.
    forwarded: FxHashSet<u64>,
    /// This node's estimate of the network size (live when
    /// `dynamic_n_estimation` is on, otherwise the construction-time
    /// value).
    n_estimate: usize,
    /// Synopsis union for live `n`-estimation (this node's sketch merged
    /// with everything gossiped to it).
    synopsis: Synopsis,
    /// This node's own FM sketch, kept pristine so a synopsis epoch reset
    /// can restart the union from it (the union itself is monotone).
    my_sketch: Synopsis,
    /// Set when a neighbor went down: the next repair pass starts a new
    /// synopsis epoch so departed nodes' sketch contributions age out and
    /// the estimate of `n` can fall. Carries the epoch observed at request
    /// time — if gossip has already moved us to a newer epoch by the time
    /// the repair runs, that epoch was started after the departure and no
    /// further reset is needed.
    epoch_reset_wanted: Option<u64>,
    /// Lower bound applied to the live estimate: set to half the previous
    /// estimate at each epoch reset, so a reset decays the estimate at
    /// most ×2 per epoch instead of collapsing the vicinity cap to the
    /// own-sketch estimate (~1) while the new epoch's union is still
    /// flooding.
    estimate_floor: usize,
    /// Simulation time at which this node last started or adopted a
    /// synopsis epoch. The floor-decay chain in `do_repair` only judges an
    /// epoch's union "too small" (and starts another halving epoch) once
    /// the epoch is at least a repair-delay old — gossip floods in a few
    /// time units, so by then the union has converged. Without the age
    /// guard, repair passes firing mid-flood see a young union, bump a
    /// fresh epoch, and the network chases its own tail forever.
    epoch_started: f64,
    /// Landmark status under the ×2 hysteresis re-election rule; only
    /// consulted when `dynamic_n_estimation` is on.
    lm_status: LandmarkStatus,
    /// Whether a repair pass is already scheduled (debounce).
    repair_pending: bool,
    /// Set once the initial phases have run; address-change repair only
    /// makes sense after there is address-derived state to repair.
    bootstrapped: bool,
    /// Completed repair passes (diagnostics).
    repair_epoch: u64,
    /// Consecutive failed emergency-election attempts while no landmark is
    /// reachable; salts the election RNG and doubles its probability per
    /// attempt. Reset whenever a landmark is known.
    election_attempts: u64,
    /// Recycled action buffer for the embedded path-vector context
    /// ([`Self::run_pv`]): the inner upcall records into this scratch and
    /// the translation loop drains it in place, so composing the two
    /// protocols costs no per-upcall allocation.
    pv_scratch: Vec<Action<Announcement>>,
}

impl DiscoProtocol {
    /// Create the protocol instance for `id`. `is_landmark` is the node's
    /// locally drawn landmark status and `n_estimate` its estimate of the
    /// network size.
    pub fn new(
        id: NodeId,
        is_landmark: bool,
        n_estimate: usize,
        cfg: &DiscoConfig,
        timers: PhaseTimers,
    ) -> Self {
        let name = FlatName::synthetic(id.0);
        let hasher = NameHasher::new(cfg.seed ^ 0x510f);
        let my_hash = hasher.hash_name(&name);
        let vicinity = cfg.vicinity_size(n_estimate);
        let synopsis = Synopsis::for_node(id, cfg.seed);
        let lm_status = LandmarkStatus::assumed(id, is_landmark, n_estimate);
        let mut pv =
            PathVectorNode::new(id, is_landmark, TableLimit::VicinityCap { size: vicinity });
        // Live estimation is the only mode in which landmarks step down,
        // and a demotion can only propagate when the flag follows the
        // selected route instead of the monotone OR-merge.
        pv.set_origin_landmark_flags(cfg.dynamic_n_estimation);
        // Forgetful routing (§4.2): bound the per-destination candidate
        // sets, re-soliciting evicted alternates on demand.
        if cfg.forgetful_dynamic {
            pv.set_forgetful_rib(Some(cfg.forgetful_alternates));
        }
        DiscoProtocol {
            pv,
            my_sketch: synopsis.clone(),
            synopsis,
            epoch_reset_wanted: None,
            estimate_floor: 0,
            epoch_started: 0.0,
            lm_status,
            cfg: cfg.clone(),
            timers,
            name,
            hasher,
            my_hash,
            resolution_store: FxHashMap::default(),
            overlay_neighbors: vec![None; 2 + cfg.fingers],
            group_addresses: FxHashMap::default(),
            forwarded: FxHashSet::default(),
            n_estimate,
            repair_pending: false,
            bootstrapped: false,
            repair_epoch: 0,
            election_attempts: 0,
            pv_scratch: Vec::new(),
        }
    }

    /// This node's flat name.
    pub fn name(&self) -> &FlatName {
        &self.name
    }

    /// This node's position on the hash ring.
    pub fn my_hash(&self) -> NameHash {
        self.my_hash
    }

    /// This node's current estimate of the network size. Tracks the
    /// synopsis-diffusion union when [`DiscoConfig::dynamic_n_estimation`]
    /// is on; otherwise stays at the construction-time value.
    pub fn live_estimate(&self) -> usize {
        self.n_estimate
    }

    /// Landmark status under the ×2 hysteresis re-election rule.
    pub fn landmark_status(&self) -> &LandmarkStatus {
        &self.lm_status
    }

    /// The synopsis reset epoch this node's estimate is based on (0 until
    /// a departure triggers the first reset).
    pub fn synopsis_epoch(&self) -> u64 {
        self.synopsis.epoch()
    }

    /// Compact `forwarded` key: origin id and direction packed into 8
    /// bytes.
    #[inline]
    fn fwd_key(origin: NodeId, up: bool) -> u64 {
        ((origin.0 as u64) << 1) | up as u64
    }

    /// Record an overlay neighbor in its slot (growing the slot vector if
    /// a reply outruns the configured finger count).
    fn set_overlay_slot(&mut self, slot: usize, entry: (NameHash, WireAddress)) {
        if slot >= self.overlay_neighbors.len() {
            self.overlay_neighbors.resize(slot + 1, None);
        }
        self.overlay_neighbors[slot] = Some(entry);
    }

    /// Overlay neighbors currently known (filled slots).
    pub fn overlay_neighbor_count(&self) -> usize {
        self.overlay_neighbors.iter().flatten().count()
    }

    /// The sloppy-group address stored for `member`, if any.
    pub fn group_address(&self, member: NodeId) -> Option<&WireAddress> {
        self.group_addresses.get(&(member.0 as u32))
    }

    /// Approximate heap bytes of the dissemination bookkeeping — the
    /// "dissemination bytes" column of `exp_memory`'s per-component
    /// accounting: the sloppy-group address store, the overlay slots and
    /// the forwarded-announcement dedup set. The resolution shard (§4.3
    /// application state, landmarks only) is deliberately excluded: its
    /// layout is entry-count-driven either way and would dilute the
    /// bookkeeping signal. `WireAddress` paths are interned arena cells,
    /// accounted by the arena.
    pub fn dissemination_bytes(&self) -> usize {
        const ADDR: usize = std::mem::size_of::<WireAddress>();
        // Hash structures are priced at their real SwissTable allocation —
        // `capacity()` is 7/8 of the bucket array, each bucket paying its
        // payload plus one control byte — the same model the legacy-layout
        // comparison uses, so the before/after ratio reflects layout, not
        // accounting asymmetry.
        let group_buckets = self.group_addresses.capacity() * 8 / 7;
        let fwd_buckets = self.forwarded.capacity() * 8 / 7;
        group_buckets * (4 + ADDR + 1)
            + self.overlay_neighbors.capacity() * (8 + ADDR + 8)
            + fwd_buckets * (8 + 1)
    }

    /// Live entry counts behind [`Self::dissemination_bytes`], for the
    /// byte-model accounting in `disco-metrics::control`:
    /// `(group addresses, filled overlay slots, forwarded keys)`. The
    /// overlay count is *filled* slots — the legacy `HashMap<usize, _>`
    /// held only those.
    pub fn dissemination_counts(&self) -> (usize, usize, usize) {
        (
            self.group_addresses.len(),
            self.overlay_neighbor_count(),
            self.forwarded.len(),
        )
    }

    /// Send this node's synopsis union to one neighbor.
    fn gossip_to(&self, peer: NodeId, ctx: &mut Context<'_, DiscoMsg>) {
        ctx.send_sized(
            peer,
            DiscoMsg::Gossip(self.synopsis.clone()),
            self.synopsis.wire_bytes(),
        );
    }

    /// Flood this node's synopsis union to every neighbor (one
    /// engine-expanded flood action).
    fn gossip_flood(&self, ctx: &mut Context<'_, DiscoMsg>) {
        ctx.flood_sized(
            DiscoMsg::Gossip(self.synopsis.clone()),
            self.synopsis.wire_bytes(),
        );
    }

    /// Flood path-vector announcements (a landmark promotion) to every
    /// neighbor, wrapped as [`DiscoMsg::Route`] — one flood action per
    /// announcement, replicated by the engine at the adjacency walk.
    fn flood_route_announcements(anns: &[Announcement], ctx: &mut Context<'_, DiscoMsg>) {
        for ann in anns {
            let size = crate::path_vector::announcement_bytes(ann);
            ctx.flood_sized(DiscoMsg::Route(ann.clone()), size);
        }
    }

    /// Re-derive the estimate-dependent parameters from the current
    /// synopsis union (§4.1 / §4.2): vicinity capacity follows
    /// `⌈c·√(n̂ ln n̂)⌉` immediately; landmark status is re-drawn only when
    /// the estimate moved ×2 past the last decision (hysteresis), and a
    /// flip floods the promotion — or exports the demotion — and schedules
    /// a repair pass, since consistent-hashing ownership reshuffles.
    fn apply_estimate(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        let raw = (self.synopsis.estimate().round() as usize).max(2);
        // Once the epoch's union regrows past the halving floor, the floor
        // has served its purpose (shielding the transient while the epoch
        // flooded) and is released; while the union stays below it — the
        // network genuinely shrank by more than ×2 — the floor holds, and
        // the next repair pass starts another epoch to decay one more
        // halving step (see `do_repair`).
        if self.estimate_floor != 0 && raw >= self.estimate_floor {
            self.estimate_floor = 0;
        }
        let est = raw.max(self.estimate_floor);
        if est == self.n_estimate {
            return;
        }
        self.n_estimate = est;
        self.pv.set_vicinity_cap(self.cfg.vicinity_size(est));
        if self.lm_status.update_estimate(est, &self.cfg) {
            if self.lm_status.is_landmark() {
                let anns = self.pv.promote_to_landmark();
                Self::flood_route_announcements(&anns, ctx);
            } else {
                self.pv.demote_from_landmark();
            }
            if self.bootstrapped {
                self.schedule_repair(ctx);
            }
        }
        // The resize / demotion above queued table changes in the
        // path-vector's pending set; arm its batch flush so they are
        // exported even when no route traffic is flowing (a gossip sketch
        // can arrive long after the route plane quiesced).
        self.run_pv(|pv, c| pv.export_pending(c), ctx);
    }

    /// This node's current address (closest landmark + path), if a landmark
    /// route has been learned.
    pub fn my_address(&self) -> Option<WireAddress> {
        let id = self.pv.id();
        if self.pv.is_landmark() {
            return Some(WireAddress {
                node: id,
                landmark: id,
                path: InternedPath::single(id),
            });
        }
        let (lm, entry) = self.pv.landmark_entries().min_by(|a, b| {
            a.1.dist
                .partial_cmp(&b.1.dist)
                .unwrap()
                .then_with(|| a.0.cmp(b.0))
        })?;
        Some(WireAddress {
            node: id,
            landmark: *lm,
            path: entry.path.reversed(), // entry.path runs node → landmark
        })
    }

    /// The landmark responsible for `hash` according to this node's current
    /// view of the landmark set (first landmark position clockwise of the
    /// hash — standard consistent hashing). Public for the same reason as
    /// [`DiscoProtocol::route_to`].
    pub fn owner_landmark(&self, hash: NameHash) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        for (&lm, _) in self.pv.landmark_entries() {
            let pos = self.hasher.hash_u64(lm.0 as u64);
            let d = hash.clockwise_distance(pos);
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, lm)),
            }
        }
        best.map(|(_, lm)| lm)
    }

    /// Compile this node's data plane into `out` (see [`crate::forward`]):
    /// the RIB's selection column flattened into the sorted key/next-hop
    /// arrays, the landmark ring at this node's hash positions, and the
    /// landmark-fallback entry (next hop toward the closest landmark,
    /// [`DiscoProtocol::my_address`]'s tie rule). Read-only over the RIB —
    /// the control plane cannot observe that a compile happened — and
    /// stamped with [`PathVectorNode::selection_revision`] so
    /// [`crate::forward::TablePublisher`] republishes exactly when
    /// selections actually moved.
    pub fn compile_forwarding_into(&self, out: &mut ForwardingTable) {
        out.begin(self.pv.id(), self.pv.selection_revision());
        self.pv.for_each_selected(|dest, sel| {
            // Hop count of the selected path = the label this entry
            // resolves to (path nodes minus the node itself).
            out.push_route(dest, sel.next_hop, sel.path.len().saturating_sub(1));
        });
        let mut fallback: Option<(Weight, NodeId, NodeId)> = None;
        for (&lm, entry) in self.pv.landmark_entries() {
            out.push_landmark(self.hasher.hash_u64(lm.0 as u64).value(), lm);
            let better = match fallback {
                Some((bd, blm, _)) => (entry.dist, lm) < (bd, blm),
                None => true,
            };
            if better {
                fallback = Some((entry.dist, lm, entry.next_hop));
            }
        }
        if !self.pv.is_landmark() {
            if let Some((_, lm, hop)) = fallback {
                out.set_fallback(lm, hop);
            }
        }
        out.seal();
    }

    /// Full path from this node to `target` using learned routes: a table
    /// route if present, otherwise through the target's address. Public so
    /// `disco-dynamics` probes can measure routability under churn exactly
    /// as the protocol itself would forward.
    pub fn route_to(
        &self,
        target: NodeId,
        target_addr: Option<&WireAddress>,
    ) -> Option<InternedPath> {
        if target == self.pv.id() {
            return Some(InternedPath::single(self.pv.id()));
        }
        if let Some(entry) = self.pv.table.get(&target) {
            return Some(entry.path.clone());
        }
        let addr = target_addr?;
        let lm_entry = self.pv.table.get(&addr.landmark)?;
        // `lm_entry.path` ends at the landmark, where the address route
        // starts; the concatenation shares the address suffix.
        Some(lm_entry.path.concat(&addr.path))
    }

    /// Send `payload` along `route` (this node first). The next hop is
    /// resolved once (validation and scheduling share the lookup).
    fn send_along(&self, route: InternedPath, payload: Payload, ctx: &mut Context<'_, DiscoMsg>) {
        let Some(remaining) = route.tail() else {
            return;
        };
        let Some(next) = ctx.neighbor(remaining.first()) else {
            return; // stale route; drop
        };
        let size = 16 + 4 * remaining.len() + payload_bytes(&payload);
        ctx.send_resolved(
            next,
            DiscoMsg::Forward {
                route: remaining,
                payload,
            },
            size,
        );
    }

    /// Answer an overlay lookup from this node's resolution store.
    fn answer_lookup(
        &self,
        target: NameHash,
        kind: LookupKind,
        exclude: NodeId,
    ) -> Option<(NameHash, WireAddress)> {
        self.resolution_store
            .iter()
            .filter(|(_, a)| a.node != exclude)
            .min_by_key(|(&h, _)| match kind {
                LookupKind::Successor => target.clockwise_distance(h),
                LookupKind::Predecessor => h.clockwise_distance(target),
                LookupKind::Closest => h.ring_distance(target),
            })
            .map(|(&h, a)| (h, a.clone()))
    }

    /// Handle a payload that has reached this node.
    fn deliver(&mut self, payload: Payload, ctx: &mut Context<'_, DiscoMsg>) {
        match payload {
            Payload::ResolutionInsert { hash, address } => {
                self.resolution_store.insert(hash, address);
            }
            Payload::OverlayLookup {
                target,
                kind,
                exclude,
                reply_route,
                slot,
            } => {
                if let Some((h, addr)) = self.answer_lookup(target, kind, exclude) {
                    self.send_along(
                        reply_route,
                        Payload::OverlayReply {
                            slot,
                            hash: h,
                            address: addr,
                        },
                        ctx,
                    );
                }
            }
            Payload::OverlayReply {
                slot,
                hash,
                address,
            } => {
                if address.node != self.pv.id() {
                    self.set_overlay_slot(slot, (hash, address));
                }
            }
            Payload::GroupAnnouncement {
                origin_hash,
                address,
                up,
            } => {
                let origin = address.node;
                if origin == self.pv.id() {
                    return;
                }
                let k = self.cfg.group_prefix_bits(self.n_estimate);
                if origin_hash.prefix(k) == self.my_hash.prefix(k) {
                    self.group_addresses
                        .insert(origin.0 as u32, address.clone());
                }
                let directions: Vec<bool> = match up {
                    Some(d) => vec![d],
                    None => vec![true, false],
                };
                for d in directions {
                    if !self.forwarded.insert(Self::fwd_key(origin, d)) {
                        continue;
                    }
                    self.forward_announcement(origin_hash, &address, d, ctx);
                }
            }
        }
    }

    /// Forward an announcement to all overlay neighbors in direction `up`.
    fn forward_announcement(
        &self,
        origin_hash: NameHash,
        address: &WireAddress,
        up: bool,
        ctx: &mut Context<'_, DiscoMsg>,
    ) {
        let k = self.cfg.group_prefix_bits(self.n_estimate);
        for (nb_hash, nb_addr) in self.overlay_neighbors.iter().flatten() {
            if nb_hash.prefix(k) != self.my_hash.prefix(k) {
                continue; // keep the announcement inside the group
            }
            let goes_up = nb_hash.value() > self.my_hash.value();
            if goes_up != up {
                continue;
            }
            if let Some(route) = self.route_to(nb_addr.node, Some(nb_addr)) {
                self.send_along(
                    route,
                    Payload::GroupAnnouncement {
                        origin_hash,
                        address: address.clone(),
                        up: Some(up),
                    },
                    ctx,
                );
            }
        }
    }

    /// Phase 1: insert this node's address into the resolution database.
    fn do_insert(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        let Some(my_addr) = self.my_address() else {
            return;
        };
        if let Some(owner) = self.owner_landmark(self.my_hash) {
            if owner == self.pv.id() {
                self.resolution_store.insert(self.my_hash, my_addr);
            } else if let Some(route) = self.route_to(owner, None) {
                self.send_along(
                    route,
                    Payload::ResolutionInsert {
                        hash: self.my_hash,
                        address: my_addr,
                    },
                    ctx,
                );
            }
        }
    }

    /// Phase 2: look up overlay successor, predecessor and fingers.
    fn do_lookups(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        let me = self.pv.id();
        let k = self.cfg.group_prefix_bits(self.n_estimate);
        let arc_bits = 64 - k;
        let arc_size: u128 = 1u128 << arc_bits;
        let mut rng = rng_for(self.cfg.seed, 0x22, me.0 as u64);

        let mut targets: Vec<(usize, NameHash, LookupKind)> = vec![
            (
                0,
                NameHash(self.my_hash.value().wrapping_add(1)),
                LookupKind::Successor,
            ),
            (
                1,
                NameHash(self.my_hash.value().wrapping_sub(1)),
                LookupKind::Predecessor,
            ),
        ];
        for f in 0..self.cfg.fingers {
            let u: f64 = rng.gen();
            let d = (((arc_size as f64).ln() * u).exp() as u128)
                .clamp(1, arc_size.saturating_sub(1).max(1));
            let up: bool = rng.gen();
            let raw = if up {
                self.my_hash.value().wrapping_add(d as u64)
            } else {
                self.my_hash.value().wrapping_sub(d as u64)
            };
            targets.push((2 + f, NameHash(raw), LookupKind::Closest));
        }

        for (slot, target, kind) in targets {
            if let Some(owner) = self.owner_landmark(target) {
                if owner == me {
                    if let Some((h, addr)) = self.answer_lookup(target, kind, me) {
                        self.set_overlay_slot(slot, (h, addr));
                    }
                } else if let Some(route) = self.route_to(owner, None) {
                    let reply = route.reversed();
                    self.send_along(
                        route,
                        Payload::OverlayLookup {
                            target,
                            kind,
                            exclude: me,
                            reply_route: reply,
                            slot,
                        },
                        ctx,
                    );
                }
            }
        }
    }

    /// Phase 3: announce this node's address to its overlay neighbors.
    fn do_disseminate(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        let Some(my_addr) = self.my_address() else {
            return;
        };
        self.forwarded.insert(Self::fwd_key(self.pv.id(), true));
        self.forwarded.insert(Self::fwd_key(self.pv.id(), false));
        for up in [true, false] {
            self.forward_announcement(self.my_hash, &my_addr, up, ctx);
        }
    }

    /// Run one upcall of the embedded path-vector machinery and re-wrap its
    /// outgoing announcements as [`DiscoMsg::Route`]. The inner context
    /// records into this instance's recycled scratch buffer, and the
    /// relayed sends reuse the neighbor handles the inner context already
    /// resolved (same graph snapshot) — no second adjacency scan.
    fn run_pv(
        &mut self,
        upcall: impl FnOnce(&mut PathVectorNode, &mut Context<'_, Announcement>),
        ctx: &mut Context<'_, DiscoMsg>,
    ) {
        let buffer = std::mem::take(&mut self.pv_scratch);
        let mut inner: Context<'_, Announcement> =
            Context::with_buffer(ctx.node_id(), ctx.now(), ctx.graph(), 64, buffer);
        inner.set_via(ctx.via());
        upcall(&mut self.pv, &mut inner);
        let mut actions = inner.into_buffer();
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    to,
                    msg,
                    size_bytes,
                } => {
                    ctx.send_resolved(to, DiscoMsg::Route(msg), size_bytes);
                }
                Action::SendBatch { to, msgs } => {
                    let wrapped = msgs
                        .into_vec()
                        .into_iter()
                        .map(|(m, size)| (DiscoMsg::Route(m), size))
                        .collect();
                    ctx.send_batch_resolved(to, wrapped);
                }
                Action::Flood { msg, size_bytes } => {
                    ctx.flood_sized(DiscoMsg::Route(msg), size_bytes);
                }
                // Path-vector timers (the export batch flush) ride on this
                // protocol's timer space; `on_timer` routes unknown tokens
                // back into the embedded node.
                Action::Timer { delay, token } => ctx.set_timer(delay, token),
            }
        }
        self.pv_scratch = actions;
    }

    /// Debounce a repair pass: the first neighbor change arms one timer;
    /// further changes before it fires are coalesced into the same pass.
    fn schedule_repair(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        if !self.repair_pending {
            self.repair_pending = true;
            ctx.set_timer(self.timers.repair_delay, TIMER_REPAIR);
        }
    }

    /// Re-run the higher-layer phases after the path-vector layer had time
    /// to re-converge: landmark re-election if every landmark was lost,
    /// then resolution re-insert, overlay re-lookup and sloppy-group
    /// re-dissemination (the address may have changed with the topology).
    fn do_repair(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        self.repair_pending = false;
        self.repair_epoch += 1;

        // Synopsis epoch reset (§4.1 follow-on): a departure was observed,
        // and the FM union is monotone — without a reset the estimate of
        // `n` could never fall. Start a new epoch from our own sketch and
        // flood it; every node re-contributes on adoption, so the new
        // union counts live nodes only. Skipped if gossip already moved us
        // to an epoch newer than the one the departure was observed in.
        //
        // The halving floor decays one ×2 step per epoch. If the current
        // epoch's (reconverged — the flood is much faster than the repair
        // debounce) union still estimates *below* the floor, the network
        // shrank by more than ×2 and one halving was not enough: start
        // another epoch and schedule a follow-up pass, so the floor decays
        // geometrically until the union catches up and `apply_estimate`
        // releases it. Without this chain a single >×2 mass departure
        // would pin the estimate at half its pre-departure value forever.
        if self.cfg.dynamic_n_estimation {
            let raw = (self.synopsis.estimate().round() as usize).max(2);
            let departure_reset = self
                .epoch_reset_wanted
                .take()
                .is_some_and(|seen| self.synopsis.epoch() == seen);
            // Only judge an epoch once it has had a repair-delay to flood
            // (see `epoch_started`); a mid-flood union always looks small.
            let epoch_settled = ctx.now() - self.epoch_started >= self.timers.repair_delay;
            let floor_binding = self.estimate_floor > 2 && raw < self.estimate_floor;
            if departure_reset || (floor_binding && epoch_settled) {
                self.estimate_floor = (self.n_estimate / 2).max(2);
                let next = self.synopsis.epoch() + 1;
                self.synopsis = self.my_sketch.clone();
                self.synopsis.set_epoch(next);
                self.epoch_started = ctx.now();
                self.gossip_flood(ctx);
                self.schedule_repair(ctx);
                if floor_binding {
                    // The settled union really is below the floor: adopt the
                    // decayed floor now. On an island no gossip ever arrives
                    // to run `apply_estimate` for us — without this call
                    // `n_estimate` (and hence the next floor) never falls and
                    // the epoch chain re-arms forever instead of converging
                    // in O(log n) halvings. A freshly reset departure epoch
                    // is different: its union is mid-flood (raw ≈ own
                    // sketch), so adopting it here would transiently halve
                    // the estimate on every departure — let gossip receipt
                    // judge that epoch instead.
                    self.apply_estimate(ctx);
                }
            }
        }

        // Emergency landmark re-election (§4.2 keeps election local and
        // random; under churn a partition can lose connectivity to every
        // landmark). Each *consecutive failed election attempt* doubles the
        // probability, so an island elects a replacement within O(log 1/p)
        // passes; the counter resets whenever a landmark is reachable, so a
        // node that merely churned a lot is not pre-boosted and the
        // expected landmark density stays at the paper's √(ln n / n).
        if !self.pv.is_landmark() && self.pv.landmark_entries().next().is_none() {
            self.election_attempts += 1;
            let me = self.pv.id();
            let mut rng = rng_for(
                self.cfg.seed,
                0x1e7,
                (me.0 as u64) ^ (self.election_attempts << 32),
            );
            let p: f64 = rng.gen();
            let boost = f64::powi(2.0, (self.election_attempts - 1).min(60) as i32);
            if p < (self.cfg.landmark_probability(self.n_estimate) * boost).min(1.0) {
                let anns = self.pv.promote_to_landmark();
                Self::flood_route_announcements(&anns, ctx);
            } else {
                // Keep trying until some node in the partition elects
                // itself (or a landmark becomes reachable again).
                self.schedule_repair(ctx);
            }
        } else {
            self.election_attempts = 0;
        }

        // Vicinity re-learning already happened in the path-vector layer;
        // rebuild everything derived from addresses on top of it.
        self.forwarded.clear();
        self.do_insert(ctx);
        self.do_lookups(ctx);
        self.do_disseminate(ctx);
    }
}

fn payload_bytes(p: &Payload) -> usize {
    match p {
        Payload::ResolutionInsert { address, .. } => 12 + 4 * address.path.len(),
        Payload::OverlayLookup { reply_route, .. } => 18 + 4 * reply_route.len(),
        Payload::OverlayReply { address, .. } => 13 + 4 * address.path.len(),
        Payload::GroupAnnouncement { address, .. } => 13 + 4 * address.path.len(),
    }
}

impl Protocol for DiscoProtocol {
    type Message = DiscoMsg;

    fn classify(msg: &DiscoMsg) -> disco_sim::MessageClass {
        match msg {
            DiscoMsg::Route(ann) => PathVectorNode::classify(ann),
            DiscoMsg::Forward { .. } => disco_sim::MessageClass::Deliver,
            DiscoMsg::Gossip(_) => disco_sim::MessageClass::Gossip,
        }
    }

    fn control_revision(&self) -> u64 {
        self.pv.selection_revision()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, DiscoMsg>) {
        self.run_pv(|pv, c| pv.on_start(c), ctx);
        if self.cfg.dynamic_n_estimation {
            self.gossip_flood(ctx);
        }
        ctx.set_timer(self.timers.insert_at, TIMER_INSERT);
        ctx.set_timer(self.timers.lookup_at, TIMER_LOOKUP);
        ctx.set_timer(self.timers.disseminate_at, TIMER_DISSEMINATE);
    }

    fn on_message(&mut self, from: NodeId, msg: DiscoMsg, ctx: &mut Context<'_, DiscoMsg>) {
        match msg {
            DiscoMsg::Route(ann) => {
                // A route update can change this node's *address* (closest
                // landmark or the path to it) without any local adjacency
                // change — e.g. a remote link failure rerouting the
                // landmark path — and a landmark-set change reshuffles
                // consistent-hashing ownership under everyone. Either way
                // the resolution database and overlay hold stale state, so
                // treat it like a neighbor event and schedule a (debounced)
                // repair pass. The path-vector's landmark version covers
                // both causes and costs one integer compare per message.
                let before = self.bootstrapped.then(|| self.pv.landmark_version());
                self.run_pv(|pv, c| pv.on_message(from, ann, c), ctx);
                if before.is_some_and(|v| self.pv.landmark_version() != v) {
                    self.schedule_repair(ctx);
                }
            }
            DiscoMsg::Forward { route, payload } => {
                let Some(remaining) = route.tail() else {
                    self.deliver(payload, ctx);
                    return;
                };
                let Some(next) = ctx.neighbor(remaining.first()) else {
                    return;
                };
                let size = 16 + 4 * remaining.len() + payload_bytes(&payload);
                ctx.send_resolved(
                    next,
                    DiscoMsg::Forward {
                        route: remaining,
                        payload,
                    },
                    size,
                );
            }
            DiscoMsg::Gossip(s) => {
                if !self.cfg.dynamic_n_estimation {
                    return;
                }
                if s.epoch() > self.synopsis.epoch() {
                    // A newer reset epoch supersedes the whole union:
                    // restart from our own sketch (so departed nodes'
                    // contributions age out), adopt the epoch, merge and
                    // re-flood. The halving floor keeps the estimate from
                    // collapsing while the new epoch's union regrows.
                    self.estimate_floor = (self.n_estimate / 2).max(2);
                    self.synopsis = self.my_sketch.clone();
                    self.synopsis.set_epoch(s.epoch());
                    self.synopsis.union(&s);
                    self.epoch_started = ctx.now();
                    self.gossip_flood(ctx);
                    self.apply_estimate(ctx);
                } else if s.epoch() == self.synopsis.epoch() && self.synopsis.would_grow(&s) {
                    // Synopsis diffusion: re-flood only when the union
                    // grew, so gossip quiesces once every node holds the
                    // epoch's global union. Stale-epoch gossip is ignored.
                    self.synopsis.union(&s);
                    self.gossip_flood(ctx);
                    self.apply_estimate(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, DiscoMsg>) {
        match token {
            TIMER_INSERT => self.do_insert(ctx),
            TIMER_LOOKUP => self.do_lookups(ctx),
            TIMER_DISSEMINATE => {
                self.do_disseminate(ctx);
                self.bootstrapped = true;
            }
            TIMER_REPAIR => self.do_repair(ctx),
            // Everything else (e.g. the path-vector batch flush) belongs to
            // the embedded path-vector node.
            other => self.run_pv(|pv, c| pv.on_timer(other, c), ctx),
        }
    }

    fn on_neighbor_up(&mut self, peer: NodeId, ctx: &mut Context<'_, DiscoMsg>) {
        self.run_pv(|pv, c| pv.on_neighbor_up(peer, c), ctx);
        if self.cfg.dynamic_n_estimation {
            // Bring the new neighbor (possibly a fresh joiner with only its
            // own sketch) up to date; it re-floods if its union grows.
            self.gossip_to(peer, ctx);
        }
        self.schedule_repair(ctx);
    }

    fn on_neighbor_down(&mut self, peer: NodeId, ctx: &mut Context<'_, DiscoMsg>) {
        self.run_pv(|pv, c| pv.on_neighbor_down(peer, c), ctx);
        if self.cfg.dynamic_n_estimation {
            // The peer may have departed; let the next repair pass start a
            // fresh synopsis epoch so the estimate can decay. Always record
            // the *current* epoch: a pending request from an older epoch
            // would be discarded at repair time if gossip has since moved
            // us forward, silently dropping this (newer) observation with
            // it — and the departed peer's sketch may be part of the
            // current epoch's union.
            self.epoch_reset_wanted = Some(self.synopsis.epoch());
        }
        self.schedule_repair(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmark::{landmark_set, select_landmarks};
    use disco_graph::generators;
    use disco_sim::Engine;

    fn run_disco(
        n: usize,
        seed: u64,
        fingers: usize,
    ) -> (disco_sim::RunReport, Vec<usize>, usize, usize) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed).with_fingers(fingers);
        let landmarks = select_landmarks(n, &cfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        let report = engine.run();
        let group_counts: Vec<usize> = engine
            .nodes()
            .iter()
            .map(|p| p.group_addresses.len())
            .collect();
        let resolution_total: usize = engine
            .nodes()
            .iter()
            .map(|p| p.resolution_store.len())
            .sum();
        let with_overlay = engine
            .nodes()
            .iter()
            .filter(|p| p.overlay_neighbor_count() > 0)
            .count();
        (report, group_counts, resolution_total, with_overlay)
    }

    #[test]
    fn distributed_disco_converges_and_builds_state() {
        let n = 96;
        let (report, group_counts, resolution_total, with_overlay) = run_disco(n, 5, 1);
        assert!(report.converged);
        assert!(report.stats.total_sent() > 0);
        // The resolution database collectively holds (almost) every node.
        assert!(
            resolution_total >= n * 9 / 10,
            "resolution database holds only {resolution_total} entries"
        );
        // Most nodes found at least one overlay neighbor.
        assert!(
            with_overlay > n * 3 / 4,
            "only {with_overlay} nodes have overlay links"
        );
        // Dissemination delivered group addresses to a majority of nodes.
        let with_group_state = group_counts.iter().filter(|&&c| c > 0).count();
        assert!(
            with_group_state > n / 2,
            "only {with_group_state} nodes learned any group address"
        );
    }

    #[test]
    fn my_address_points_back_to_self_via_landmark() {
        let n = 64;
        let seed = 9;
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed);
        let landmarks = select_landmarks(n, &cfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        let report = engine.run();
        assert!(report.converged);
        for node in engine.nodes() {
            let addr = node.my_address().expect("address after convergence");
            assert_eq!(addr.path.last(), node.pv.id());
            assert_eq!(addr.path.first(), addr.landmark);
            assert!(lm_set.contains(&addr.landmark));
        }
    }

    #[test]
    fn dynamic_estimation_tracks_live_n_and_redraws_landmarks() {
        use crate::landmark::{elects_itself, select_landmarks_with_estimates};
        let n = 96;
        let seed = 11;
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed).with_dynamic_n_estimation(true);
        // Every node boots believing the network is tiny: vicinity caps and
        // the landmark probability start badly mis-sized, and only the
        // synopsis gossip can fix them.
        let wrong = 4;
        let landmarks = select_landmarks_with_estimates(n, &cfg, |_| wrong);
        let lm_set = landmark_set(&landmarks);
        let initial_landmarks = landmarks.len();
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), wrong, &cfg, PhaseTimers::default())
        });
        let report = engine.run();
        assert!(report.converged, "gossip + repair must quiesce");
        for node in engine.nodes() {
            let est = node.live_estimate();
            assert!(
                est >= n / 2 && est <= n * 2,
                "estimate {est} far from true n={n}"
            );
            // Vicinity capacity follows the live estimate.
            assert_eq!(
                node.pv.table_limit(),
                crate::path_vector::TableLimit::VicinityCap {
                    size: cfg.vicinity_size(est)
                }
            );
            // Landmark duty agrees with the hysteresis status, whose last
            // decision is anchored within x2 of the final estimate.
            assert_eq!(node.pv.is_landmark(), node.landmark_status().is_landmark());
            let anchor = node.landmark_status().n_at_last_decision();
            assert!(
                (est as f64) < anchor as f64 * 2.0 && (est as f64) > anchor as f64 / 2.0,
                "anchor {anchor} not within x2 of estimate {est}"
            );
            assert_eq!(
                node.landmark_status().is_landmark(),
                elects_itself(node.pv.id(), anchor, &cfg)
            );
        }
        // The mis-sized initial election (p drawn for n=4) over-elected;
        // the re-draws under the real n must thin the landmark set.
        let final_landmarks = engine.nodes().iter().filter(|p| p.pv.is_landmark()).count();
        assert!(
            final_landmarks < initial_landmarks,
            "landmarks did not thin: {initial_landmarks} -> {final_landmarks}"
        );
        assert!(final_landmarks > 0, "someone must still serve as landmark");
    }

    /// Regression test: parameter changes driven by a gossip sketch that
    /// arrives *after* the route plane has quiesced must still be exported
    /// (the resize/demotion queues table changes; `apply_estimate` has to
    /// arm the path-vector batch flush itself, since no route traffic is
    /// flowing to do it as a side effect).
    #[test]
    fn late_gossip_estimate_change_exports_table_changes() {
        let n = 24;
        let seed = 21;
        let g = generators::gnm_average_degree(n, 6.0, seed);
        let cfg = DiscoConfig::seeded(seed).with_dynamic_n_estimation(true);
        let landmarks = crate::landmark::select_landmarks(n, &cfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        assert!(engine.run().converged);

        // A sketch claiming a much larger network arrives at node 0 out of
        // the blue: the estimate jumps far past the x2 threshold and the
        // vicinity cap grows, admitting waiting candidates.
        let mut big = crate::estimate_n::Synopsis::empty();
        for i in 1000..1400 {
            big.union(&crate::estimate_n::Synopsis::for_node(NodeId(i), cfg.seed));
        }
        let nb = g.neighbors(NodeId(0))[0].node;
        engine.inject_message(nb, NodeId(0), DiscoMsg::Gossip(big), 0.1);
        assert!(
            engine.run_until(|_| false),
            "post-gossip repair must quiesce"
        );

        let est = engine.nodes()[0].live_estimate();
        assert!(est > 2 * n, "estimate did not absorb the sketch: {est}");
        assert_eq!(
            engine.nodes()[0].pv.table_limit(),
            TableLimit::VicinityCap {
                size: cfg.vicinity_size(est)
            }
        );
        // The jump drops the landmark probability several-fold, so some of
        // the initially-elected landmarks must have stepped down...
        let demoted: Vec<NodeId> = landmarks
            .iter()
            .copied()
            .filter(|&v| !engine.nodes()[v.0].pv.is_landmark())
            .collect();
        assert!(
            !demoted.is_empty(),
            "expected demotions when the estimate grows {n} -> {est}"
        );
        // ...and — the regression — every demotion was *exported*: at
        // quiescence no other node still flags a demoted node as landmark.
        // Without the explicit export arm in `apply_estimate` the demoted
        // self-entry sits in `pending` forever (no route traffic is
        // flowing to flush it) and this stale flag survives.
        for &v in &demoted {
            for x in g.nodes() {
                if x == v {
                    continue;
                }
                if let Some(e) = engine.nodes()[x.0].pv.table.get(&v) {
                    assert!(
                        !e.dest_is_landmark,
                        "{x} still flags demoted {v} as a landmark"
                    );
                }
            }
        }
    }

    /// The FM union is monotone, so without epoch resets the estimate of
    /// `n` could never fall. Halving the network must halve the estimate
    /// (within FM noise and the per-epoch halving floor).
    #[test]
    fn mass_departure_shrinks_live_estimate() {
        use disco_sim::TopologyEvent;
        let n = 96;
        let seed = 13;
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed).with_dynamic_n_estimation(true);
        let landmarks = crate::landmark::select_landmarks(n, &cfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        assert!(engine.run().converged);
        let before = engine.nodes()[0].live_estimate();
        assert!(before >= n / 2, "converged estimate {before} implausible");

        // Half the network leaves for good.
        let t0 = engine.now() + 5.0;
        for (i, v) in (n / 2..n).enumerate() {
            engine.schedule_topology(t0 + i as f64, TopologyEvent::NodeLeave { node: NodeId(v) });
        }
        assert!(
            engine.run_until(|_| false),
            "post-departure repair quiesces"
        );

        let live: Vec<&DiscoProtocol> = engine
            .active_nodes()
            .map(|v| &engine.nodes()[v.0])
            .collect();
        assert_eq!(live.len(), n / 2);
        // Every survivor moved to a reset epoch...
        for p in &live {
            assert!(p.synopsis_epoch() > 0, "no synopsis reset happened");
        }
        // ...and the estimates fell. (Mean over survivors: individual FM
        // unions of islands may vary; the halving floor bounds the decay
        // per epoch.)
        let mean_after: f64 =
            live.iter().map(|p| p.live_estimate() as f64).sum::<f64>() / live.len() as f64;
        assert!(
            mean_after < 0.8 * before as f64,
            "estimate did not fall: {before} -> mean {mean_after:.1}"
        );
        assert!(mean_after >= 2.0);
        // The vicinity cap tracks the fallen estimate.
        for p in &live {
            assert_eq!(
                p.pv.table_limit(),
                TableLimit::VicinityCap {
                    size: cfg.vicinity_size(p.live_estimate())
                }
            );
        }
    }

    /// Regression: the halving floor must *decay* across epochs, not pin
    /// the estimate. A single departure burst shrinking the network by 4×
    /// once left every survivor clamped at half the pre-departure
    /// estimate forever (the floor was set on reset but never released);
    /// the repair-pass decay chain now halves it per epoch until the
    /// fresh union catches up.
    #[test]
    fn floor_decays_past_one_halving_after_4x_shrink() {
        use disco_sim::TopologyEvent;
        let n = 96;
        let seed = 17;
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed).with_dynamic_n_estimation(true);
        let landmarks = crate::landmark::select_landmarks(n, &cfg);
        let lm_set = landmark_set(&landmarks);
        let mut engine = Engine::new(&g, |v| {
            DiscoProtocol::new(v, lm_set.contains(&v), n, &cfg, PhaseTimers::default())
        });
        assert!(engine.run().converged);
        let before = engine.nodes()[0].live_estimate();

        // Three quarters of the network leaves.
        let t0 = engine.now() + 5.0;
        for (i, v) in (n / 4..n).enumerate() {
            engine.schedule_topology(
                t0 + i as f64 * 0.5,
                TopologyEvent::NodeLeave { node: NodeId(v) },
            );
        }
        assert!(
            engine.run_until(|_| false),
            "post-departure repair quiesces"
        );

        let live: Vec<usize> = engine
            .active_nodes()
            .map(|v| engine.nodes()[v.0].live_estimate())
            .collect();
        assert_eq!(live.len(), n / 4);
        let mean = live.iter().map(|&e| e as f64).sum::<f64>() / live.len() as f64;
        // A permanently-pinned floor would sit at exactly before/2; the
        // decay chain must fall well below that, toward the true n/4.
        assert!(
            mean < 0.4 * before as f64,
            "estimate stuck above one halving: {before} -> mean {mean:.1}"
        );
        assert!(mean >= 2.0);
    }

    #[test]
    fn more_fingers_means_more_messages() {
        let n = 80;
        let (r1, ..) = run_disco(n, 7, 1);
        let (r3, ..) = run_disco(n, 7, 3);
        assert!(r1.converged && r3.converged);
        assert!(
            r3.stats.total_sent() > r1.stats.total_sent(),
            "3 fingers {} should exceed 1 finger {}",
            r3.stats.total_sent(),
            r1.stats.total_sent()
        );
    }
}
