//! Shortcutting heuristics (paper §4.2, "Shortcutting heuristics" and the
//! Fig. 6 table).
//!
//! The compact-routing route `s ; w ; ℓ_t ; t` is a worst-case bound;
//! in practice nodes along the way often know much shorter paths. The paper
//! evaluates six progressively more aggressive heuristics; the core
//! protocol (and all headline results) uses **No Path Knowledge**, which
//! needs no extra information in the packet. The modes are applied by
//! [`crate::routing`]; this module only defines them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A shortcutting heuristic, ordered roughly by aggressiveness. The names
/// match the rows of the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShortcutMode {
    /// No shortcutting: always use the full `s ; w ; ℓ_t ; t` route.
    None,
    /// "To-Destination": if any node along the route knows a direct
    /// (vicinity) path to the destination, follow it from there. This is
    /// the heuristic S4 uses.
    ToDestination,
    /// "Shorter{ReversePath, ForwardPath}": compute both the forward route
    /// `s → t` and the reverse route `t → s`, use whichever is shorter.
    ShorterForwardReverse,
    /// "No Path Knowledge": To-Destination applied to both the forward and
    /// the reverse route, taking the shorter — the paper's default.
    NoPathKnowledge,
    /// "Up-Down Stream": every node along the route checks whether it has a
    /// vicinity route to any *later* node of the route that is shorter than
    /// the route segment between them, splicing it in if so. Requires the
    /// route's node list in the (first) packet.
    UpDownStream,
    /// "Using Path Knowledge": Up-Down Stream applied to both the forward
    /// and the reverse route, taking the shorter — the most aggressive mode.
    PathKnowledge,
}

impl ShortcutMode {
    /// All modes in the order of the paper's Fig. 6 table.
    pub const ALL: [ShortcutMode; 6] = [
        ShortcutMode::None,
        ShortcutMode::ToDestination,
        ShortcutMode::ShorterForwardReverse,
        ShortcutMode::NoPathKnowledge,
        ShortcutMode::UpDownStream,
        ShortcutMode::PathKnowledge,
    ];

    /// Whether the mode also evaluates the reverse route `t → s`.
    pub fn uses_reverse(self) -> bool {
        matches!(
            self,
            ShortcutMode::ShorterForwardReverse
                | ShortcutMode::NoPathKnowledge
                | ShortcutMode::PathKnowledge
        )
    }

    /// Whether intermediate nodes shortcut toward the destination.
    pub fn uses_to_destination(self) -> bool {
        matches!(
            self,
            ShortcutMode::ToDestination
                | ShortcutMode::NoPathKnowledge
                | ShortcutMode::UpDownStream
                | ShortcutMode::PathKnowledge
        )
    }

    /// Whether intermediate nodes shortcut toward *any* downstream node
    /// (requires listing the route in the packet).
    pub fn uses_up_down_stream(self) -> bool {
        matches!(
            self,
            ShortcutMode::UpDownStream | ShortcutMode::PathKnowledge
        )
    }

    /// The paper's row label for this mode (Fig. 6).
    pub fn paper_label(self) -> &'static str {
        match self {
            ShortcutMode::None => "No Shortcutting",
            ShortcutMode::ToDestination => "To-Destination Shortcuts",
            ShortcutMode::ShorterForwardReverse => "Shorter{ReversePath, ForwardPath}",
            ShortcutMode::NoPathKnowledge => "No Path Knowledge",
            ShortcutMode::UpDownStream => "Up-Down Stream",
            ShortcutMode::PathKnowledge => "Using Path Knowledge",
        }
    }
}

impl fmt::Display for ShortcutMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_label())
    }
}

impl FromStr for ShortcutMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "none" | "noshortcutting" => Ok(ShortcutMode::None),
            "todestination" | "todestinationshortcuts" => Ok(ShortcutMode::ToDestination),
            "shorterforwardreverse" | "shorterreversepathforwardpath" => {
                Ok(ShortcutMode::ShorterForwardReverse)
            }
            "nopathknowledge" => Ok(ShortcutMode::NoPathKnowledge),
            "updownstream" => Ok(ShortcutMode::UpDownStream),
            "pathknowledge" | "usingpathknowledge" => Ok(ShortcutMode::PathKnowledge),
            _ => Err(format!("unknown shortcut mode: {s}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_six_modes_in_paper_order() {
        assert_eq!(ShortcutMode::ALL.len(), 6);
        assert_eq!(ShortcutMode::ALL[0], ShortcutMode::None);
        assert_eq!(ShortcutMode::ALL[3], ShortcutMode::NoPathKnowledge);
        assert_eq!(ShortcutMode::ALL[5], ShortcutMode::PathKnowledge);
    }

    #[test]
    fn capability_flags() {
        assert!(!ShortcutMode::None.uses_reverse());
        assert!(!ShortcutMode::None.uses_to_destination());
        assert!(ShortcutMode::ToDestination.uses_to_destination());
        assert!(!ShortcutMode::ToDestination.uses_reverse());
        assert!(ShortcutMode::ShorterForwardReverse.uses_reverse());
        assert!(!ShortcutMode::ShorterForwardReverse.uses_to_destination());
        assert!(ShortcutMode::NoPathKnowledge.uses_reverse());
        assert!(ShortcutMode::NoPathKnowledge.uses_to_destination());
        assert!(!ShortcutMode::NoPathKnowledge.uses_up_down_stream());
        assert!(ShortcutMode::UpDownStream.uses_up_down_stream());
        assert!(!ShortcutMode::UpDownStream.uses_reverse());
        assert!(ShortcutMode::PathKnowledge.uses_up_down_stream());
        assert!(ShortcutMode::PathKnowledge.uses_reverse());
    }

    #[test]
    fn parse_round_trips_labels() {
        for &m in &ShortcutMode::ALL {
            let parsed: ShortcutMode = m.paper_label().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("bogus".parse::<ShortcutMode>().is_err());
        assert_eq!(
            "no-path-knowledge".parse::<ShortcutMode>().unwrap(),
            ShortcutMode::NoPathKnowledge
        );
    }
}
