//! Sloppy groups (paper §4.4).
//!
//! Node `v` belongs to the sloppy group `G(v)` of all nodes `w` whose hash
//! `h(w)` shares its first `k = ⌊log2(√n / log n)⌋` bits with `h(v)`, where
//! each node computes `k` from its own estimate of `n`. Every node in
//! `G(v)` stores `v`'s address, so any source that finds *one* member of
//! `G(t)` in its vicinity can learn `t`'s address with a local query.
//!
//! Two properties make the grouping practical (and are tested here):
//!
//! 1. **Consistency** — the grouping only changes when `n` changes by a
//!    constant factor (because `k` is a floor of a logarithm), and
//! 2. **Split/merge locality** — when `k` does change by one, each group
//!    either splits in half or merges with its sibling, so nodes with
//!    slightly different estimates of `n` still agree on a common "core
//!    group" `G'(v)` (the group under the larger `k`).

use crate::config::DiscoConfig;
use crate::hash::{NameHash, NameHasher};
use crate::name::FlatName;
use disco_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sloppy-group identifier: the first `bits` bits of the members' hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId {
    /// Prefix value (in the low bits of the word).
    pub prefix: u64,
    /// Number of significant bits.
    pub bits: u32,
}

impl GroupId {
    /// The group a hash belongs to when grouping on `bits` prefix bits.
    pub fn of(hash: NameHash, bits: u32) -> Self {
        GroupId {
            prefix: hash.prefix(bits),
            bits,
        }
    }

    /// Whether `hash` falls inside this group.
    pub fn contains(&self, hash: NameHash) -> bool {
        hash.prefix(self.bits) == self.prefix
    }

    /// The two halves this group splits into when the prefix grows by one
    /// bit.
    pub fn split(&self) -> (GroupId, GroupId) {
        let bits = self.bits + 1;
        (
            GroupId {
                prefix: self.prefix << 1,
                bits,
            },
            GroupId {
                prefix: (self.prefix << 1) | 1,
                bits,
            },
        )
    }

    /// The group this one merges into when the prefix shrinks by one bit.
    pub fn parent(&self) -> Option<GroupId> {
        if self.bits == 0 {
            None
        } else {
            Some(GroupId {
                prefix: self.prefix >> 1,
                bits: self.bits - 1,
            })
        }
    }
}

/// The sloppy grouping of a whole (simulated) network: every node's hash and
/// group, under per-node prefix lengths derived from per-node estimates of
/// `n`.
#[derive(Debug, Clone)]
pub struct SloppyGrouping {
    hasher: NameHasher,
    hashes: Vec<NameHash>,
    /// Per-node prefix length `k` (differs across nodes only when estimates
    /// of `n` differ).
    prefix_bits: Vec<u32>,
    /// Members of each group *as seen with prefix length k_max* (the "core
    /// groups" G'): map from GroupId at k_max to member list.
    core_groups: HashMap<GroupId, Vec<NodeId>>,
    k_max: u32,
}

impl SloppyGrouping {
    /// Build the grouping for `n` nodes named with [`FlatName::synthetic`]
    /// names, with node `v` using `estimate(v)` as its estimate of `n`.
    pub fn build(
        n: usize,
        cfg: &DiscoConfig,
        names: &[FlatName],
        estimate: impl Fn(NodeId) -> usize,
    ) -> Self {
        assert_eq!(names.len(), n);
        let hasher = NameHasher::new(cfg.seed ^ 0x510f);
        let hashes: Vec<NameHash> = names.iter().map(|nm| hasher.hash_name(nm)).collect();
        let prefix_bits: Vec<u32> = (0..n)
            .map(|v| cfg.group_prefix_bits(estimate(NodeId(v))))
            .collect();
        let k_max = prefix_bits.iter().copied().max().unwrap_or(0);
        let mut core_groups: HashMap<GroupId, Vec<NodeId>> = HashMap::new();
        for (v, &hash) in hashes.iter().enumerate() {
            let gid = GroupId::of(hash, k_max);
            core_groups.entry(gid).or_default().push(NodeId(v));
        }
        for members in core_groups.values_mut() {
            members.sort();
        }
        SloppyGrouping {
            hasher,
            hashes,
            prefix_bits,
            core_groups,
            k_max,
        }
    }

    /// The hash function all nodes agree on.
    pub fn hasher(&self) -> &NameHasher {
        &self.hasher
    }

    /// `h(v)` for node `v`.
    pub fn hash_of(&self, v: NodeId) -> NameHash {
        self.hashes[v.0]
    }

    /// The prefix length node `v` uses (derived from its estimate of `n`).
    pub fn prefix_bits_of(&self, v: NodeId) -> u32 {
        self.prefix_bits[v.0]
    }

    /// The maximum prefix length in use (defines the core groups).
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// The group id node `v` believes it belongs to.
    pub fn group_of(&self, v: NodeId) -> GroupId {
        GroupId::of(self.hashes[v.0], self.prefix_bits[v.0])
    }

    /// Whether node `v` considers node `w` a member of its own sloppy group
    /// (using `v`'s prefix length) — the membership test used when deciding
    /// whose addresses to store and to whom to forward announcements.
    pub fn considers_member(&self, v: NodeId, w: NodeId) -> bool {
        self.group_of(v).contains(self.hashes[w.0])
    }

    /// The *core group* `G'(v)`: the members everyone agrees are grouped
    /// with `v` (grouping at the largest prefix length in use). Sorted by
    /// node id.
    pub fn core_group(&self, v: NodeId) -> &[NodeId] {
        let gid = GroupId::of(self.hashes[v.0], self.k_max);
        self.core_groups
            .get(&gid)
            .map(|m| m.as_slice())
            .unwrap_or(&[])
    }

    /// All nodes `w` (including `v` itself) that *v considers* members of
    /// its group. `O(n)` scan — used by tests and the static simulator's
    /// state accounting.
    pub fn perceived_group(&self, v: NodeId) -> Vec<NodeId> {
        let gid = self.group_of(v);
        (0..self.hashes.len())
            .filter(|&w| gid.contains(self.hashes[w]))
            .map(NodeId)
            .collect()
    }

    /// Number of distinct core groups.
    pub fn core_group_count(&self) -> usize {
        self.core_groups.len()
    }

    /// Iterate over all core groups.
    pub fn core_groups(&self) -> impl Iterator<Item = (&GroupId, &Vec<NodeId>)> {
        self.core_groups.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<FlatName> {
        (0..n).map(FlatName::synthetic).collect()
    }

    #[test]
    fn group_id_split_and_parent() {
        let g = GroupId {
            prefix: 0b10,
            bits: 2,
        };
        let (a, b) = g.split();
        assert_eq!(
            a,
            GroupId {
                prefix: 0b100,
                bits: 3
            }
        );
        assert_eq!(
            b,
            GroupId {
                prefix: 0b101,
                bits: 3
            }
        );
        assert_eq!(a.parent(), Some(g));
        assert_eq!(b.parent(), Some(g));
        assert_eq!(GroupId { prefix: 0, bits: 0 }.parent(), None);
    }

    #[test]
    fn grouping_partitions_all_nodes() {
        let n = 2048;
        let cfg = DiscoConfig::seeded(3);
        let g = SloppyGrouping::build(n, &cfg, &names(n), |_| n);
        let total: usize = g.core_groups().map(|(_, m)| m.len()).sum();
        assert_eq!(total, n);
        // With a uniform estimate, perceived group == core group.
        for v in [0usize, 77, 2047] {
            assert_eq!(
                g.perceived_group(NodeId(v)),
                g.core_group(NodeId(v)).to_vec()
            );
        }
    }

    #[test]
    fn group_sizes_are_theta_sqrt_n_log_n() {
        let n = 4096;
        let cfg = DiscoConfig::seeded(1);
        let g = SloppyGrouping::build(n, &cfg, &names(n), |_| n);
        let k = cfg.group_prefix_bits(n);
        assert_eq!(g.k_max(), k);
        let expected = n as f64 / 2f64.powi(k as i32);
        for (_, members) in g.core_groups() {
            let len = members.len() as f64;
            assert!(
                len > expected * 0.5 && len < expected * 1.6,
                "group size {len}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn membership_contains_self_and_is_symmetric_with_equal_estimates() {
        let n = 1024;
        let cfg = DiscoConfig::seeded(5);
        let g = SloppyGrouping::build(n, &cfg, &names(n), |_| n);
        for v in 0..64 {
            assert!(g.considers_member(NodeId(v), NodeId(v)));
        }
        for v in 0..32 {
            for w in 0..32 {
                assert_eq!(
                    g.considers_member(NodeId(v), NodeId(w)),
                    g.considers_member(NodeId(w), NodeId(v))
                );
            }
        }
    }

    #[test]
    fn estimates_within_factor_two_differ_by_at_most_one_bit() {
        let n = 8192;
        let cfg = DiscoConfig::seeded(9);
        // Half the nodes underestimate by 40%, half overestimate by 60%.
        let est = |v: NodeId| {
            if v.0.is_multiple_of(2) {
                (n as f64 * 0.6) as usize
            } else {
                (n as f64 * 1.6) as usize
            }
        };
        let g = SloppyGrouping::build(n, &cfg, &names(n), est);
        let bits: Vec<u32> = (0..n).map(|v| g.prefix_bits_of(NodeId(v))).collect();
        let min = *bits.iter().min().unwrap();
        let max = *bits.iter().max().unwrap();
        assert!(max - min <= 1, "prefix bits spread {min}..{max}");
    }

    #[test]
    fn core_group_is_subset_of_every_members_perceived_group() {
        // The dissemination argument requires: every member of G'(v) agrees
        // that all of G'(v) is in its group.
        let n = 2048;
        let cfg = DiscoConfig::seeded(21);
        let est = |v: NodeId| if v.0.is_multiple_of(3) { n / 2 + 1 } else { n };
        let g = SloppyGrouping::build(n, &cfg, &names(n), est);
        for probe in [0usize, 100, 555, 2000] {
            let core = g.core_group(NodeId(probe));
            for &m in core {
                for &x in core {
                    assert!(
                        g.considers_member(m, x),
                        "core member {m} does not consider {x} grouped"
                    );
                }
            }
        }
    }
}
