//! # disco-core — Distributed Compact Routing ("Disco")
//!
//! Reproduction of the routing protocol from *"Scalable Routing on Flat
//! Names"* (Singla, Godfrey, Fall, Iannaccone, Ratnasamy — ACM CoNEXT
//! 2010). Disco is the first dynamic, distributed routing protocol that
//! simultaneously guarantees
//!
//! * **scalability** — `O~(√n)` routing-table entries per node on any
//!   topology,
//! * **low stretch** — worst-case stretch 7 on the first packet of a flow
//!   and 3 on subsequent packets,
//! * **flat names** — routing on arbitrary, location-independent names.
//!
//! ## Architecture (paper §4)
//!
//! | Paper section | Module |
//! |---|---|
//! | §4.1 assumptions, estimating `n` | [`config`], [`estimate_n`] |
//! | §4.2 landmarks | [`landmark`] |
//! | §4.2 vicinities + path-vector learning | [`vicinity`], [`path_vector`] |
//! | §4.2 addresses / explicit routes / labels | [`address`], [`label`] |
//! | §4.2 routing + shortcutting heuristics | [`routing`], [`shortcut`] |
//! | §4.3 name resolution over landmarks | [`resolution`] |
//! | data plane: compiled flat tables, epoch publish | [`forward`] |
//! | §4.4 sloppy groups | [`sloppy_group`] |
//! | §4.4 dissemination overlay (Symphony-style) | [`overlay`], [`dissemination`] |
//! | §4.5 guarantees | exercised by tests & `tests/guarantees.rs` |
//! | §5 static simulation | [`static_state`] |
//! | §5 discrete-event simulation | [`protocol`] |
//!
//! Two entry points cover the paper's two simulators:
//!
//! * [`static_state::DiscoState`] — builds the *post-convergence* state of
//!   every node directly from a [`disco_graph::Graph`] (the paper's "static
//!   simulator", used for all state/stretch/congestion results), and
//! * [`protocol::DiscoProtocol`] — the distributed protocol run inside the
//!   [`disco_sim`] discrete-event engine (the paper's "custom discrete event
//!   simulator", used for convergence-messaging results).
//!
//! ```
//! use disco_core::prelude::*;
//! use disco_graph::generators;
//!
//! // Build Disco's converged state on a 512-node random graph.
//! let graph = generators::gnm_average_degree(512, 8.0, 7);
//! let state = DiscoState::build(&graph, &DiscoConfig::seeded(7));
//!
//! // Route on flat names: first packet of a flow, then subsequent packets.
//! let oracle = DiscoRouter::new(&graph, &state);
//! let (s, t) = (disco_graph::NodeId(3), disco_graph::NodeId(400));
//! let first = oracle.route_first_packet(s, t);
//! let later = oracle.route_later_packet(s, t);
//! let shortest = oracle.true_distance(s, t);
//! assert!(first.stretch(shortest) >= 1.0);
//! assert!(later.stretch(shortest) >= 1.0);
//! ```

pub mod address;
pub mod config;
pub mod dissemination;
pub mod estimate_n;
pub mod forward;
pub mod hash;
pub mod label;
pub mod landmark;
pub mod name;
pub mod overlay;
pub mod path_vector;
pub mod protocol;
pub mod resolution;
pub mod rib;
pub mod routing;
pub mod shortcut;
pub mod sloppy_group;
pub mod static_state;
pub mod vicinity;
pub mod wire;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::address::Address;
    pub use crate::config::DiscoConfig;
    pub use crate::forward::{FlatRoute, ForwardingTable, TablePublisher};
    pub use crate::hash::{NameHash, NameHasher};
    pub use crate::label::ExplicitRoute;
    pub use crate::name::FlatName;
    pub use crate::routing::{DiscoRouter, NdDiscoRouter, RouteOutcome};
    pub use crate::shortcut::ShortcutMode;
    pub use crate::static_state::DiscoState;
}

pub use prelude::*;
