//! Route construction: NDDisco and Disco packet routing with shortcutting
//! (paper §4.2 "Routing", §4.4 "Routing", §4.2 "Shortcutting heuristics").
//!
//! [`DiscoRouter`] computes the route a packet takes over the converged
//! state of [`crate::static_state::DiscoState`]:
//!
//! * **NDDisco, first packet** (destination's address known): direct if the
//!   destination is a landmark or in the source's vicinity, otherwise
//!   `s ; ℓ_t ; t` — worst-case stretch 5.
//! * **NDDisco / Disco, later packets**: after the handshake the
//!   destination reports the shortest path if `s ∈ V(t)`; otherwise the
//!   landmark route is kept — worst-case stretch 3.
//! * **Disco, first packet** (only the flat name known): direct if
//!   possible; if the source already stores the destination's address
//!   (same sloppy group) route as NDDisco; otherwise forward toward the
//!   vicinity member `w` with the longest hash-prefix match to `h(t)`, who
//!   knows the address: `s ; w ; ℓ_t ; t` — worst-case stretch 7
//!   (Theorem 1). If no vicinity member of the destination's group exists
//!   (a with-high-probability failure), the landmark name-resolution
//!   database is used as a fallback, exactly as §4.4 prescribes.
//!
//! All routes then pass through the configured [`ShortcutMode`].
//!
//! The router caches truncated shortest-path trees per source, so
//! evaluating many destinations from the same source (as the experiments
//! do) is cheap.

use crate::shortcut::ShortcutMode;
use crate::static_state::DiscoState;
use disco_graph::{dijkstra, k_nearest, Graph, NodeId, Path, ShortestPathTree, Weight};
use std::cell::RefCell;
use std::collections::HashMap;

/// How a route was obtained; reported so experiments can break results down
/// by case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteCategory {
    /// Source and destination are the same node.
    SelfRoute,
    /// Destination was a landmark or inside the source's vicinity.
    Direct,
    /// Destination's shortest path was obtained from the handshake
    /// (`s ∈ V(t)`), so the route is optimal.
    Handshake,
    /// Routed via the destination's closest landmark (`s ; ℓ_t ; t`).
    ViaLandmark,
    /// Routed via a sloppy-group proxy in the source's vicinity
    /// (`s ; w ; ℓ_t ; t`).
    ViaGroupProxy,
    /// The w.h.p. guarantee failed and the landmark resolution database was
    /// used as a fallback.
    Fallback,
}

/// The outcome of routing one packet.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Full node sequence from source to destination.
    pub nodes: Vec<NodeId>,
    /// Total length (sum of link weights).
    pub length: Weight,
    /// How the route was obtained.
    pub category: RouteCategory,
}

impl RouteOutcome {
    fn from_nodes(graph: &Graph, nodes: Vec<NodeId>, category: RouteCategory) -> Self {
        let length = if nodes.len() < 2 {
            0.0
        } else {
            Path::new(nodes.clone()).length(graph)
        };
        RouteOutcome {
            nodes,
            length,
            category,
        }
    }

    /// Stretch relative to the shortest-path distance. A zero shortest
    /// distance (self route) has stretch 1 by convention.
    pub fn stretch(&self, shortest: Weight) -> f64 {
        if shortest <= 0.0 {
            1.0
        } else {
            self.length / shortest
        }
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The edges traversed, as node pairs (used by congestion accounting).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

/// Router over converged Disco state. See the module documentation.
pub struct DiscoRouter<'a> {
    graph: &'a Graph,
    state: &'a DiscoState,
    /// Cache of truncated (vicinity-sized) shortest-path trees per source.
    vicinity_trees: RefCell<HashMap<NodeId, ShortestPathTree>>,
    /// Cache of full shortest-path trees per source (ground-truth
    /// distances for stretch).
    full_trees: RefCell<HashMap<NodeId, ShortestPathTree>>,
}

/// NDDisco shares all routing machinery with Disco; the name-dependent
/// entry points are the `nddisco_*` methods of [`DiscoRouter`].
pub type NdDiscoRouter<'a> = DiscoRouter<'a>;

impl<'a> DiscoRouter<'a> {
    /// A router over `graph` and its converged `state`.
    pub fn new(graph: &'a Graph, state: &'a DiscoState) -> Self {
        DiscoRouter {
            graph,
            state,
            vicinity_trees: RefCell::new(HashMap::new()),
            full_trees: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying converged state.
    pub fn state(&self) -> &DiscoState {
        self.state
    }

    /// The graph being routed over.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    // ------------------------------------------------------------------
    // Ground truth
    // ------------------------------------------------------------------

    /// True shortest-path distance (ground truth for stretch).
    pub fn true_distance(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        self.with_full_tree(s, |tree| {
            tree.distance(t)
                .unwrap_or_else(|| panic!("{t} unreachable from {s}"))
        })
    }

    /// True shortest path (used by the path-vector baseline and congestion
    /// accounting).
    pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Path {
        if s == t {
            return Path::trivial(s);
        }
        self.with_full_tree(s, |tree| tree.path_to(t).expect("graph must be connected"))
    }

    fn with_full_tree<R>(&self, s: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let mut cache = self.full_trees.borrow_mut();
        let tree = cache.entry(s).or_insert_with(|| dijkstra(self.graph, s));
        f(tree)
    }

    /// Drop cached shortest-path trees (frees memory between experiment
    /// phases).
    pub fn clear_caches(&self) {
        self.vicinity_trees.borrow_mut().clear();
        self.full_trees.borrow_mut().clear();
    }

    // ------------------------------------------------------------------
    // Legs
    // ------------------------------------------------------------------

    fn with_vicinity_tree<R>(&self, s: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let mut cache = self.vicinity_trees.borrow_mut();
        let size = self.state.vicinity(s).len();
        let tree = cache
            .entry(s)
            .or_insert_with(|| k_nearest(self.graph, s, size));
        f(tree)
    }

    /// Path from `s` to a member `w` of `V(s)`; panics if `w ∉ V(s)`.
    pub fn vicinity_path(&self, s: NodeId, w: NodeId) -> Path {
        if s == w {
            return Path::trivial(s);
        }
        self.with_vicinity_tree(s, |tree| {
            tree.path_to(w)
                .unwrap_or_else(|| panic!("{w} is not in the vicinity of {s}"))
        })
    }

    /// Path from `v` to landmark `lm` (the reverse of `lm`'s tree path).
    fn path_to_landmark(&self, v: NodeId, lm: NodeId) -> Path {
        if v == lm {
            return Path::trivial(v);
        }
        self.state.landmark_path(lm, v).reversed()
    }

    /// Path from `t`'s closest landmark to `t` (the explicit route in `t`'s
    /// address).
    fn address_leg(&self, t: NodeId) -> Path {
        self.state
            .address_of(t)
            .route_path(self.graph)
            .expect("address route must expand over the construction graph")
    }

    // ------------------------------------------------------------------
    // Route assembly
    // ------------------------------------------------------------------

    fn concat_nodes(legs: &[&Path]) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = Vec::new();
        for leg in legs {
            if nodes.is_empty() {
                nodes.extend_from_slice(leg.nodes());
            } else {
                assert_eq!(*nodes.last().unwrap(), leg.source(), "legs must chain");
                nodes.extend_from_slice(&leg.nodes()[1..]);
            }
        }
        nodes
    }

    /// The name-dependent landmark route `s ; ℓ_t ; t` with no
    /// shortcutting applied.
    fn landmark_route_nodes(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let lm = self.state.closest_landmark(t);
        let to_lm = self.path_to_landmark(s, lm);
        let addr = self.address_leg(t);
        Self::concat_nodes(&[&to_lm, &addr])
    }

    /// The name-independent first-packet route `s ; w ; ℓ_t ; t` with no
    /// shortcutting applied.
    fn proxy_route_nodes(&self, s: NodeId, w: NodeId, t: NodeId) -> Vec<NodeId> {
        let to_w = self.vicinity_path(s, w);
        let lm = self.state.closest_landmark(t);
        let to_lm = self.path_to_landmark(w, lm);
        let addr = self.address_leg(t);
        Self::concat_nodes(&[&to_w, &to_lm, &addr])
    }

    // ------------------------------------------------------------------
    // Shortcutting
    // ------------------------------------------------------------------

    fn route_length(&self, nodes: &[NodeId]) -> Weight {
        if nodes.len() < 2 {
            0.0
        } else {
            nodes
                .windows(2)
                .map(|w| {
                    self.graph
                        .edge_weight(w[0], w[1])
                        .unwrap_or_else(|| panic!("route uses non-edge {}-{}", w[0], w[1]))
                })
                .sum()
        }
    }

    fn vicinity_distance(&self, u: NodeId, x: NodeId) -> Option<Weight> {
        self.state.vicinity(u).distance(x)
    }

    /// "To-Destination" shortcutting: the first node along the route that
    /// has the destination in its vicinity routes directly to it.
    fn apply_to_destination(&self, nodes: Vec<NodeId>) -> Vec<NodeId> {
        let t = *nodes.last().unwrap();
        for (i, &u) in nodes.iter().enumerate() {
            if u == t {
                return nodes[..=i].to_vec();
            }
            if self.vicinity_distance(u, t).is_some() {
                let tail = self.vicinity_path(u, t);
                let mut out = nodes[..i].to_vec();
                out.extend_from_slice(tail.nodes());
                return out;
            }
        }
        nodes
    }

    /// "Up-Down Stream" shortcutting: every node along the route may splice
    /// in a vicinity route to any later node of the route if that is
    /// shorter than the route segment between them.
    fn apply_up_down_stream(&self, mut nodes: Vec<NodeId>) -> Vec<NodeId> {
        let mut i = 0usize;
        while i + 2 <= nodes.len() {
            let u = nodes[i];
            // Cumulative length from position i onward.
            let mut seg_len = vec![0.0; nodes.len() - i];
            for j in (i + 1)..nodes.len() {
                seg_len[j - i] = seg_len[j - i - 1]
                    + self
                        .graph
                        .edge_weight(nodes[j - 1], nodes[j])
                        .expect("route edge");
            }
            // Best splice: maximise savings over all later nodes reachable
            // through u's vicinity.
            let mut best: Option<(usize, Weight)> = None; // (j, savings)
            for j in (i + 2)..nodes.len() {
                if let Some(d) = self.vicinity_distance(u, nodes[j]) {
                    let savings = seg_len[j - i] - d;
                    if savings > 1e-12 {
                        match best {
                            Some((_, s)) if s >= savings => {}
                            _ => best = Some((j, savings)),
                        }
                    }
                }
            }
            if let Some((j, _)) = best {
                let splice = self.vicinity_path(u, nodes[j]);
                let mut out = nodes[..i].to_vec();
                out.extend_from_slice(splice.nodes());
                out.extend_from_slice(&nodes[j + 1..]);
                nodes = out;
            }
            i += 1;
        }
        nodes
    }

    /// Apply the forward-direction part of a shortcut mode to a base route.
    fn apply_forward(&self, mode: ShortcutMode, nodes: Vec<NodeId>) -> Vec<NodeId> {
        if mode.uses_up_down_stream() {
            self.apply_up_down_stream(nodes)
        } else if mode.uses_to_destination() {
            self.apply_to_destination(nodes)
        } else {
            nodes
        }
    }

    /// Finish a non-direct route: apply the configured shortcutting to the
    /// forward base route and, if the mode calls for it, also to the reverse
    /// base route, returning the shorter.
    fn finish(
        &self,
        mode: ShortcutMode,
        forward_base: Vec<NodeId>,
        reverse_base: Option<Vec<NodeId>>,
        category: RouteCategory,
    ) -> RouteOutcome {
        let forward = self.apply_forward(mode, forward_base);
        let forward_len = self.route_length(&forward);
        let mut best = (forward, forward_len);
        if mode.uses_reverse() {
            if let Some(rev) = reverse_base {
                let shortened = self.apply_forward(mode, rev);
                let len = self.route_length(&shortened);
                if len < best.1 {
                    let mut nodes = shortened;
                    nodes.reverse();
                    best = (nodes, len);
                }
            }
        }
        RouteOutcome {
            nodes: best.0,
            length: best.1,
            category,
        }
    }

    // ------------------------------------------------------------------
    // Direct cases shared by all protocols
    // ------------------------------------------------------------------

    /// If the destination is the source itself, a landmark, or in the
    /// source's vicinity, the route is direct (shortest).
    fn try_direct(&self, s: NodeId, t: NodeId) -> Option<RouteOutcome> {
        if s == t {
            return Some(RouteOutcome {
                nodes: vec![s],
                length: 0.0,
                category: RouteCategory::SelfRoute,
            });
        }
        if self.state.is_landmark(t) {
            let path = self.path_to_landmark(s, t);
            return Some(RouteOutcome::from_nodes(
                self.graph,
                path.nodes().to_vec(),
                RouteCategory::Direct,
            ));
        }
        if self.state.vicinity(s).contains(t) {
            let path = self.vicinity_path(s, t);
            return Some(RouteOutcome::from_nodes(
                self.graph,
                path.nodes().to_vec(),
                RouteCategory::Direct,
            ));
        }
        None
    }

    // ------------------------------------------------------------------
    // NDDisco (name-dependent; the sender knows the destination's address)
    // ------------------------------------------------------------------

    /// NDDisco first packet with the configured shortcut mode
    /// (worst-case stretch 5).
    pub fn nddisco_first_packet(&self, s: NodeId, t: NodeId) -> RouteOutcome {
        self.nddisco_first_packet_with(s, t, self.state.config().shortcut)
    }

    /// NDDisco first packet with an explicit shortcut mode.
    pub fn nddisco_first_packet_with(
        &self,
        s: NodeId,
        t: NodeId,
        mode: ShortcutMode,
    ) -> RouteOutcome {
        if let Some(direct) = self.try_direct(s, t) {
            return direct;
        }
        let forward = self.landmark_route_nodes(s, t);
        let reverse = if mode.uses_reverse() {
            Some(self.landmark_route_nodes(t, s))
        } else {
            None
        };
        self.finish(mode, forward, reverse, RouteCategory::ViaLandmark)
    }

    /// NDDisco later packets (after the handshake; worst-case stretch 3).
    pub fn nddisco_later_packet(&self, s: NodeId, t: NodeId) -> RouteOutcome {
        self.nddisco_later_packet_with(s, t, self.state.config().shortcut)
    }

    /// NDDisco later packets with an explicit shortcut mode.
    pub fn nddisco_later_packet_with(
        &self,
        s: NodeId,
        t: NodeId,
        mode: ShortcutMode,
    ) -> RouteOutcome {
        if let Some(direct) = self.try_direct(s, t) {
            return direct;
        }
        // Handshake: if s ∈ V(t), the destination reports the shortest path.
        if self.state.vicinity(t).contains(s) {
            let path = self.vicinity_path(t, s).reversed();
            return RouteOutcome::from_nodes(
                self.graph,
                path.nodes().to_vec(),
                RouteCategory::Handshake,
            );
        }
        let forward = self.landmark_route_nodes(s, t);
        let reverse = if mode.uses_reverse() {
            Some(self.landmark_route_nodes(t, s))
        } else {
            None
        };
        self.finish(mode, forward, reverse, RouteCategory::ViaLandmark)
    }

    // ------------------------------------------------------------------
    // Disco (name-independent; the sender knows only the flat name)
    // ------------------------------------------------------------------

    /// Disco first packet with the configured shortcut mode (worst-case
    /// stretch 7, Theorem 1).
    pub fn route_first_packet(&self, s: NodeId, t: NodeId) -> RouteOutcome {
        self.route_first_packet_with(s, t, self.state.config().shortcut)
    }

    /// Disco first packet with an explicit shortcut mode.
    pub fn route_first_packet_with(
        &self,
        s: NodeId,
        t: NodeId,
        mode: ShortcutMode,
    ) -> RouteOutcome {
        if let Some(direct) = self.try_direct(s, t) {
            return direct;
        }
        // The source already stores the destination's address (same sloppy
        // group): route exactly as NDDisco.
        if self.state.knows_address(s, t) {
            return self.nddisco_first_packet_with(s, t, mode);
        }
        // Find the vicinity member with the longest hash prefix match.
        let proxy = self.state.best_group_proxy(s, t);
        if let Some(w) = proxy {
            if self.state.knows_address(w, t) {
                let forward = self.proxy_route_nodes(s, w, t);
                let reverse = if mode.uses_reverse() {
                    self.state
                        .best_group_proxy(t, s)
                        .filter(|&w2| self.state.knows_address(w2, s))
                        .map(|w2| self.proxy_route_nodes(t, w2, s))
                } else {
                    None
                };
                return self.finish(mode, forward, reverse, RouteCategory::ViaGroupProxy);
            }
        }
        // w.h.p. failure: fall back to the landmark resolution database
        // (§4.3 / §4.4): route to the landmark owning h(t), which knows the
        // address, then onward to t.
        let owner = self
            .state
            .resolution_ring()
            .owner_of_name(self.state.name_of(t));
        let to_owner = self.path_to_landmark(s, owner);
        let lm = self.state.closest_landmark(t);
        let owner_to_lm = Path::new(
            self.state
                .landmark_path(lm, owner)
                .reversed()
                .nodes()
                .to_vec(),
        );
        let addr = self.address_leg(t);
        let forward = Self::concat_nodes(&[&to_owner, &owner_to_lm, &addr]);
        self.finish(mode, forward, None, RouteCategory::Fallback)
    }

    /// Disco later packets: identical to NDDisco later packets, since the
    /// source learned the destination's address from the first exchange.
    pub fn route_later_packet(&self, s: NodeId, t: NodeId) -> RouteOutcome {
        self.nddisco_later_packet(s, t)
    }

    /// Disco later packets with an explicit shortcut mode.
    pub fn route_later_packet_with(
        &self,
        s: NodeId,
        t: NodeId,
        mode: ShortcutMode,
    ) -> RouteOutcome {
        self.nddisco_later_packet_with(s, t, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoConfig;
    use disco_graph::generators;

    fn setup(n: usize, seed: u64) -> (Graph, DiscoState) {
        let g = generators::gnm_average_degree(n, 8.0, seed);
        let st = DiscoState::build(&g, &DiscoConfig::seeded(seed));
        (g, st)
    }

    fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        use rand::Rng;
        let mut rng = disco_sim::rng::rng_for(seed, 0x77, 0);
        (0..count)
            .map(|_| {
                let s = rng.gen_range(0..n);
                let mut t = rng.gen_range(0..n);
                while t == s {
                    t = rng.gen_range(0..n);
                }
                (NodeId(s), NodeId(t))
            })
            .collect()
    }

    #[test]
    fn routes_are_valid_walks_ending_at_destination() {
        let (g, st) = setup(256, 1);
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(256, 60, 1) {
            for out in [
                router.route_first_packet(s, t),
                router.route_later_packet(s, t),
                router.nddisco_first_packet(s, t),
                router.nddisco_later_packet(s, t),
            ] {
                assert_eq!(*out.nodes.first().unwrap(), s);
                assert_eq!(*out.nodes.last().unwrap(), t);
                // Every consecutive pair is an edge.
                for w in out.nodes.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "invalid hop {}-{}", w[0], w[1]);
                }
                assert!(out.length >= router.true_distance(s, t) - 1e-9);
            }
        }
    }

    #[test]
    fn self_route_has_zero_length() {
        let (g, st) = setup(64, 2);
        let router = DiscoRouter::new(&g, &st);
        let out = router.route_first_packet(NodeId(5), NodeId(5));
        assert_eq!(out.category, RouteCategory::SelfRoute);
        assert_eq!(out.length, 0.0);
        assert_eq!(out.hop_count(), 0);
        assert!((out.stretch(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_packet_stretch_obeys_theorem_1() {
        // On a random graph with default constants the w.h.p. precondition
        // (a landmark in every vicinity, a group member in every vicinity)
        // holds, so the worst-case stretch bounds must hold exactly.
        let (g, st) = setup(512, 3);
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(512, 120, 3) {
            let d = router.true_distance(s, t);
            let first = router.route_first_packet(s, t);
            assert!(
                first.stretch(d) <= 7.0 + 1e-9,
                "first-packet stretch {} for {s}->{t}",
                first.stretch(d)
            );
            let later = router.route_later_packet(s, t);
            assert!(
                later.stretch(d) <= 3.0 + 1e-9,
                "later-packet stretch {} for {s}->{t}",
                later.stretch(d)
            );
        }
    }

    #[test]
    fn nddisco_first_packet_stretch_at_most_5() {
        let (g, st) = setup(512, 4);
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(512, 120, 4) {
            let d = router.true_distance(s, t);
            let out = router.nddisco_first_packet(s, t);
            assert!(
                out.stretch(d) <= 5.0 + 1e-9,
                "NDDisco first-packet stretch {}",
                out.stretch(d)
            );
        }
    }

    #[test]
    fn later_packets_never_longer_than_unshortcut_first() {
        let (g, st) = setup(256, 5);
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(256, 60, 5) {
            let first = router.route_first_packet_with(s, t, ShortcutMode::None);
            let later = router.route_later_packet_with(s, t, ShortcutMode::None);
            assert!(later.length <= first.length + 1e-9);
        }
    }

    #[test]
    fn shortcutting_never_hurts() {
        let (g, st) = setup(256, 6);
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(256, 50, 6) {
            let none = router.route_first_packet_with(s, t, ShortcutMode::None);
            let to_dest = router.route_first_packet_with(s, t, ShortcutMode::ToDestination);
            let npk = router.route_first_packet_with(s, t, ShortcutMode::NoPathKnowledge);
            let uds = router.route_first_packet_with(s, t, ShortcutMode::UpDownStream);
            let pk = router.route_first_packet_with(s, t, ShortcutMode::PathKnowledge);
            assert!(to_dest.length <= none.length + 1e-9);
            assert!(npk.length <= to_dest.length + 1e-9);
            assert!(uds.length <= to_dest.length + 1e-9);
            assert!(pk.length <= uds.length + 1e-9);
        }
    }

    #[test]
    fn direct_and_handshake_routes_are_shortest() {
        let (g, st) = setup(256, 7);
        let router = DiscoRouter::new(&g, &st);
        let mut checked_direct = 0;
        let mut checked_handshake = 0;
        for (s, t) in sample_pairs(256, 150, 7) {
            let later = router.route_later_packet(s, t);
            let d = router.true_distance(s, t);
            match later.category {
                RouteCategory::Direct | RouteCategory::Handshake | RouteCategory::SelfRoute => {
                    assert!((later.length - d).abs() < 1e-9);
                    if later.category == RouteCategory::Direct {
                        checked_direct += 1;
                    } else {
                        checked_handshake += 1;
                    }
                }
                _ => {}
            }
        }
        // On a 256-node graph vicinities are large, so many pairs are direct.
        assert!(checked_direct + checked_handshake > 0);
    }

    #[test]
    fn routing_to_landmark_is_shortest() {
        let (g, st) = setup(256, 8);
        let router = DiscoRouter::new(&g, &st);
        let lm = st.landmarks()[st.landmarks().len() / 2];
        for s in (0..256).step_by(37).map(NodeId) {
            if s == lm {
                continue;
            }
            let out = router.route_first_packet(s, lm);
            assert_eq!(out.category, RouteCategory::Direct);
            assert!((out.length - router.true_distance(s, lm)).abs() < 1e-9);
        }
    }

    #[test]
    fn geometric_graph_stretch_bounds_hold_with_latencies() {
        let g = generators::geometric_connected(400, 8.0, 11);
        let st = DiscoState::build(&g, &DiscoConfig::seeded(11));
        let router = DiscoRouter::new(&g, &st);
        for (s, t) in sample_pairs(400, 80, 11) {
            let d = router.true_distance(s, t);
            let first = router.route_first_packet(s, t);
            let later = router.route_later_packet(s, t);
            assert!(
                first.stretch(d) <= 7.0 + 1e-9,
                "stretch {}",
                first.stretch(d)
            );
            assert!(
                later.stretch(d) <= 3.0 + 1e-9,
                "stretch {}",
                later.stretch(d)
            );
        }
    }

    #[test]
    fn route_categories_cover_expected_cases() {
        let (g, st) = setup(400, 12);
        let router = DiscoRouter::new(&g, &st);
        let mut seen = std::collections::HashSet::new();
        for (s, t) in sample_pairs(400, 300, 12) {
            seen.insert(router.route_first_packet(s, t).category);
        }
        // At minimum the direct and one of the indirect categories occur.
        assert!(seen.contains(&RouteCategory::Direct));
        assert!(
            seen.contains(&RouteCategory::ViaGroupProxy)
                || seen.contains(&RouteCategory::ViaLandmark)
        );
    }
}
